//! Design-space walk: use the Scale-Out Processor methodology to pick a
//! core/LLC configuration, then price the candidate interconnects with the
//! area and energy models — the workflow of the paper's §2.2 + §6.2.
//!
//! Run with `cargo run --release --example design_your_chip`.

use nocout_repro::substrates::noc::topology::fbfly::FbflySpec;
use nocout_repro::substrates::noc::topology::mesh::MeshSpec;
use nocout_repro::substrates::noc::topology::nocout::NocOutSpec;
use nocout_repro::substrates::tech::area::{NocAreaModel, OrganizationArea};
use nocout_repro::substrates::tech::ChipPowerModel;
use nocout_repro::sop::{optimize, SopInputs};

fn main() {
    // Step 1: SOP methodology — what chip should we build at 32 nm?
    let inputs = SopInputs::paper_32nm();
    let tech = ChipPowerModel::paper_32nm();
    let candidates = optimize(&inputs, &tech);
    println!("Scale-Out Processor sweep (top five by performance density):");
    for p in candidates.iter().take(5) {
        println!(
            "  {:>3} cores, {:>4.1} MB LLC → throughput {:>5.1}, density {:.4}/mm²",
            p.cores, p.llc_mb, p.throughput, p.performance_density
        );
    }
    let best = &candidates[0];
    println!(
        "\nThe methodology lands near the paper's choice (64 cores, 8 MB): \
         best = {} cores / {} MB.\n",
        best.cores, best.llc_mb
    );

    // Step 2: price the interconnect options for that chip.
    let model = NocAreaModel::paper_32nm();
    for (name, org) in [
        ("Mesh", OrganizationArea::mesh(&MeshSpec::paper_64())),
        (
            "Flattened butterfly",
            OrganizationArea::fbfly(&FbflySpec::paper_64()),
        ),
        ("NOC-Out", OrganizationArea::nocout(&NocOutSpec::paper_64())),
    ] {
        let r = model.area(&org);
        println!(
            "  {:<20} links {:>5.2}  buffers {:>5.2}  crossbars {:>5.2}  = {:>5.2} mm²",
            name,
            r.links_mm2,
            r.buffers_mm2,
            r.crossbars_mm2,
            r.total_mm2()
        );
    }
    println!(
        "\nNOC-Out delivers butterfly-class latency at below-mesh cost — the\n\
         trade the paper's abstract promises."
    );
}
