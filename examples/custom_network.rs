//! Build a custom network with the low-level NoC API: a little 4-column
//! NOC-Out-style fabric, hand-fed with traffic, timed packet by packet.
//!
//! This shows the substrate the full-system model is built on — useful if
//! you want to prototype your own topology against the same router model.
//!
//! Run with `cargo run --release --example custom_network`.

use nocout_repro::substrates::noc::network::NetworkBuilder;
use nocout_repro::substrates::noc::router::RouterConfig;
use nocout_repro::substrates::noc::types::MessageClass;

fn main() {
    // A single column: two cores feeding an LLC router through a
    // reduction chain, responses returning over a dispersion chain.
    let mut b = NetworkBuilder::new(128);
    let llc_router = b.add_router(RouterConfig::fbfly(5));
    let red_far = b.add_router(RouterConfig::tree_node());
    let red_near = b.add_router(RouterConfig::tree_node());
    let disp_near = b.add_router(RouterConfig::tree_node());
    let disp_far = b.add_router(RouterConfig::tree_node());

    // Network ports first so static priority favours in-flight traffic.
    b.add_link(red_far, red_near, 1, 1.75);
    b.add_link(red_near, llc_router, 1, 1.75);
    b.add_link(llc_router, disp_near, 1, 1.75);
    b.add_link(disp_near, disp_far, 1, 1.75);

    let core_far = b.add_terminal_split(red_far, disp_far).terminal;
    let core_near = b.add_terminal_split(red_near, disp_near).terminal;
    let llc = b.add_terminal(llc_router).terminal;
    b.compute_routes_bfs();
    let mut net = b.build();

    // Request/response pairs from both cores.
    net.inject(core_far, llc, MessageClass::Request, 0, 100);
    net.inject(core_near, llc, MessageClass::Request, 0, 200);

    let mut replies = 0;
    while replies < 2 {
        net.tick();
        while let Some(d) = net.poll(llc) {
            println!(
                "LLC received request token {} from {} after {} cycles",
                d.packet.token, d.packet.src, d.latency()
            );
            // Reply with a 64-byte line (5 flits on 128-bit links).
            net.inject(llc, d.packet.src, MessageClass::Response, 64, d.packet.token + 1);
            replies += 1;
        }
        assert!(net.now().raw() < 1_000, "traffic must drain quickly");
    }
    let mut got = 0;
    while got < 2 {
        net.tick();
        for core in [core_far, core_near] {
            if let Some(d) = net.poll(core) {
                println!(
                    "{} received response token {} after {} cycles",
                    core, d.packet.token, d.latency()
                );
                got += 1;
            }
        }
        assert!(net.now().raw() < 1_000);
    }
    let stats = net.stats();
    println!(
        "network moved {} packets / {} flits; mean latency {:.1} cycles",
        stats.packets_delivered.value(),
        stats.flits_delivered.value(),
        stats.mean_latency()
    );
}
