//! Head-to-head: the same scale-out workload on all three organizations,
//! plus the contention-free ideal — a miniature of the paper's Fig. 7.
//!
//! The four organizations run as one parallel batch on a
//! `BatchRunner` worker pool (results are bit-identical to running them
//! serially — per-seed determinism is independent of scheduling).
//!
//! Run with `cargo run --release --example compare_topologies`.
//! Pass a workload name and/or `--jobs N`:
//! `cargo run --release --example compare_topologies -- data-serving --jobs 4`.

use nocout_experiments::cli::{parse_workload, Cli};
use nocout_repro::prelude::*;
use nocout_repro::runner::BatchRunner;

fn main() {
    let mut cli = Cli::parse(
        "compare_topologies",
        "Runs one workload on all three organizations plus the \
         contention-free ideal and prints IPC normalized to the mesh.",
        "[WORKLOAD]",
    );
    let mut workload = Workload::WebSearch;
    while let Some(tok) = cli.next_flag() {
        match parse_workload(&tok) {
            Some(w) => workload = w,
            None => cli.fail(&format!("unknown workload `{tok}`")),
        }
    }
    let runner: BatchRunner = cli.runner();
    cli.finish();

    let window = MeasurementWindow::new(10_000, 20_000);
    let orgs = [
        Organization::Mesh,
        Organization::FlattenedButterfly,
        Organization::NocOut,
        Organization::IdealWire,
    ];
    let specs: Vec<RunSpec> = orgs
        .iter()
        .map(|&org| RunSpec {
            chip: ChipConfig::paper(org),
            workload: workload.into(),
            window,
            seed: 7,
        })
        .collect();

    println!(
        "{workload} across organizations (normalized to the mesh, {} worker(s)):\n",
        runner.jobs()
    );
    let results = runner.run_batch(&specs);
    let mesh_ipc = results[0].aggregate_ipc();
    for (org, metrics) in orgs.iter().zip(&results) {
        let ipc = metrics.aggregate_ipc();
        println!(
            "  {:<22} IPC {:>6.3}  vs mesh {:>5.3}  net latency {:>5.1} cycles",
            org.name(),
            ipc,
            ipc / mesh_ipc,
            metrics.network.mean_latency
        );
    }
    println!(
        "\nExpect the order the paper reports: mesh slowest, flattened butterfly\n\
         and NOC-Out close together near the ideal."
    );
}
