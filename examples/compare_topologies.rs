//! Head-to-head: the same scale-out workload on all three organizations,
//! plus the contention-free ideal — a miniature of the paper's Fig. 7.
//!
//! Run with `cargo run --release --example compare_topologies`.
//! Pass a workload name to change the workload:
//! `cargo run --release --example compare_topologies -- data-serving`.

use nocout_repro::prelude::*;

fn parse_workload(arg: Option<&str>) -> Workload {
    match arg {
        Some("data-serving") => Workload::DataServing,
        Some("mapreduce-c") => Workload::MapReduceC,
        Some("mapreduce-w") => Workload::MapReduceW,
        Some("sat-solver") => Workload::SatSolver,
        Some("web-frontend") => Workload::WebFrontend,
        Some("web-search") | None => Workload::WebSearch,
        Some(other) => {
            eprintln!("unknown workload `{other}`; using web-search");
            Workload::WebSearch
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = parse_workload(args.get(1).map(|s| s.as_str()));
    let window = MeasurementWindow::new(10_000, 20_000);

    println!("{workload} across organizations (normalized to the mesh):\n");
    let mut mesh_ipc = None;
    for org in [
        Organization::Mesh,
        Organization::FlattenedButterfly,
        Organization::NocOut,
        Organization::IdealWire,
    ] {
        let metrics = run(&RunSpec {
            chip: ChipConfig::paper(org),
            workload,
            window,
            seed: 7,
        });
        let ipc = metrics.aggregate_ipc();
        let base = *mesh_ipc.get_or_insert(ipc);
        println!(
            "  {:<22} IPC {:>6.3}  vs mesh {:>5.3}  net latency {:>5.1} cycles",
            org.name(),
            ipc,
            ipc / base,
            metrics.network.mean_latency
        );
    }
    println!(
        "\nExpect the order the paper reports: mesh slowest, flattened butterfly\n\
         and NOC-Out close together near the ideal."
    );
}
