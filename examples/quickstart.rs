//! Quickstart: build the paper's 64-core NOC-Out chip, run a scale-out
//! workload, inspect what the interconnect did — then let a declarative
//! [`Campaign`] run the mesh comparison grid and query it by
//! coordinates.
//!
//! Run with `cargo run --release --example quickstart`.

use nocout_repro::prelude::*;
use nocout_repro::runner::BatchRunner;

fn main() {
    // The paper's Table 1 configuration with the NOC-Out organization:
    // 64 cores, 8 MB NUCA LLC in a central row of 8 tiles (2 banks each),
    // reduction/dispersion trees, 128-bit links, 4 DDR3-1667 channels.
    let chip = ChipConfig::paper(Organization::NocOut);

    // Run Web Search for a short warmup + measurement window.
    let spec = RunSpec {
        chip,
        workload: Workload::WebSearch.into(),
        window: MeasurementWindow::new(10_000, 20_000),
        seed: 42,
    };
    let metrics = run(&spec);

    println!("NOC-Out running {}:", spec.workload);
    println!(
        "  {} active cores retired {} instructions over {} cycles",
        metrics.active_cores, metrics.instructions, metrics.cycles
    );
    println!("  aggregate IPC          {:.3}", metrics.aggregate_ipc());
    println!(
        "  fetch-stall fraction   {:.1}%  (L1-I misses exposed to the NoC)",
        metrics.fetch_stall_fraction * 100.0
    );
    println!(
        "  LLC: {} accesses, hit ratio {:.2}, snoop rate {:.2}% (the paper's ~2%)",
        metrics.llc.accesses,
        metrics.llc.hit_ratio(),
        metrics.llc.snoop_percent()
    );
    println!(
        "  NoC: {} packets, mean latency {:.1} cycles (requests {:.1}, responses {:.1})",
        metrics.network.packets,
        metrics.network.mean_latency,
        metrics.network.mean_request_latency,
        metrics.network.mean_response_latency
    );
    println!(
        "  memory: {} line reads, {} writes over 4 channels",
        metrics.memory.reads, metrics.memory.writes
    );

    // Grids are declarative: a Campaign expands typed axes, runs them as
    // one batch, and hands back a frame queryable by coordinates — no
    // point vectors, no flat-index arithmetic (docs/campaign-api.md).
    let frame = Campaign::new()
        .orgs([Organization::Mesh, Organization::NocOut])
        .workloads([Workload::WebSearch, Workload::DataServing])
        .window(MeasurementWindow::new(10_000, 20_000))
        .seeds([42])
        .run(&BatchRunner::from_env());
    let norm = frame.normalize_to(Organization::Mesh);
    println!("\nNOC-Out speedup over the mesh (same window, seed 42):");
    for w in [Workload::WebSearch, Workload::DataServing] {
        println!(
            "  {:<14} {:.3}x  (IPC {:.3} vs {:.3})",
            w.name(),
            norm.get(Organization::NocOut, w),
            frame.get(Organization::NocOut, w).ipc,
            frame.get(Organization::Mesh, w).ipc,
        );
    }
    println!(
        "  geomean        {:.3}x",
        norm.geomean(Organization::NocOut)
    );
}
