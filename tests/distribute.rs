//! End-to-end tests of fault-tolerant sharded campaign execution:
//! in-process `Worker`s behind real TCP listeners, a `ShardedDriver`
//! dispatching to them, and every promised failure mode exercised —
//! worker crash mid-shard, injected point panics, stragglers, and
//! crash-safe journal resume.
//!
//! The invariant everything here defends: for successful points, the
//! sharded path is **bit-identical** to the local `BatchRunner` path, no
//! matter which worker ran a point, how often a shard was retried, or
//! whether a result came from the journal instead of the wire.
//!
//! Timing margins are generous (multi-second timeouts, tiny backoffs):
//! the CI container pins a single CPU, so wall-clock assumptions tighter
//! than seconds would flake.

use nocout_repro::config::{ChipConfig, Organization};
use nocout_repro::distribute::{
    archive_trace, DriverConfig, Endpoint, FaultPlan, ShardedDriver, TraceStore, Worker,
};
use nocout_repro::runner::{BatchRunner, PointOutcome, RunSpec};
use nocout_repro::prelude::*;
use nocout_workloads::trace::TraceSet;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A small campaign: 2 organizations × 2 workloads on the fast window.
fn specs() -> Vec<RunSpec> {
    let mut v = Vec::new();
    for org in [Organization::Mesh, Organization::NocOut] {
        for w in [Workload::WebSearch, Workload::DataServing] {
            v.push(RunSpec::new(ChipConfig::paper(org), w).fast().with_seed(1));
        }
    }
    v
}

/// Starts an in-process worker with `fault` on an OS-assigned port;
/// returns its endpoint. The serving thread is detached — it dies with
/// the test process.
fn spawn_worker(fault: FaultPlan) -> Endpoint {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker listener");
    let addr = listener.local_addr().expect("listener address").to_string();
    std::thread::spawn(move || {
        let worker = Worker::new(BatchRunner::new(1))
            .with_heartbeat(Duration::from_millis(50))
            .with_faults(fault);
        let _ = worker.serve_listener(&listener);
    });
    Endpoint::Tcp(addr)
}

/// Driver tuning for tests: small shards, quick backoff, timeouts far
/// above anything a loaded 1-CPU container produces.
fn test_config() -> DriverConfig {
    DriverConfig {
        shard_points: 2,
        max_attempts: 6,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        read_timeout: Duration::from_secs(60),
        ..DriverConfig::default()
    }
}

/// Bit-exact comparison of outcomes (`f64` Debug formatting is the
/// shortest round-trip representation, so equal strings mean equal bits).
fn canon(outcomes: &[PointOutcome]) -> Vec<String> {
    outcomes
        .iter()
        .map(|o| match o {
            Ok(m) => format!("ok {m:?}"),
            Err(e) => format!("err {} {}", e.cache_key, e.message),
        })
        .collect()
}

fn local_baseline(specs: &[RunSpec]) -> Vec<String> {
    canon(&BatchRunner::new(1).run_batch_outcomes(specs))
}

#[test]
fn sharded_execution_is_bit_identical_to_local() {
    let specs = specs();
    let endpoints = vec![spawn_worker(FaultPlan::default()), spawn_worker(FaultPlan::default())];
    let driver = ShardedDriver::new(endpoints, test_config());
    let sharded = canon(&driver.execute_sharded(&specs));
    assert!(sharded.iter().all(|s| s.starts_with("ok ")), "{sharded:?}");
    assert_eq!(sharded, local_baseline(&specs));
    let stats = driver.stats();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.failed_points, 0);
}

#[test]
fn worker_crash_mid_shard_is_retried_on_the_survivor() {
    let specs = specs();
    // Worker 0 "crashes" instead of sending its very first result frame
    // and serves nothing ever again; worker 1 is healthy.
    let endpoints = vec![
        spawn_worker(FaultPlan {
            drop_after_frames: Some(0),
            ..FaultPlan::default()
        }),
        spawn_worker(FaultPlan::default()),
    ];
    let driver = ShardedDriver::new(endpoints, test_config());
    let sharded = canon(&driver.execute_sharded(&specs));
    assert_eq!(sharded, local_baseline(&specs), "retried results must stay bit-identical");
    let stats = driver.stats();
    assert!(stats.failed_attempts >= 1, "the crash must be observed: {stats:?}");
    assert!(stats.retries >= 1, "the crashed shard must be re-dispatched: {stats:?}");
    assert_eq!(stats.failed_points, 0, "the survivor must absorb all work: {stats:?}");
}

#[test]
fn injected_panic_degrades_to_a_failed_point_not_a_crash() {
    let specs = specs();
    let endpoints = vec![spawn_worker(FaultPlan {
        panic_on_point: Some(0),
        ..FaultPlan::default()
    })];
    let driver = ShardedDriver::new(endpoints, test_config());
    let outcomes = driver.execute_sharded(&specs);
    // The worker's panic isolation turns the unwind into a typed
    // per-point failure; every other point of the same shard still runs.
    let failed: Vec<&str> = outcomes
        .iter()
        .filter_map(|o| o.as_ref().err().map(|e| e.message.as_str()))
        .collect();
    assert_eq!(failed.len(), 1, "exactly the poisoned point fails: {failed:?}");
    assert!(
        failed[0].contains("injected fault: panic on point"),
        "the panic message must survive the wire: {failed:?}"
    );
    assert_eq!(driver.stats().failed_points, 1);
}

#[test]
fn no_reachable_endpoint_degrades_every_point() {
    let specs = specs();
    // Nothing listens on this port (bound, never accepted, dropped).
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let cfg = DriverConfig {
        max_attempts: 2,
        endpoint_failure_limit: 2,
        ..test_config()
    };
    let driver = ShardedDriver::new(vec![Endpoint::Tcp(dead)], cfg);
    let outcomes = driver.execute_sharded(&specs);
    assert!(
        outcomes.iter().all(|o| o.is_err()),
        "with no live workers every point must degrade, not hang"
    );
    assert_eq!(driver.stats().failed_points as usize, specs.len());
}

#[test]
fn straggler_is_speculated_and_results_stay_identical() {
    let specs = specs();
    // Worker 0 sleeps 2 s before every frame — a straggler, not a corpse.
    let endpoints = vec![
        spawn_worker(FaultPlan {
            delay: Some(Duration::from_secs(2)),
            ..FaultPlan::default()
        }),
        spawn_worker(FaultPlan::default()),
    ];
    let cfg = DriverConfig {
        speculate_after: Some(Duration::from_millis(300)),
        ..test_config()
    };
    let driver = ShardedDriver::new(endpoints, cfg);
    let sharded = canon(&driver.execute_sharded(&specs));
    assert_eq!(
        sharded,
        local_baseline(&specs),
        "whichever twin wins, results are bit-identical"
    );
    let stats = driver.stats();
    assert!(stats.speculative >= 1, "the straggling shard must be speculated: {stats:?}");
    assert_eq!(stats.failed_points, 0);
}

/// The crash-resume story end to end: a first driver run loses its only
/// worker mid-campaign (completed shards journaled, the rest degrade to
/// transport errors), a second run with `resume: true` replays the
/// journal and dispatches only the uncovered points.
#[test]
fn journal_resume_dispatches_only_uncovered_points() {
    let specs = specs();
    let journal = temp_journal("resume");
    let _ = std::fs::remove_file(&journal);

    // First run: the worker dies instead of sending frame 5 — shard 0
    // (frames 0,1 + done) lands in the journal, shard 1 does not.
    let crashy = spawn_worker(FaultPlan {
        drop_after_frames: Some(5),
        ..FaultPlan::default()
    });
    let cfg1 = DriverConfig {
        max_attempts: 1,
        endpoint_failure_limit: 1,
        journal: Some(journal.clone()),
        ..test_config()
    };
    let driver1 = ShardedDriver::new(vec![crashy], cfg1);
    let first = driver1.execute_sharded(&specs);
    let ok_first = first.iter().filter(|o| o.is_ok()).count();
    assert_eq!(ok_first, 2, "the completed shard's points succeed");
    assert!(
        first.iter().filter_map(|o| o.as_ref().err()).all(|e| {
            e.message.contains("exhausted") || e.message.contains("no live worker")
        }),
        "lost points degrade with the transport error named"
    );

    // Second run: a healthy worker, resuming. Only shard 1 dispatches.
    let cfg2 = DriverConfig {
        journal: Some(journal.clone()),
        resume: true,
        ..test_config()
    };
    let driver2 = ShardedDriver::new(vec![spawn_worker(FaultPlan::default())], cfg2);
    let second = canon(&driver2.execute_sharded(&specs));
    assert_eq!(second, local_baseline(&specs), "resumed + fresh points are bit-identical");
    let stats = driver2.stats();
    assert_eq!(stats.journal_resumed, 2, "exactly the journaled points are recovered");
    assert_eq!(stats.shards, 1, "only the uncovered shard dispatches");
    assert_eq!(stats.failed_points, 0);

    // Third run: everything is journaled now; nothing need be reachable.
    let cfg3 = DriverConfig {
        max_attempts: 1,
        endpoint_failure_limit: 1,
        journal: Some(journal.clone()),
        resume: true,
        ..test_config()
    };
    let driver3 = ShardedDriver::new(
        vec![Endpoint::Tcp("127.0.0.1:1".into())],
        cfg3,
    );
    let third = canon(&driver3.execute_sharded(&specs));
    assert_eq!(third, local_baseline(&specs), "a full journal needs no workers at all");
    assert_eq!(driver3.stats().journal_resumed as usize, specs.len());
    assert_eq!(driver3.stats().dispatches, 0);

    let _ = std::fs::remove_file(&journal);
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nocout-distribute-test-{tag}-{}.journal",
        std::process::id()
    ))
}

// ---------------------------------------------------------------------
// Content-addressed trace shipping.
// ---------------------------------------------------------------------

/// A fresh temp directory for this test (removed and recreated).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nocout-distribute-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Captures a small synthetic-workload trace into a fresh temp dir.
fn capture_trace(tag: &str) -> (PathBuf, Arc<TraceSet>) {
    let dir = temp_dir(&format!("{tag}-capture"));
    let chip = ChipConfig::paper(Organization::Mesh);
    let trace = nocout_repro::capture_synthetic_trace(chip, Workload::WebSearch, 1, &dir, 2_000)
        .expect("capture trace");
    (dir, trace)
}

/// A 2-point trace-replay campaign: mesh and NOC-Out replaying `set`.
fn trace_specs(set: &Arc<TraceSet>) -> Vec<RunSpec> {
    [Organization::Mesh, Organization::NocOut]
        .into_iter()
        .map(|org| RunSpec {
            chip: ChipConfig::paper(org),
            workload: WorkloadClass::from(set.clone()),
            window: MeasurementWindow::new(100, 400),
            seed: 1,
        })
        .collect()
}

/// Starts an in-process worker with `fault` and a content-addressed
/// trace store rooted at `store_dir`.
fn spawn_worker_with_store(fault: FaultPlan, store_dir: &Path) -> Endpoint {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker listener");
    let addr = listener.local_addr().expect("listener address").to_string();
    let store = TraceStore::open(store_dir).expect("open worker trace store");
    std::thread::spawn(move || {
        let worker = Worker::new(BatchRunner::new(1))
            .with_heartbeat(Duration::from_millis(50))
            .with_faults(fault)
            .with_trace_store(store);
        let _ = worker.serve_listener(&listener);
    });
    Endpoint::Tcp(addr)
}

/// Installs `set` into the store at `dir` the same way a driver shipment
/// would: one staged archive, committed and hash-verified.
fn seed_store(dir: &Path, set: &Arc<TraceSet>) {
    let store = TraceStore::open(dir).expect("open store");
    let archive = archive_trace(set).expect("archive trace");
    let hash = set.content_hash();
    store.append_chunk(hash, 0, &archive).expect("stage archive");
    store.commit(hash, archive.len() as u64).expect("install archive");
}

#[test]
fn trace_campaign_ships_to_empty_stores_and_matches_local() {
    let (capture_dir, set) = capture_trace("ship");
    let specs = trace_specs(&set);
    let s0 = temp_dir("ship-w0");
    let s1 = temp_dir("ship-w1");
    let endpoints = vec![
        spawn_worker_with_store(FaultPlan::default(), &s0),
        spawn_worker_with_store(FaultPlan::default(), &s1),
    ];
    let cfg = DriverConfig {
        shard_points: 1, // one point per shard: both workers get trace work
        chunk_bytes: 1024,
        ..test_config()
    };
    let driver = ShardedDriver::new(endpoints, cfg);
    let sharded = canon(&driver.execute_sharded(&specs));
    assert!(sharded.iter().all(|s| s.starts_with("ok ")), "{sharded:?}");
    assert_eq!(
        sharded,
        local_baseline(&specs),
        "trace points shipped by content hash must stay bit-identical to local"
    );
    let stats = driver.stats();
    assert!(stats.trace_ships >= 1, "empty stores force a shipment: {stats:?}");
    assert_eq!(stats.failed_points, 0, "{stats:?}");
    for d in [capture_dir, s0, s1] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn mid_transfer_worker_crash_is_resumed_on_retry() {
    let (capture_dir, set) = capture_trace("resume-ship");
    let specs = trace_specs(&set);
    let store_dir = temp_dir("resume-ship-w0");
    // The worker drops the connection after durably staging the second
    // chunk — a crash mid-transfer. It keeps serving (a restarted
    // worker), so the retried ship must *resume* from the staged partial
    // rather than restart from byte zero.
    let endpoints = vec![spawn_worker_with_store(
        FaultPlan {
            drop_after_chunks: Some(2),
            ..FaultPlan::default()
        },
        &store_dir,
    )];
    let cfg = DriverConfig {
        chunk_bytes: 512,
        ..test_config()
    };
    let driver = ShardedDriver::new(endpoints, cfg);
    let sharded = canon(&driver.execute_sharded(&specs));
    assert_eq!(
        sharded,
        local_baseline(&specs),
        "a resumed transfer must still install a bit-identical trace"
    );
    let stats = driver.stats();
    assert!(stats.failed_attempts >= 1, "the crash must be observed: {stats:?}");
    assert!(
        stats.trace_resume_bytes >= 1024,
        "the retry must resume past the two staged chunks: {stats:?}"
    );
    assert_eq!(stats.failed_points, 0, "{stats:?}");
    for d in [capture_dir, store_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn corrupt_store_entry_is_quarantined_and_reshipped() {
    let (capture_dir, set) = capture_trace("quarantine");
    let specs = trace_specs(&set);
    let store_dir = temp_dir("quarantine-w0");
    seed_store(&store_dir, &set);
    // Flip one byte of an installed stream file: the store still
    // *advertises* the entry (held() is an unverified scan), but the
    // first load re-verifies the content hash, quarantines the entry to
    // `.bad`, and the driver's retry ships a fresh copy.
    let hash = set.content_hash();
    let entry = store_dir.join(format!("{hash:016x}"));
    let victim = std::fs::read_dir(&entry)
        .expect("read entry dir")
        .filter_map(Result::ok)
        .find(|e| e.path().is_file())
        .expect("entry holds stream files")
        .path();
    let mut bytes = std::fs::read(&victim).expect("read stream file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).expect("corrupt stream file");

    let endpoints = vec![spawn_worker_with_store(FaultPlan::default(), &store_dir)];
    let driver = ShardedDriver::new(endpoints, test_config());
    let sharded = canon(&driver.execute_sharded(&specs));
    assert_eq!(
        sharded,
        local_baseline(&specs),
        "a quarantined entry must be re-shipped, never replayed corrupt"
    );
    let stats = driver.stats();
    assert!(
        stats.trace_ships >= 1,
        "the re-ship after quarantine must be counted: {stats:?}"
    );
    assert_eq!(stats.failed_points, 0, "{stats:?}");
    assert!(
        store_dir.join(format!("{hash:016x}.bad")).exists(),
        "the corrupt entry must be quarantined, not deleted"
    );
    for d in [capture_dir, store_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn held_traces_are_reused_without_shipping() {
    let (capture_dir, set) = capture_trace("reuse");
    let specs = trace_specs(&set);
    let store_dir = temp_dir("reuse-w0");
    seed_store(&store_dir, &set);
    let endpoints = vec![spawn_worker_with_store(FaultPlan::default(), &store_dir)];
    let driver = ShardedDriver::new(endpoints, test_config());
    let sharded = canon(&driver.execute_sharded(&specs));
    assert_eq!(sharded, local_baseline(&specs));
    let stats = driver.stats();
    assert_eq!(stats.trace_ships, 0, "a held trace must not be re-shipped: {stats:?}");
    assert!(stats.trace_reuses >= 1, "the reuse must be counted: {stats:?}");
    assert_eq!(stats.failed_points, 0, "{stats:?}");
    for d in [capture_dir, store_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn storeless_worker_degrades_trace_points_but_still_runs_synthetic() {
    let (capture_dir, set) = capture_trace("storeless");
    // Two synthetic points plus two trace points, one worker with *no*
    // trace store: the synthetic half must complete bit-identically, the
    // trace half must degrade with a typed trace-capability error — not
    // hang, not fail the synthetic points.
    let mut specs = vec![
        RunSpec::new(ChipConfig::paper(Organization::Mesh), Workload::WebSearch)
            .fast()
            .with_seed(1),
        RunSpec::new(ChipConfig::paper(Organization::NocOut), Workload::WebSearch)
            .fast()
            .with_seed(1),
    ];
    specs.extend(trace_specs(&set));
    let endpoints = vec![spawn_worker(FaultPlan::default())];
    let cfg = DriverConfig {
        shard_points: 2, // synthetic pair in one shard, trace pair in the other
        ..test_config()
    };
    let driver = ShardedDriver::new(endpoints, cfg);
    let outcomes = driver.execute_sharded(&specs);
    let synthetic = canon(&outcomes[..2]);
    assert!(synthetic.iter().all(|s| s.starts_with("ok ")), "{synthetic:?}");
    assert_eq!(synthetic, local_baseline(&specs[..2]));
    for o in &outcomes[2..] {
        let e = o.as_ref().expect_err("trace points must degrade without a store");
        assert!(
            e.message.contains("trace"),
            "the degradation must name the trace capability: {}",
            e.message
        );
    }
    let _ = std::fs::remove_dir_all(capture_dir);
}

#[test]
fn mixed_store_and_storeless_workers_complete_a_trace_campaign() {
    let (capture_dir, set) = capture_trace("mixed");
    let specs = trace_specs(&set);
    let store_dir = temp_dir("mixed-w1");
    // Worker 0 has no store; worker 1 does. Whichever claims a trace
    // shard first, every point must complete (the storeless endpoint is
    // retired from trace-bearing shards only).
    let endpoints = vec![
        spawn_worker(FaultPlan::default()),
        spawn_worker_with_store(FaultPlan::default(), &store_dir),
    ];
    let cfg = DriverConfig {
        shard_points: 1,
        chunk_bytes: 1024,
        ..test_config()
    };
    let driver = ShardedDriver::new(endpoints, cfg);
    let sharded = canon(&driver.execute_sharded(&specs));
    assert_eq!(sharded, local_baseline(&specs));
    assert_eq!(driver.stats().failed_points, 0, "{:?}", driver.stats());
    for d in [capture_dir, store_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}
