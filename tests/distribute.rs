//! End-to-end tests of fault-tolerant sharded campaign execution:
//! in-process `Worker`s behind real TCP listeners, a `ShardedDriver`
//! dispatching to them, and every promised failure mode exercised —
//! worker crash mid-shard, injected point panics, stragglers, and
//! crash-safe journal resume.
//!
//! The invariant everything here defends: for successful points, the
//! sharded path is **bit-identical** to the local `BatchRunner` path, no
//! matter which worker ran a point, how often a shard was retried, or
//! whether a result came from the journal instead of the wire.
//!
//! Timing margins are generous (multi-second timeouts, tiny backoffs):
//! the CI container pins a single CPU, so wall-clock assumptions tighter
//! than seconds would flake.

use nocout_repro::config::{ChipConfig, Organization};
use nocout_repro::distribute::{
    DriverConfig, Endpoint, FaultPlan, ShardedDriver, Worker,
};
use nocout_repro::runner::{BatchRunner, PointOutcome, RunSpec};
use nocout_repro::prelude::*;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

/// A small campaign: 2 organizations × 2 workloads on the fast window.
fn specs() -> Vec<RunSpec> {
    let mut v = Vec::new();
    for org in [Organization::Mesh, Organization::NocOut] {
        for w in [Workload::WebSearch, Workload::DataServing] {
            v.push(RunSpec::new(ChipConfig::paper(org), w).fast().with_seed(1));
        }
    }
    v
}

/// Starts an in-process worker with `fault` on an OS-assigned port;
/// returns its endpoint. The serving thread is detached — it dies with
/// the test process.
fn spawn_worker(fault: FaultPlan) -> Endpoint {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker listener");
    let addr = listener.local_addr().expect("listener address").to_string();
    std::thread::spawn(move || {
        let worker = Worker::new(BatchRunner::new(1))
            .with_heartbeat(Duration::from_millis(50))
            .with_faults(fault);
        let _ = worker.serve_listener(&listener);
    });
    Endpoint::Tcp(addr)
}

/// Driver tuning for tests: small shards, quick backoff, timeouts far
/// above anything a loaded 1-CPU container produces.
fn test_config() -> DriverConfig {
    DriverConfig {
        shard_points: 2,
        max_attempts: 6,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        read_timeout: Duration::from_secs(60),
        ..DriverConfig::default()
    }
}

/// Bit-exact comparison of outcomes (`f64` Debug formatting is the
/// shortest round-trip representation, so equal strings mean equal bits).
fn canon(outcomes: &[PointOutcome]) -> Vec<String> {
    outcomes
        .iter()
        .map(|o| match o {
            Ok(m) => format!("ok {m:?}"),
            Err(e) => format!("err {} {}", e.cache_key, e.message),
        })
        .collect()
}

fn local_baseline(specs: &[RunSpec]) -> Vec<String> {
    canon(&BatchRunner::new(1).run_batch_outcomes(specs))
}

#[test]
fn sharded_execution_is_bit_identical_to_local() {
    let specs = specs();
    let endpoints = vec![spawn_worker(FaultPlan::default()), spawn_worker(FaultPlan::default())];
    let driver = ShardedDriver::new(endpoints, test_config());
    let sharded = canon(&driver.execute_sharded(&specs));
    assert!(sharded.iter().all(|s| s.starts_with("ok ")), "{sharded:?}");
    assert_eq!(sharded, local_baseline(&specs));
    let stats = driver.stats();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.failed_points, 0);
}

#[test]
fn worker_crash_mid_shard_is_retried_on_the_survivor() {
    let specs = specs();
    // Worker 0 "crashes" instead of sending its very first result frame
    // and serves nothing ever again; worker 1 is healthy.
    let endpoints = vec![
        spawn_worker(FaultPlan {
            drop_after_frames: Some(0),
            ..FaultPlan::default()
        }),
        spawn_worker(FaultPlan::default()),
    ];
    let driver = ShardedDriver::new(endpoints, test_config());
    let sharded = canon(&driver.execute_sharded(&specs));
    assert_eq!(sharded, local_baseline(&specs), "retried results must stay bit-identical");
    let stats = driver.stats();
    assert!(stats.failed_attempts >= 1, "the crash must be observed: {stats:?}");
    assert!(stats.retries >= 1, "the crashed shard must be re-dispatched: {stats:?}");
    assert_eq!(stats.failed_points, 0, "the survivor must absorb all work: {stats:?}");
}

#[test]
fn injected_panic_degrades_to_a_failed_point_not_a_crash() {
    let specs = specs();
    let endpoints = vec![spawn_worker(FaultPlan {
        panic_on_point: Some(0),
        ..FaultPlan::default()
    })];
    let driver = ShardedDriver::new(endpoints, test_config());
    let outcomes = driver.execute_sharded(&specs);
    // The worker's panic isolation turns the unwind into a typed
    // per-point failure; every other point of the same shard still runs.
    let failed: Vec<&str> = outcomes
        .iter()
        .filter_map(|o| o.as_ref().err().map(|e| e.message.as_str()))
        .collect();
    assert_eq!(failed.len(), 1, "exactly the poisoned point fails: {failed:?}");
    assert!(
        failed[0].contains("injected fault: panic on point"),
        "the panic message must survive the wire: {failed:?}"
    );
    assert_eq!(driver.stats().failed_points, 1);
}

#[test]
fn no_reachable_endpoint_degrades_every_point() {
    let specs = specs();
    // Nothing listens on this port (bound, never accepted, dropped).
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let cfg = DriverConfig {
        max_attempts: 2,
        endpoint_failure_limit: 2,
        ..test_config()
    };
    let driver = ShardedDriver::new(vec![Endpoint::Tcp(dead)], cfg);
    let outcomes = driver.execute_sharded(&specs);
    assert!(
        outcomes.iter().all(|o| o.is_err()),
        "with no live workers every point must degrade, not hang"
    );
    assert_eq!(driver.stats().failed_points as usize, specs.len());
}

#[test]
fn straggler_is_speculated_and_results_stay_identical() {
    let specs = specs();
    // Worker 0 sleeps 2 s before every frame — a straggler, not a corpse.
    let endpoints = vec![
        spawn_worker(FaultPlan {
            delay: Some(Duration::from_secs(2)),
            ..FaultPlan::default()
        }),
        spawn_worker(FaultPlan::default()),
    ];
    let cfg = DriverConfig {
        speculate_after: Some(Duration::from_millis(300)),
        ..test_config()
    };
    let driver = ShardedDriver::new(endpoints, cfg);
    let sharded = canon(&driver.execute_sharded(&specs));
    assert_eq!(
        sharded,
        local_baseline(&specs),
        "whichever twin wins, results are bit-identical"
    );
    let stats = driver.stats();
    assert!(stats.speculative >= 1, "the straggling shard must be speculated: {stats:?}");
    assert_eq!(stats.failed_points, 0);
}

/// The crash-resume story end to end: a first driver run loses its only
/// worker mid-campaign (completed shards journaled, the rest degrade to
/// transport errors), a second run with `resume: true` replays the
/// journal and dispatches only the uncovered points.
#[test]
fn journal_resume_dispatches_only_uncovered_points() {
    let specs = specs();
    let journal = temp_journal("resume");
    let _ = std::fs::remove_file(&journal);

    // First run: the worker dies instead of sending frame 5 — shard 0
    // (frames 0,1 + done) lands in the journal, shard 1 does not.
    let crashy = spawn_worker(FaultPlan {
        drop_after_frames: Some(5),
        ..FaultPlan::default()
    });
    let cfg1 = DriverConfig {
        max_attempts: 1,
        endpoint_failure_limit: 1,
        journal: Some(journal.clone()),
        ..test_config()
    };
    let driver1 = ShardedDriver::new(vec![crashy], cfg1);
    let first = driver1.execute_sharded(&specs);
    let ok_first = first.iter().filter(|o| o.is_ok()).count();
    assert_eq!(ok_first, 2, "the completed shard's points succeed");
    assert!(
        first.iter().filter_map(|o| o.as_ref().err()).all(|e| {
            e.message.contains("exhausted") || e.message.contains("no live worker")
        }),
        "lost points degrade with the transport error named"
    );

    // Second run: a healthy worker, resuming. Only shard 1 dispatches.
    let cfg2 = DriverConfig {
        journal: Some(journal.clone()),
        resume: true,
        ..test_config()
    };
    let driver2 = ShardedDriver::new(vec![spawn_worker(FaultPlan::default())], cfg2);
    let second = canon(&driver2.execute_sharded(&specs));
    assert_eq!(second, local_baseline(&specs), "resumed + fresh points are bit-identical");
    let stats = driver2.stats();
    assert_eq!(stats.journal_resumed, 2, "exactly the journaled points are recovered");
    assert_eq!(stats.shards, 1, "only the uncovered shard dispatches");
    assert_eq!(stats.failed_points, 0);

    // Third run: everything is journaled now; nothing need be reachable.
    let cfg3 = DriverConfig {
        max_attempts: 1,
        endpoint_failure_limit: 1,
        journal: Some(journal.clone()),
        resume: true,
        ..test_config()
    };
    let driver3 = ShardedDriver::new(
        vec![Endpoint::Tcp("127.0.0.1:1".into())],
        cfg3,
    );
    let third = canon(&driver3.execute_sharded(&specs));
    assert_eq!(third, local_baseline(&specs), "a full journal needs no workers at all");
    assert_eq!(driver3.stats().journal_resumed as usize, specs.len());
    assert_eq!(driver3.stats().dispatches, 0);

    let _ = std::fs::remove_file(&journal);
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nocout-distribute-test-{tag}-{}.journal",
        std::process::id()
    ))
}
