//! Integration tests pinning the paper's quantitative claims that don't
//! need full-system timing runs: area anchors, ratios, zero-load
//! latencies, SOP conclusions, and power-model behaviour.

use nocout_repro::substrates::noc::topology::fbfly::{build_fbfly, FbflySpec};
use nocout_repro::substrates::noc::topology::mesh::{build_mesh, MeshSpec};
use nocout_repro::substrates::noc::topology::nocout::{build_nocout, NocOutSpec};
use nocout_repro::substrates::noc::types::MessageClass;
use nocout_repro::substrates::tech::area::{NocAreaModel, OrganizationArea};
use nocout_repro::substrates::tech::{BufferTech, NocEnergyModel};

/// Zero-load request latency between a terminal pair on a fresh network.
fn one_way_latency(
    net: &mut nocout_repro::substrates::noc::Network,
    src: nocout_repro::substrates::noc::TerminalId,
    dst: nocout_repro::substrates::noc::TerminalId,
) -> u64 {
    net.inject(src, dst, MessageClass::Request, 0, 0);
    for _ in 0..1_000 {
        net.tick();
        if let Some(d) = net.poll(dst) {
            return d.latency();
        }
    }
    panic!("packet not delivered");
}

#[test]
fn mesh_per_hop_is_three_cycles() {
    // Table 1: one-cycle link + two-stage router.
    let mut mesh = build_mesh(&MeshSpec::paper_64());
    let l1 = one_way_latency(&mut mesh.network, mesh.tile_terminals[0], mesh.tile_terminals[1]);
    let l2 = one_way_latency(&mut mesh.network, mesh.tile_terminals[0], mesh.tile_terminals[2]);
    assert_eq!(l2 - l1, 3, "each added hop must cost exactly 3 cycles");
}

#[test]
fn fbfly_needs_at_most_two_hops() {
    let mut fb = build_fbfly(&FbflySpec::paper_64());
    // Worst pair (opposite corners) must still beat the mesh by a wide
    // margin: 2 hops + ejection vs 14 hops + ejection.
    let worst = one_way_latency(&mut fb.network, fb.tile_terminals[0], fb.tile_terminals[63]);
    assert!(worst <= 20, "fbfly worst-case {worst} too slow for 2 hops");
}

#[test]
fn nocout_tree_hop_is_one_cycle() {
    let mut n = build_nocout(&NocOutSpec::paper_64());
    // Same column, adjacent (depth 1) vs farthest (depth 4): 3 extra tree
    // hops at one cycle each (§4.1/4.2: single-cycle per-hop delay).
    let llc = n.llc_terminals[0];
    let near = one_way_latency(&mut n.network, n.core_terminals[3], llc);
    let far = one_way_latency(&mut n.network, n.core_terminals[0], llc);
    assert_eq!(far - near, 3);
}

#[test]
fn area_anchors_and_ratios() {
    let m = NocAreaModel::paper_32nm();
    let mesh = m.area(&OrganizationArea::mesh(&MeshSpec::paper_64())).total_mm2();
    let fb = m.area(&OrganizationArea::fbfly(&FbflySpec::paper_64())).total_mm2();
    let no = m.area(&OrganizationArea::nocout(&NocOutSpec::paper_64())).total_mm2();
    // §6.2/§6.5: ~3.5 / ~23 / ~2.5 mm².
    assert!((2.8..=4.2).contains(&mesh), "mesh {mesh:.2}");
    assert!((18.0..=28.0).contains(&fb), "fbfly {fb:.2}");
    assert!((2.0..=3.1).contains(&no), "nocout {no:.2}");
    assert!(fb / mesh > 5.0 && fb / mesh < 9.0);
    assert!(fb / no > 7.0 && fb / no < 11.0);
    assert!(no < mesh);
}

#[test]
fn fig9_width_collapse() {
    // §6.3: at NOC-Out's budget, the butterfly's link bandwidth shrinks by
    // a factor of ~7 while the mesh shrinks mildly.
    let m = NocAreaModel::paper_32nm();
    let budget = m
        .area(&OrganizationArea::nocout(&NocOutSpec::paper_64()))
        .total_mm2();
    let (mesh_w, _) = m.fit_width_to_budget(budget, |w| {
        OrganizationArea::mesh_with_width(&MeshSpec::paper_64(), w)
    });
    let (fb_w, _) = m.fit_width_to_budget(budget, |w| {
        OrganizationArea::fbfly_with_width(&FbflySpec::paper_64(), w)
    });
    assert!(mesh_w >= 88, "mesh width {mesh_w} should shrink mildly");
    assert!(fb_w <= 24, "fbfly width {fb_w} should collapse ~7x");
}

#[test]
fn power_model_ordering_under_common_activity() {
    // Same traffic profile priced under each organization's technology
    // choices: flip-flop mesh must cost more than NOC-Out's mux-dominated
    // fabric (shorter distances, tiny switches).
    let activity_mesh = nocout_repro::substrates::tech::energy::NocActivity {
        flit_mm: 40.0 * 1.85 * 100_000.0,
        buffer_writes: 4_000_000,
        buffer_reads: 4_000_000,
        xbar_traversals: 4_000_000,
        cycles: 100_000,
    };
    // NOC-Out's traffic crosses fewer, shorter hops.
    let activity_nocout = nocout_repro::substrates::tech::energy::NocActivity {
        flit_mm: 28.0 * 1.75 * 100_000.0,
        buffer_writes: 2_600_000,
        buffer_reads: 2_600_000,
        xbar_traversals: 2_600_000,
        cycles: 100_000,
    };
    let mesh_p = NocEnergyModel::paper_32nm(128, BufferTech::FlipFlop)
        .energy(&activity_mesh)
        .power_w();
    let nocout_p = NocEnergyModel::paper_32nm(128, BufferTech::FlipFlop)
        .with_radix(2.8)
        .energy(&activity_nocout)
        .power_w();
    assert!(mesh_p < 2.5, "NoC power must stay small: {mesh_p:.2}");
    assert!(nocout_p < mesh_p, "NOC-Out must be the most efficient");
}

#[test]
fn sop_prefers_many_cores_modest_llc() {
    use nocout_repro::sop::{optimize, SopInputs};
    use nocout_repro::substrates::tech::ChipPowerModel;
    let best = optimize(&SopInputs::paper_32nm(), &ChipPowerModel::paper_32nm());
    let top = &best[0];
    assert!(top.cores >= 48 && top.llc_mb <= 12.0);
}

#[test]
fn nocout_routers_match_paper_structure() {
    use nocout_repro::substrates::noc::RouterId;
    let n = build_nocout(&NocOutSpec::paper_64());
    // 8 LLC routers + 128 tree nodes.
    assert_eq!(n.network.num_routers(), 136);
    // A reduction node (router index 8 is the first tree node) has at most
    // 2 in-ports (network + local).
    for r in 8..n.network.num_routers() {
        let router = n.network.router(RouterId(r as u16));
        assert!(
            router.num_in_ports() <= 2,
            "tree node {r} has {} in-ports",
            router.num_in_ports()
        );
    }
}
