//! Property-based tests on the NoC substrate: conservation, ordering and
//! flow-control invariants under randomized traffic and geometry.

use nocout_repro::substrates::noc::topology::fbfly::{build_fbfly, FbflySpec};
use nocout_repro::substrates::noc::topology::mesh::{build_mesh, MeshSpec};
use nocout_repro::substrates::noc::topology::nocout::{build_nocout, NocOutSpec};
use nocout_repro::substrates::noc::types::MessageClass;
use nocout_repro::substrates::noc::Network;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Traffic {
    src: usize,
    dst: usize,
    class: usize,
    payload: u32,
}

fn traffic_strategy(terminals: usize, max_msgs: usize) -> impl Strategy<Value = Vec<Traffic>> {
    prop::collection::vec(
        (0..terminals, 0..terminals, 0..3usize, prop_oneof![Just(0u32), Just(64u32)]).prop_map(
            |(src, dst, class, payload)| Traffic {
                src,
                dst,
                class,
                payload,
            },
        ),
        1..max_msgs,
    )
}

/// Injects traffic, runs to drain, and checks global invariants: every
/// packet delivered exactly once at its destination, no credit violations.
fn check_conservation(net: &mut Network, terminals: &[nocout_repro::substrates::noc::TerminalId], traffic: &[Traffic]) {
    let mut expected = vec![0usize; terminals.len()];
    for (i, t) in traffic.iter().enumerate() {
        let class = MessageClass::ALL[t.class];
        net.inject(terminals[t.src], terminals[t.dst], class, t.payload, i as u64);
        expected[t.dst] += 1;
    }
    assert!(
        net.run_until_drained(500_000),
        "network failed to drain (possible deadlock)"
    );
    net.check_invariants();
    let mut seen = std::collections::HashSet::new();
    for (d, term) in terminals.iter().enumerate() {
        let mut got = 0;
        while let Some(delivery) = net.poll(*term) {
            assert!(
                seen.insert(delivery.packet.token),
                "token {} delivered twice",
                delivery.packet.token
            );
            assert_eq!(delivery.packet.dst, *term, "misrouted packet");
            got += 1;
        }
        assert_eq!(got, expected[d], "terminal {d} delivery count");
    }
    assert_eq!(seen.len(), traffic.len(), "packets lost");
}

/// Drives two identical networks in lockstep — one through the production
/// masked/dirty-list switch path (`tick`), one through the reference
/// full-scan path (`tick_reference`, which probes every queue front and
/// never takes the radix or lone-candidate fast paths) — and asserts every
/// observable agrees: per-terminal deliveries each cycle, packets in
/// flight, and finally the round-robin arbiter state and per-port
/// `flits_sent` counters. Injections are spread over time (the `gap`
/// field) so the comparison covers transient occupancy patterns, not just
/// a single burst.
fn check_flat_matches_reference(
    fast: &mut Network,
    reference: &mut Network,
    terminals: &[nocout_repro::substrates::noc::TerminalId],
    traffic: &[(Traffic, u8)],
) {
    let step = |fast: &mut Network, reference: &mut Network| {
        fast.tick();
        reference.tick_reference();
        assert_eq!(fast.packets_in_flight(), reference.packets_in_flight());
        for term in terminals {
            loop {
                let (a, b) = (fast.poll(*term), reference.poll(*term));
                assert_eq!(a, b, "deliveries diverged at cycle {}", fast.now());
                if a.is_none() {
                    break;
                }
            }
        }
    };
    for (i, (t, gap)) in traffic.iter().enumerate() {
        let class = MessageClass::ALL[t.class];
        fast.inject(terminals[t.src], terminals[t.dst], class, t.payload, i as u64);
        reference.inject(terminals[t.src], terminals[t.dst], class, t.payload, i as u64);
        for _ in 0..*gap {
            step(fast, reference);
        }
    }
    let mut budget = 200_000u32;
    while fast.packets_in_flight() > 0 {
        assert!(budget > 0, "networks failed to drain");
        budget -= 1;
        step(fast, reference);
    }
    fast.check_invariants();
    reference.check_invariants();
    assert_eq!(
        fast.debug_rr_state(),
        reference.debug_rr_state(),
        "round-robin arbiter state diverged"
    );
    for r in 0..fast.num_routers() {
        let id = nocout_repro::substrates::noc::RouterId(r as u16);
        assert_eq!(
            fast.router(id).flits_sent_per_port(),
            reference.router(id).flits_sent_per_port(),
            "per-port flit counts diverged at router {r}"
        );
    }
}

fn timed_traffic_strategy(
    terminals: usize,
    max_msgs: usize,
) -> impl Strategy<Value = Vec<(Traffic, u8)>> {
    prop::collection::vec(
        (
            (0..terminals, 0..terminals, 0..3usize, prop_oneof![Just(0u32), Just(64u32)])
                .prop_map(|(src, dst, class, payload)| Traffic {
                    src,
                    dst,
                    class,
                    payload,
                }),
            0u8..6,
        ),
        1..max_msgs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mesh_delivers_every_packet_exactly_once(traffic in traffic_strategy(16, 120)) {
        let mut mesh = build_mesh(&MeshSpec::with_tiles(16));
        let terminals = mesh.tile_terminals.clone();
        check_conservation(&mut mesh.network, &terminals, &traffic);
    }

    #[test]
    fn fbfly_delivers_every_packet_exactly_once(traffic in traffic_strategy(16, 120)) {
        let spec = FbflySpec { cols: 4, rows: 4, ..FbflySpec::paper_64() };
        let mut fb = build_fbfly(&spec);
        let terminals = fb.tile_terminals.clone();
        check_conservation(&mut fb.network, &terminals, &traffic);
    }

    #[test]
    fn nocout_delivers_every_packet_exactly_once(traffic in traffic_strategy(24, 120)) {
        // 16 cores + 8 LLC tiles as the terminal universe.
        let mut n = build_nocout(&NocOutSpec {
            rows_per_side: 1,
            ..NocOutSpec::paper_64()
        });
        let mut terminals = n.core_terminals.clone();
        terminals.extend(n.llc_terminals.clone());
        check_conservation(&mut n.network, &terminals, &traffic);
    }

    #[test]
    fn mesh_flat_switch_matches_reference(traffic in timed_traffic_strategy(16, 60)) {
        let mut fast = build_mesh(&MeshSpec::with_tiles(16));
        let mut reference = build_mesh(&MeshSpec::with_tiles(16));
        let terminals = fast.tile_terminals.clone();
        check_flat_matches_reference(
            &mut fast.network,
            &mut reference.network,
            &terminals,
            &traffic,
        );
    }

    #[test]
    fn fbfly_flat_switch_matches_reference(traffic in timed_traffic_strategy(16, 60)) {
        let spec = FbflySpec { cols: 4, rows: 4, ..FbflySpec::paper_64() };
        let mut fast = build_fbfly(&spec);
        let mut reference = build_fbfly(&spec);
        let terminals = fast.tile_terminals.clone();
        check_flat_matches_reference(
            &mut fast.network,
            &mut reference.network,
            &terminals,
            &traffic,
        );
    }

    #[test]
    fn nocout_flat_switch_matches_reference(traffic in timed_traffic_strategy(28, 60)) {
        // Express links give some tree nodes a third input port, covering
        // both sides of the radix-≤2 gather fast path on one topology.
        let spec = NocOutSpec {
            columns: 4,
            rows_per_side: 3,
            express_links: true,
            ..NocOutSpec::paper_64()
        };
        let mut fast = build_nocout(&spec);
        let mut reference = build_nocout(&spec);
        let mut terminals = fast.core_terminals.clone();
        terminals.extend(fast.llc_terminals.clone());
        check_flat_matches_reference(
            &mut fast.network,
            &mut reference.network,
            &terminals,
            &traffic,
        );
    }

    #[test]
    fn same_class_same_pair_arrives_in_order(
        count in 2..20usize,
        payload in prop_oneof![Just(0u32), Just(64u32)],
    ) {
        let mut mesh = build_mesh(&MeshSpec::with_tiles(16));
        let src = mesh.tile_terminals[0];
        let dst = mesh.tile_terminals[15];
        for i in 0..count {
            mesh.network.inject(src, dst, MessageClass::Response, payload, i as u64);
        }
        prop_assert!(mesh.network.run_until_drained(100_000));
        let mut tokens = Vec::new();
        while let Some(d) = mesh.network.poll(dst) {
            tokens.push(d.packet.token);
        }
        let sorted: Vec<u64> = (0..count as u64).collect();
        prop_assert_eq!(tokens, sorted, "wormhole must preserve per-pair order");
    }

    #[test]
    fn latency_monotone_in_distance(col in 1..8usize) {
        let mut mesh = build_mesh(&MeshSpec::paper_64());
        let t0 = mesh.tile_terminals[0];
        let near = mesh.tile_terminals[1];
        let far = mesh.tile_terminals[col.max(1)];
        let lat = |net: &mut Network, dst| {
            net.inject(t0, dst, MessageClass::Request, 0, 0);
            for _ in 0..1000 {
                net.tick();
                if let Some(d) = net.poll(dst) {
                    return d.latency();
                }
            }
            panic!("undelivered");
        };
        let l_near = lat(&mut mesh.network, near);
        let l_far = lat(&mut mesh.network, far);
        prop_assert!(l_far >= l_near);
    }
}
