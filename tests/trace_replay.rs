//! The trace workload class's contract: a captured trace replays to chip
//! metrics bit-identical to the synthetic run that produced it, across
//! organizations and seeds, and participates in the results cache under
//! its content hash (so editing a stream invalidates cached replays).

use nocout_repro::cache::ResultsCache;
use nocout_repro::prelude::*;
use nocout_repro::runner::BatchRunner;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "nocout-trace-replay-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn assert_metrics_identical(a: &SystemMetrics, b: &SystemMetrics, ctx: &str) {
    assert_eq!(a.active_cores, b.active_cores, "{ctx}: active cores");
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycles");
    assert_eq!(a.instructions, b.instructions, "{ctx}: instructions");
    assert_eq!(
        a.fetch_stall_fraction.to_bits(),
        b.fetch_stall_fraction.to_bits(),
        "{ctx}: fetch stall fraction"
    );
    for (i, (x, y)) in a.per_core_ipc.iter().zip(&b.per_core_ipc).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: core {i} ipc");
    }
    assert_eq!(a.llc.accesses, b.llc.accesses, "{ctx}: llc accesses");
    assert_eq!(a.llc.hits, b.llc.hits, "{ctx}: llc hits");
    assert_eq!(a.llc.misses, b.llc.misses, "{ctx}: llc misses");
    assert_eq!(a.llc.snoops_sent, b.llc.snoops_sent, "{ctx}: snoops");
    assert_eq!(a.llc.writebacks, b.llc.writebacks, "{ctx}: writebacks");
    assert_eq!(a.network.packets, b.network.packets, "{ctx}: packets");
    assert_eq!(
        a.network.mean_latency.to_bits(),
        b.network.mean_latency.to_bits(),
        "{ctx}: mean latency"
    );
    assert_eq!(a.network.p99_latency, b.network.p99_latency, "{ctx}: p99");
    assert_eq!(a.memory.reads, b.memory.reads, "{ctx}: memory reads");
    assert_eq!(a.memory.writes, b.memory.writes, "{ctx}: memory writes");
}

fn replay_spec(chip: ChipConfig, dir: &std::path::Path, window: MeasurementWindow, seed: u64) -> RunSpec {
    let set = nocout_repro::substrates::workloads::trace::TraceSet::load(dir)
        .expect("trace set loads");
    RunSpec {
        chip,
        workload: WorkloadClass::Trace(set),
        window,
        seed,
    }
}

/// Capture → replay identity on both detailed organizations, 64- and
/// 16-core workloads, and multiple seeds.
#[test]
fn replayed_trace_reproduces_synthetic_metrics_bit_for_bit() {
    let window = MeasurementWindow::new(2_000, 5_000);
    let instrs = trace_capture_len(&window);
    for (org, workload, seed) in [
        (Organization::Mesh, Workload::MapReduceC, 3u64),
        (Organization::NocOut, Workload::WebSearch, 1),
        (Organization::FlattenedButterfly, Workload::DataServing, 7),
    ] {
        let dir = TempDir::new("identity");
        let chip = ChipConfig::paper(org);
        capture_synthetic_trace(chip, workload, seed, &dir.0, instrs).expect("capture");
        let synth = run(&RunSpec {
            chip,
            workload: workload.into(),
            window,
            seed,
        });
        let replay = run(&replay_spec(chip, &dir.0, window, seed));
        assert_metrics_identical(&synth, &replay, &format!("{org} {workload:?} seed {seed}"));
    }
}

/// A short capture loops: the replay still drives the chip forever, and
/// the looped stream is deterministic run to run.
#[test]
fn looping_replay_is_deterministic() {
    let dir = TempDir::new("loop");
    let chip = ChipConfig::with_cores(Organization::Mesh, 16);
    // Far fewer instructions than the run consumes, forcing wraparound.
    capture_synthetic_trace(chip, Workload::SatSolver, 2, &dir.0, 2_000).expect("capture");
    let window = MeasurementWindow::new(2_000, 6_000);
    let a = run(&replay_spec(chip, &dir.0, window, 2));
    let b = run(&replay_spec(chip, &dir.0, window, 2));
    assert_metrics_identical(&a, &b, "looping replay");
    assert!(a.instructions > 0, "looped replay must make progress");
}

/// Replay runs cache under the trace's content hash: a second identical
/// batch is all hits, and editing one stream byte invalidates.
#[test]
fn trace_replay_participates_in_the_results_cache() {
    let trace_dir = TempDir::new("cache-trace");
    let cache_dir = TempDir::new("cache-entries");
    let chip = ChipConfig::with_cores(Organization::Mesh, 16);
    capture_synthetic_trace(chip, Workload::MapReduceW, 5, &trace_dir.0, 3_000)
        .expect("capture");
    let window = MeasurementWindow::new(1_000, 3_000);
    let spec = replay_spec(chip, &trace_dir.0, window, 5);

    let runner = BatchRunner::serial().with_cache(ResultsCache::open(&cache_dir.0).unwrap());
    let first = runner.run_batch(std::slice::from_ref(&spec));
    assert_eq!(runner.cache().unwrap().misses(), 1, "cold cache misses");

    let warm = BatchRunner::serial().with_cache(ResultsCache::open(&cache_dir.0).unwrap());
    let second = warm.run_batch(std::slice::from_ref(&spec));
    assert_eq!(warm.cache().unwrap().hits(), 1, "warm cache must hit");
    assert_metrics_identical(&first[0], &second[0], "cache round trip");

    // Edit one byte of one stream: the content hash (and therefore the
    // cache key) changes, so the same path must now miss.
    let stream = std::fs::read_dir(&trace_dir.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "nctrace"))
        .expect("a stream file");
    let mut bytes = std::fs::read(&stream).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x01;
    std::fs::write(&stream, bytes).unwrap();
    let edited_spec = replay_spec(chip, &trace_dir.0, window, 5);
    assert_ne!(
        spec.cache_key(),
        edited_spec.cache_key(),
        "edited trace must change the cache key"
    );
    let probe = BatchRunner::serial().with_cache(ResultsCache::open(&cache_dir.0).unwrap());
    probe.run_batch(std::slice::from_ref(&edited_spec));
    assert_eq!(probe.cache().unwrap().misses(), 1, "edited trace must miss");
}

/// A trace with more streams than the chip has cores must fail loudly:
/// silently dropping streams would simulate a different workload than
/// the trace records.
#[test]
#[should_panic(expected = "set active_core_override")]
fn oversized_trace_panics_instead_of_dropping_streams() {
    let dir = TempDir::new("oversized");
    capture_synthetic_trace(
        ChipConfig::paper(Organization::Mesh),
        Workload::MapReduceC,
        1,
        &dir.0,
        500,
    )
    .expect("capture 64 streams");
    let _ = ScaleOutChip::new(
        ChipConfig::with_cores(Organization::Mesh, 16),
        WorkloadClass::Trace(
            nocout_repro::substrates::workloads::trace::TraceSet::load(&dir.0).unwrap(),
        ),
        1,
    );
}

/// Subsetting a trace is allowed when requested explicitly through
/// `active_core_override`.
#[test]
fn explicit_override_subsets_a_trace() {
    let dir = TempDir::new("subset");
    capture_synthetic_trace(
        ChipConfig::paper(Organization::Mesh),
        Workload::MapReduceC,
        1,
        &dir.0,
        500,
    )
    .expect("capture");
    let mut cfg = ChipConfig::with_cores(Organization::Mesh, 16);
    cfg.active_core_override = Some(8);
    let chip = ScaleOutChip::new(
        cfg,
        WorkloadClass::Trace(
            nocout_repro::substrates::workloads::trace::TraceSet::load(&dir.0).unwrap(),
        ),
        1,
    );
    assert_eq!(chip.active_cores(), 8);
}

/// The explorer-style `trace:PATH` class activates one core per stream
/// and places them in the organization's preferred order.
#[test]
fn replay_activates_one_core_per_stream() {
    let dir = TempDir::new("slots");
    let chip = ChipConfig::paper(Organization::NocOut);
    capture_synthetic_trace(chip, Workload::WebFrontend, 1, &dir.0, 1_000).expect("capture");
    let set = nocout_repro::substrates::workloads::trace::TraceSet::load(&dir.0).unwrap();
    assert_eq!(set.streams(), 16, "Web Frontend activates 16 cores");
    let synth = ScaleOutChip::new(chip, Workload::WebFrontend, 1);
    let replay = ScaleOutChip::new(chip, WorkloadClass::Trace(set), 1);
    assert_eq!(
        synth.active_core_ids(),
        replay.active_core_ids(),
        "replay must land on the cores the capture ran on"
    );
}
