//! Property-based differential tests for the core memory-path
//! structures: the ring-buffer ROB + line-indexed wakeup index against a
//! `VecDeque` model of the pre-refactor ROB, and the array-backed L1
//! MSHR file against a `HashMap` model of the pre-refactor MSHRs.
//!
//! These are the structure-level halves of the old-vs-new proof (the
//! chip-level half is `tests/chip_golden_metrics.rs`): every operation
//! sequence must leave the new structures observably identical to the
//! containers they replaced.

use nocout_repro::substrates::cpu::rob::{RingRob, WakeupIndex};
use nocout_repro::substrates::mem::mshr::{MshrFile, MshrRequest};
use nocout_repro::substrates::sim::Cycle;
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

/// The pre-refactor ROB entry: `VecDeque<RobState>` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelEntry {
    Ready(u64),
    Waiting(u64),
}

const ROB_CAP: usize = 16;

/// One scripted ROB operation (decoded from proptest-generated tuples).
#[derive(Debug, Clone, Copy)]
enum RobOp {
    /// Push a ready entry completing at the cycle.
    PushReady(u64),
    /// Push an entry waiting on the line.
    PushWaiting(u64),
    /// Retire the head if it is ready at the cycle.
    TryPop(u64),
    /// Fill the line, waking its waiters ready at the cycle.
    Fill(u64, u64),
}

fn decode(kind: u8, line: u64, at: u64) -> RobOp {
    match kind % 4 {
        0 => RobOp::PushReady(at),
        1 => RobOp::PushWaiting(line),
        2 => RobOp::TryPop(at),
        _ => RobOp::Fill(line, at),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_rob_matches_vecdeque_model(
        ops in prop::collection::vec((0u8..4, 0u64..6, 1u64..1000), 1..300)
    ) {
        let mut rob = RingRob::new(ROB_CAP);
        let mut wakeup = WakeupIndex::new(8);
        let mut model: VecDeque<ModelEntry> = VecDeque::new();
        for &(kind, line, at) in &ops {
            match decode(kind, line, at) {
                RobOp::PushReady(at) => {
                    if model.len() < ROB_CAP {
                        model.push_back(ModelEntry::Ready(at));
                        rob.push_ready(Cycle(at));
                    }
                }
                RobOp::PushWaiting(line) => {
                    if model.len() < ROB_CAP {
                        model.push_back(ModelEntry::Waiting(line));
                        let slot = rob.push_waiting();
                        wakeup.enqueue(line, slot, &mut rob);
                    }
                }
                RobOp::TryPop(now) => {
                    let model_pops = matches!(
                        model.front(),
                        Some(ModelEntry::Ready(a)) if *a <= now
                    );
                    let ring_pops = rob
                        .front()
                        .is_some_and(|s| s.retirable(Cycle(now)));
                    prop_assert_eq!(model_pops, ring_pops);
                    if model_pops {
                        model.pop_front();
                        rob.pop_front();
                    }
                }
                RobOp::Fill(line, at) => {
                    // Pre-refactor semantics: scan every entry, waking
                    // each one waiting on the line.
                    let mut model_woken = 0usize;
                    for e in &mut model {
                        if *e == ModelEntry::Waiting(line) {
                            *e = ModelEntry::Ready(at);
                            model_woken += 1;
                        }
                    }
                    let ring_woken = wakeup.wake_line(line, Cycle(at), &mut rob);
                    prop_assert_eq!(model_woken, ring_woken);
                }
            }
            // Invariants after every op.
            prop_assert_eq!(model.len(), rob.len());
            let model_waiting = model
                .iter()
                .filter(|e| matches!(e, ModelEntry::Waiting(_)))
                .count();
            prop_assert_eq!(model_waiting, wakeup.waiting());
            match (model.front(), rob.front()) {
                (None, None) => {}
                (Some(ModelEntry::Waiting(_)), Some(s)) => prop_assert!(s.is_waiting()),
                (Some(ModelEntry::Ready(a)), Some(s)) => {
                    prop_assert!(!s.is_waiting());
                    prop_assert_eq!(Cycle(*a), s.ready_at());
                }
                (m, _) => prop_assert!(false, "front mismatch: model {m:?}"),
            }
        }
    }

    #[test]
    fn array_mshrs_match_hashmap_model(
        ops in prop::collection::vec((0u8..3, 0u64..12, any::<bool>()), 1..300)
    ) {
        const CAP: usize = 8;
        let mut file = MshrFile::new(CAP);
        // The pre-refactor structure: line → (waiters, wants_write).
        let mut model: HashMap<u64, (Vec<u64>, bool)> = HashMap::new();
        let mut next_waiter = 0u64;
        let mut scratch = Vec::new();
        for &(kind, line, write) in &ops {
            if kind < 2 {
                // Request (twice as likely as release, so files fill up).
                let waiter = next_waiter;
                next_waiter += 1;
                let expect = if let Some(e) = model.get_mut(&line) {
                    e.0.push(waiter);
                    e.1 |= write;
                    MshrRequest::Merged
                } else if model.len() >= CAP {
                    MshrRequest::Full
                } else {
                    model.insert(line, (vec![waiter], write));
                    MshrRequest::Allocated
                };
                prop_assert_eq!(file.request(line, waiter, write), expect);
            } else if let Some((waiters, wants_write)) = model.remove(&line) {
                scratch.clear();
                let got_write = file.release(line, &mut scratch);
                prop_assert_eq!(&scratch, &waiters, "waiter order must be push order");
                prop_assert_eq!(got_write, wants_write);
            } else {
                // No outstanding miss: release would panic in both
                // implementations; just check membership agrees.
                prop_assert!(!file.contains(line));
            }
            prop_assert_eq!(file.len(), model.len());
            for l in model.keys() {
                prop_assert!(file.contains(*l));
            }
        }
    }
}
