//! The results cache's contract: hits are bit-identical to simulation,
//! a warm cache performs zero simulations, and any spec change misses.

use nocout_repro::cache::ResultsCache;
use nocout_repro::prelude::*;
use nocout_repro::runner::BatchRunner;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-cleaning cache directory per test.
struct TempCacheDir(PathBuf);

impl TempCacheDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "nocout-results-cache-test-{}-{}-{}",
            tag,
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        TempCacheDir(dir)
    }
}

impl Drop for TempCacheDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn grid() -> Vec<RunSpec> {
    let window = MeasurementWindow::new(1_000, 3_000);
    let mut specs = Vec::new();
    for org in [Organization::Mesh, Organization::NocOut, Organization::IdealWire] {
        for seed in [1u64, 2] {
            specs.push(RunSpec {
                chip: ChipConfig::paper(org),
                workload: Workload::WebSearch.into(),
                window,
                seed,
            });
        }
    }
    specs
}

#[test]
fn second_sweep_is_all_hits_and_bit_identical() {
    let dir = TempCacheDir::new("sweep");
    let specs = grid();

    let cold = BatchRunner::serial().with_cache(ResultsCache::open(&dir.0).unwrap());
    let first = cold.run_batch(&specs);
    let cache = cold.cache().unwrap();
    assert_eq!(cache.hits(), 0, "cold cache cannot hit");
    assert_eq!(cache.misses(), specs.len() as u64);

    // A fresh handle over the same directory: every point must come back
    // from disk (zero simulations) and match the first run bit for bit.
    let warm = BatchRunner::serial().with_cache(ResultsCache::open(&dir.0).unwrap());
    let second = warm.run_batch(&specs);
    let cache = warm.cache().unwrap();
    assert_eq!(cache.misses(), 0, "warm cache must not simulate");
    assert_eq!(cache.hits(), specs.len() as u64);

    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(a.instructions, b.instructions, "spec {i}");
        assert_eq!(a.cycles, b.cycles, "spec {i}");
        assert_eq!(a.llc.accesses, b.llc.accesses, "spec {i}");
        assert_eq!(a.network.packets, b.network.packets, "spec {i}");
        assert_eq!(
            a.network.mean_latency.to_bits(),
            b.network.mean_latency.to_bits(),
            "spec {i}"
        );
        assert_eq!(
            a.fetch_stall_fraction.to_bits(),
            b.fetch_stall_fraction.to_bits(),
            "spec {i}"
        );
        for (x, y) in a.per_core_ipc.iter().zip(&b.per_core_ipc) {
            assert_eq!(x.to_bits(), y.to_bits(), "spec {i}");
        }
        assert_eq!(a.memory.reads, b.memory.reads, "spec {i}");
        assert_eq!(a.memory.writes, b.memory.writes, "spec {i}");
    }
}

#[test]
fn cached_results_match_uncached_run() {
    let dir = TempCacheDir::new("vs-uncached");
    let specs = grid();
    let uncached = BatchRunner::serial().run_batch(&specs);
    let runner = BatchRunner::serial().with_cache(ResultsCache::open(&dir.0).unwrap());
    runner.run_batch(&specs); // populate
    let cached = runner.run_batch(&specs); // read back
    for (i, (a, b)) in uncached.iter().zip(&cached).enumerate() {
        assert_eq!(a.instructions, b.instructions, "spec {i}");
        assert_eq!(
            a.aggregate_ipc().to_bits(),
            b.aggregate_ipc().to_bits(),
            "spec {i}"
        );
    }
}

#[test]
fn any_spec_change_misses() {
    let dir = TempCacheDir::new("invalidation");
    let cache = ResultsCache::open(&dir.0).unwrap();
    let base = RunSpec {
        chip: ChipConfig::with_cores(Organization::Mesh, 16),
        workload: Workload::MapReduceC.into(),
        window: MeasurementWindow::new(500, 1_500),
        seed: 1,
    };
    cache.put(&base, &nocout_repro::run(&base));
    assert!(cache.get(&base).is_some(), "exact spec must hit");

    let mut longer = base.clone();
    longer.window.measure_cycles += 1;
    let mut narrower = base.clone();
    narrower.chip.link_width_bits = 64;
    for (label, miss) in [
        ("seed", base.clone().with_seed(2)),
        ("window", longer),
        ("link width", narrower),
    ] {
        assert!(cache.get(&miss).is_none(), "changed {label} must miss");
    }
}

#[test]
fn replication_through_cache_matches_serial() {
    let dir = TempCacheDir::new("replicated");
    let spec = RunSpec {
        chip: ChipConfig::with_cores(Organization::Mesh, 16),
        workload: Workload::SatSolver.into(),
        window: MeasurementWindow::new(500, 1_500),
        seed: 1,
    };
    let seeds = SeedSet::consecutive(1, 3);
    let plain = nocout_repro::run_replicated(&spec, &seeds);
    let runner = BatchRunner::serial().with_cache(ResultsCache::open(&dir.0).unwrap());
    runner.run_replicated(&spec, &seeds); // populate
    let cached = runner.run_replicated(&spec, &seeds); // all hits
    assert_eq!(runner.cache().unwrap().misses(), seeds.len() as u64);
    assert_eq!(plain.mean_ipc.to_bits(), cached.mean_ipc.to_bits());
    assert_eq!(plain.ci95.to_bits(), cached.ci95.to_bits());
    assert_eq!(plain.last.instructions, cached.last.instructions);
}

#[test]
fn corrupt_entry_degrades_to_miss_and_heals() {
    let dir = TempCacheDir::new("corrupt");
    let cache = ResultsCache::open(&dir.0).unwrap();
    let spec = RunSpec {
        chip: ChipConfig::with_cores(Organization::Mesh, 16),
        workload: Workload::WebFrontend.into(),
        window: MeasurementWindow::new(500, 1_000),
        seed: 4,
    };
    let metrics = nocout_repro::run(&spec);
    cache.put(&spec, &metrics);
    // Trash every entry file in the directory.
    for entry in std::fs::read_dir(&dir.0).unwrap() {
        std::fs::write(entry.unwrap().path(), "garbage\n").unwrap();
    }
    assert!(cache.get(&spec).is_none(), "corrupt entry must miss");
    cache.put(&spec, &metrics);
    let healed = cache.get(&spec).expect("rewritten entry must hit");
    assert_eq!(healed.instructions, metrics.instructions);
}
