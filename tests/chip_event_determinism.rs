//! The event-driven chip tick's contract: active-set scheduling, idle
//! fast-forward and block-based instruction delivery never change
//! results.
//!
//! `ScaleOutChip::tick` visits only LLC tiles and memory channels with
//! pending work and feeds every core in instruction *blocks* (one
//! virtual `refill` per 64 instructions), and `ScaleOutChip::run_for`
//! jumps over globally idle stretches; all of it must be bit-identical
//! to the full-scan, per-instruction reference (`tick_reference`)
//! across every organization, workload mix and seed — the same
//! differential pattern `tests/batch_determinism.rs` applies to the
//! parallel batch engine and `tests/trace_replay.rs` to the trace
//! workload class.

use nocout_repro::prelude::*;

const ALL_ORGS: [Organization; 5] = [
    Organization::Mesh,
    Organization::FlattenedButterfly,
    Organization::NocOut,
    Organization::IdealWire,
    Organization::ZeroLoadMesh,
];

fn assert_metrics_identical(a: &SystemMetrics, b: &SystemMetrics, ctx: &str) {
    assert_eq!(a.active_cores, b.active_cores, "{ctx}: active cores");
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycles");
    assert_eq!(a.instructions, b.instructions, "{ctx}: instructions");
    assert_eq!(
        a.fetch_stall_fraction.to_bits(),
        b.fetch_stall_fraction.to_bits(),
        "{ctx}: fetch stall fraction"
    );
    assert_eq!(a.per_core_ipc.len(), b.per_core_ipc.len(), "{ctx}");
    for (i, (x, y)) in a.per_core_ipc.iter().zip(&b.per_core_ipc).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: core {i} ipc");
    }
    assert_eq!(a.llc.accesses, b.llc.accesses, "{ctx}: llc accesses");
    assert_eq!(a.llc.hits, b.llc.hits, "{ctx}: llc hits");
    assert_eq!(a.llc.misses, b.llc.misses, "{ctx}: llc misses");
    assert_eq!(a.llc.snoops_sent, b.llc.snoops_sent, "{ctx}: snoops");
    assert_eq!(
        a.llc.snooping_accesses, b.llc.snooping_accesses,
        "{ctx}: snooping accesses"
    );
    assert_eq!(a.llc.writebacks, b.llc.writebacks, "{ctx}: writebacks");
    assert_eq!(a.network.packets, b.network.packets, "{ctx}: packets");
    assert_eq!(
        a.network.mean_latency.to_bits(),
        b.network.mean_latency.to_bits(),
        "{ctx}: mean latency"
    );
    assert_eq!(a.network.p50_latency, b.network.p50_latency, "{ctx}: p50");
    assert_eq!(a.network.p99_latency, b.network.p99_latency, "{ctx}: p99");
    assert_eq!(
        a.network.buffer_writes, b.network.buffer_writes,
        "{ctx}: buffer writes"
    );
    assert_eq!(
        a.network.xbar_traversals, b.network.xbar_traversals,
        "{ctx}: xbar traversals"
    );
    assert_eq!(a.memory.reads, b.memory.reads, "{ctx}: memory reads");
    assert_eq!(a.memory.writes, b.memory.writes, "{ctx}: memory writes");
}

/// Active-set, block-fed ticking matches the full-scan per-instruction
/// reference, cycle for cycle, on every organization and across
/// workloads and seeds — including intermediate in-flight state, not
/// just final counters.
#[test]
fn active_set_tick_is_bit_identical_to_full_scan() {
    for org in ALL_ORGS {
        for (workload, seed) in [
            (Workload::WebSearch, 1u64),
            (Workload::DataServing, 7),
            (Workload::SatSolver, 13),
            (Workload::MapReduceW, 5),
        ] {
            let cfg = ChipConfig::paper(org);
            let mut fast = ScaleOutChip::new(cfg, workload, seed);
            let mut reference = ScaleOutChip::new(cfg, workload, seed);
            for cycle in 0..4_000u64 {
                fast.tick();
                reference.tick_reference();
                if cycle % 512 == 0 {
                    assert_eq!(
                        fast.inflight_messages(),
                        reference.inflight_messages(),
                        "{org} {workload:?} seed {seed} cycle {cycle}: in-flight msgs"
                    );
                    assert_eq!(
                        fast.inflight_transactions(),
                        reference.inflight_transactions(),
                        "{org} {workload:?} seed {seed} cycle {cycle}: in-flight txns"
                    );
                }
            }
            let ctx = format!("{org} {workload:?} seed {seed}");
            assert_metrics_identical(&fast.metrics(), &reference.metrics(), &ctx);
        }
    }
}

/// Mixing the two tick flavours mid-run is also safe: the active sets
/// stay consistent whichever path maintained them last.
#[test]
fn interleaved_tick_flavours_stay_consistent() {
    let cfg = ChipConfig::paper(Organization::Mesh);
    let mut mixed = ScaleOutChip::new(cfg, Workload::MapReduceC, 3);
    let mut reference = ScaleOutChip::new(cfg, Workload::MapReduceC, 3);
    for cycle in 0..3_000u64 {
        if (cycle / 64) % 2 == 0 {
            mixed.tick();
        } else {
            mixed.tick_reference();
        }
        reference.tick_reference();
    }
    assert_metrics_identical(&mixed.metrics(), &reference.metrics(), "mixed flavours");
}

/// `run_for` (with chip-level idle fast-forward) reproduces per-cycle
/// ticking exactly, including the stall counters it applies in bulk.
#[test]
fn run_for_fast_forward_is_bit_identical() {
    for org in ALL_ORGS {
        let cfg = ChipConfig::paper(org);
        let (warmup, measure) = (2_000u64, 4_000u64);
        let mut jumped = ScaleOutChip::new(cfg, Workload::WebFrontend, 9);
        jumped.run_for(warmup);
        jumped.reset_stats();
        jumped.run_for(measure);

        let mut stepped = ScaleOutChip::new(cfg, Workload::WebFrontend, 9);
        for _ in 0..warmup {
            stepped.tick();
        }
        stepped.reset_stats();
        for _ in 0..measure {
            stepped.tick();
        }

        assert_eq!(jumped.now(), stepped.now(), "{org}: clocks must agree");
        assert_metrics_identical(&jumped.metrics(), &stepped.metrics(), &format!("{org}"));
    }
}

/// Service-level tail recording is purely observational: a run with
/// recording disabled produces bit-identical legacy metrics to one with
/// it enabled (the default). The tail histograms may only ever *read*
/// the simulation — never touch RNG draws, event order, or arbitration
/// state.
#[test]
fn tail_recording_does_not_perturb_simulation() {
    for org in [Organization::Mesh, Organization::NocOut] {
        for (workload, seed) in [(Workload::WebSearch, 1u64), (Workload::DataServing, 7)] {
            let cfg = ChipConfig::paper(org);
            let mut recording = ScaleOutChip::new(cfg, workload, seed);
            let mut silent = ScaleOutChip::new(cfg, workload, seed);
            silent.set_tail_recording(false);
            recording.run_for(2_000);
            silent.run_for(2_000);
            recording.reset_stats();
            silent.reset_stats();
            recording.run_for(6_000);
            silent.run_for(6_000);
            let (rm, sm) = (recording.metrics(), silent.metrics());
            let ctx = format!("{org} {workload:?} seed {seed}");
            assert_metrics_identical(&rm, &sm, &ctx);
            // The recording run actually measured something...
            assert!(rm.block_latency.count > 0, "{ctx}: no blocks recorded");
            assert!(rm.fill_latency.count > 0, "{ctx}: no fills recorded");
            // ...and the silent run recorded nothing in the gated hists.
            assert_eq!(sm.block_latency.count, 0, "{ctx}");
            assert_eq!(sm.fill_latency.count, 0, "{ctx}");
            assert_eq!(sm.llc_miss_latency.count, 0, "{ctx}");
        }
    }
}

/// A chip with few active cores (the paper's common case: a 16-core
/// workload on a 64-tile die) must still drain all traffic through the
/// active sets — nothing gets stranded by the idle fast-path.
#[test]
fn low_occupancy_chip_drains_through_active_sets() {
    for org in [Organization::Mesh, Organization::NocOut] {
        let mut chip = ScaleOutChip::new(ChipConfig::paper(org), Workload::WebSearch, 5);
        assert_eq!(chip.active_cores(), 16, "{org}");
        chip.run_for(20_000);
        let m = chip.metrics();
        assert!(m.instructions > 1_000, "{org}: retired {}", m.instructions);
        assert!(m.memory.reads > 0, "{org}: memory must be reached");
        // In-flight work stays bounded: requests are not being lost by
        // components dropping out of the active sets prematurely.
        assert!(
            chip.inflight_transactions() <= 16 * 10,
            "{org}: {} transactions stranded",
            chip.inflight_transactions()
        );
    }
}
