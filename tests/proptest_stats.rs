//! Property-based tests for [`LatencyHist`] against a sorted-`Vec`
//! oracle: the histogram's percentiles must bracket the exact rank
//! statistic within the documented 1/32 relative error bound, and merge
//! must equal recording the concatenated sample stream.
//!
//! This is the structure-level half of the service-level-metrics proof
//! (the chip-level half is the lockstep test in
//! `tests/chip_event_determinism.rs`: recording must not perturb the
//! simulation).

use nocout_repro::substrates::sim::stats::LatencyHist;
use proptest::prelude::*;

/// The exact q-quantile under the histogram's rank convention:
/// rank = max(ceil(q * n), 1), value = sorted[rank - 1].
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// A latency sample: mostly small values (dense linear buckets), some
/// mid-range, and occasional full-range values exercising the top
/// log-linear buckets.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..64, 0u64..100_000, 0u64..u64::MAX]
}

const QUANTILES: [f64; 5] = [0.01, 0.5, 0.9, 0.99, 0.999];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Every percentile is never below the exact quantile and at most
    // a factor 33/32 above it (the log-linear bucket width bound).
    #[test]
    fn percentiles_bracket_the_sorted_oracle(
        samples in prop::collection::vec(sample(), 1..500)
    ) {
        let mut h = LatencyHist::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.total(), samples.len() as u64);
        for q in QUANTILES {
            let exact = exact_percentile(&sorted, q);
            let approx = h.percentile(q);
            prop_assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            prop_assert!(
                (approx as u128) * 32 <= (exact as u128) * 33 + 32,
                "q={q}: approx {approx} > exact {exact} * 33/32"
            );
        }
    }

    // Merging two histograms is indistinguishable from recording the
    // concatenated stream: same totals, same mean bits, same buckets
    // (hence same percentiles at every q).
    #[test]
    fn merge_equals_concatenation(
        a in prop::collection::vec(sample(), 0..300),
        b in prop::collection::vec(sample(), 0..300),
    ) {
        let mut ha = LatencyHist::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = LatencyHist::new();
        for &v in &b {
            hb.record(v);
        }
        let mut hc = LatencyHist::new();
        for &v in a.iter().chain(&b) {
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.total(), hc.total());
        prop_assert_eq!(ha.mean().to_bits(), hc.mean().to_bits());
        for q in QUANTILES {
            prop_assert_eq!(ha.percentile(q), hc.percentile(q), "q={}", q);
        }
    }

    // `reset` returns the histogram to the freshly-constructed state:
    // a reset-then-record run matches a fresh histogram exactly.
    #[test]
    fn reset_is_a_fresh_start(
        first in prop::collection::vec(sample(), 0..200),
        second in prop::collection::vec(sample(), 0..200),
    ) {
        let mut reused = LatencyHist::new();
        for &v in &first {
            reused.record(v);
        }
        reused.reset();
        prop_assert_eq!(reused.total(), 0);
        let mut fresh = LatencyHist::new();
        for &v in &second {
            reused.record(v);
            fresh.record(v);
        }
        prop_assert_eq!(reused.total(), fresh.total());
        prop_assert_eq!(reused.mean().to_bits(), fresh.mean().to_bits());
        for q in QUANTILES {
            prop_assert_eq!(reused.percentile(q), fresh.percentile(q), "q={}", q);
        }
    }
}
