//! The batch engine's contract: parallel execution never changes results.
//!
//! `BatchRunner::run_batch` must be bit-identical to the serial `run`
//! per spec, and the parallel `run_replicated` must reproduce the serial
//! replication statistics exactly — at any worker count.

use nocout_repro::prelude::*;
use nocout_repro::runner::BatchRunner;
use nocout_sim::config::{MeasurementWindow, SeedSet};

fn grid() -> Vec<RunSpec> {
    // A miniature campaign: organizations × workloads × seeds, covering
    // the flit-level fabrics and an analytic one.
    let window = MeasurementWindow::new(2_000, 5_000);
    let mut specs = Vec::new();
    for org in [
        Organization::Mesh,
        Organization::FlattenedButterfly,
        Organization::NocOut,
        Organization::IdealWire,
    ] {
        for (w, seed) in [(Workload::WebSearch, 1u64), (Workload::DataServing, 7)] {
            specs.push(RunSpec {
                chip: ChipConfig::paper(org),
                workload: w.into(),
                window,
                seed,
            });
        }
    }
    specs
}

#[test]
fn run_batch_is_bit_identical_to_serial_run() {
    let specs = grid();
    let serial: Vec<SystemMetrics> = specs.iter().map(nocout_repro::run).collect();
    for jobs in [2, 4, 8] {
        let batch = BatchRunner::new(jobs).run_batch(&specs);
        assert_eq!(batch.len(), serial.len());
        for (i, (a, b)) in serial.iter().zip(&batch).enumerate() {
            assert_eq!(a.instructions, b.instructions, "spec {i} at {jobs} jobs");
            assert_eq!(a.cycles, b.cycles, "spec {i} at {jobs} jobs");
            assert_eq!(a.llc.accesses, b.llc.accesses, "spec {i} at {jobs} jobs");
            assert_eq!(a.llc.snoops_sent, b.llc.snoops_sent, "spec {i} at {jobs} jobs");
            assert_eq!(a.network.packets, b.network.packets, "spec {i} at {jobs} jobs");
            assert_eq!(a.memory.reads, b.memory.reads, "spec {i} at {jobs} jobs");
            assert_eq!(a.memory.writes, b.memory.writes, "spec {i} at {jobs} jobs");
            // IPC is derived from counters; compare exact bits anyway to
            // catch any float-accumulation divergence.
            assert_eq!(
                a.aggregate_ipc().to_bits(),
                b.aggregate_ipc().to_bits(),
                "spec {i} at {jobs} jobs"
            );
            assert_eq!(a.per_core_ipc.len(), b.per_core_ipc.len());
            for (x, y) in a.per_core_ipc.iter().zip(&b.per_core_ipc) {
                assert_eq!(x.to_bits(), y.to_bits(), "spec {i} at {jobs} jobs");
            }
        }
    }
}

#[test]
fn parallel_replication_matches_serial_statistics() {
    let spec = RunSpec {
        chip: ChipConfig::paper(Organization::NocOut),
        workload: Workload::MapReduceW.into(),
        window: MeasurementWindow::new(2_000, 5_000),
        seed: 1,
    };
    let seeds = SeedSet::consecutive(1, 3);
    let serial = nocout_repro::run_replicated(&spec, &seeds);
    for jobs in [2, 3, 8] {
        let parallel = BatchRunner::new(jobs).run_replicated(&spec, &seeds);
        assert_eq!(
            serial.mean_ipc.to_bits(),
            parallel.mean_ipc.to_bits(),
            "mean at {jobs} jobs"
        );
        assert_eq!(
            serial.ci95.to_bits(),
            parallel.ci95.to_bits(),
            "ci95 at {jobs} jobs"
        );
        assert_eq!(
            serial.last.instructions, parallel.last.instructions,
            "last-seed metrics at {jobs} jobs"
        );
    }
}

#[test]
fn batch_of_one_and_empty_batch_work() {
    let runner = BatchRunner::new(4);
    assert!(runner.run_batch(&[]).is_empty());
    let spec = RunSpec::new(
        ChipConfig::with_cores(Organization::Mesh, 16),
        Workload::SatSolver,
    )
    .fast();
    let one = runner.run_batch(std::slice::from_ref(&spec));
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].instructions, nocout_repro::run(&spec).instructions);
}
