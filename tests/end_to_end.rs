//! End-to-end integration tests: full-system runs across organizations.

use nocout_repro::prelude::*;
use nocout_sim::config::MeasurementWindow;

fn quick(chip: ChipConfig, workload: Workload, seed: u64) -> SystemMetrics {
    run(&RunSpec {
        chip,
        workload: workload.into(),
        window: MeasurementWindow::new(3_000, 6_000),
        seed,
    })
}

#[test]
fn every_workload_runs_on_every_organization() {
    for org in Organization::EVALUATED {
        for w in Workload::ALL {
            let m = quick(ChipConfig::paper(org), w, 1);
            assert!(
                m.aggregate_ipc() > 0.05,
                "{org}/{w}: ipc {}",
                m.aggregate_ipc()
            );
            assert!(m.llc.accesses > 0, "{org}/{w}: no LLC traffic");
            assert!(m.network.packets > 0, "{org}/{w}: no network traffic");
        }
    }
}

#[test]
fn runs_are_bit_deterministic() {
    for org in [Organization::Mesh, Organization::NocOut] {
        let a = quick(ChipConfig::paper(org), Workload::DataServing, 9);
        let b = quick(ChipConfig::paper(org), Workload::DataServing, 9);
        assert_eq!(a.instructions, b.instructions, "{org}");
        assert_eq!(a.network.packets, b.network.packets, "{org}");
        assert_eq!(a.llc.accesses, b.llc.accesses, "{org}");
        assert_eq!(a.memory.reads, b.memory.reads, "{org}");
    }
}

#[test]
fn low_diameter_networks_beat_the_mesh() {
    // The paper's headline ordering must hold on every 64-core workload.
    for w in [Workload::DataServing, Workload::MapReduceW] {
        let mesh = quick(ChipConfig::paper(Organization::Mesh), w, 3);
        let fb = quick(
            ChipConfig::paper(Organization::FlattenedButterfly),
            w,
            3,
        );
        let no = quick(ChipConfig::paper(Organization::NocOut), w, 3);
        assert!(
            fb.aggregate_ipc() > mesh.aggregate_ipc() * 1.02,
            "{w}: fbfly {:.3} vs mesh {:.3}",
            fb.aggregate_ipc(),
            mesh.aggregate_ipc()
        );
        assert!(
            no.aggregate_ipc() > mesh.aggregate_ipc() * 1.02,
            "{w}: nocout {:.3} vs mesh {:.3}",
            no.aggregate_ipc(),
            mesh.aggregate_ipc()
        );
    }
}

#[test]
fn network_latency_ordering_matches_paper() {
    let w = Workload::MapReduceC;
    let mesh = quick(ChipConfig::paper(Organization::Mesh), w, 5);
    let fb = quick(ChipConfig::paper(Organization::FlattenedButterfly), w, 5);
    let no = quick(ChipConfig::paper(Organization::NocOut), w, 5);
    assert!(
        mesh.network.mean_latency > fb.network.mean_latency,
        "mesh {:.1} vs fbfly {:.1}",
        mesh.network.mean_latency,
        fb.network.mean_latency
    );
    assert!(
        fb.network.mean_latency > no.network.mean_latency,
        "fbfly {:.1} vs nocout {:.1}",
        fb.network.mean_latency,
        no.network.mean_latency
    );
}

#[test]
fn sixteen_core_workloads_use_sixteen_cores() {
    for org in Organization::EVALUATED {
        let m = quick(ChipConfig::paper(org), Workload::WebSearch, 1);
        assert_eq!(m.active_cores, 16, "{org}");
        let populated = m.per_core_ipc.iter().filter(|&&x| x > 0.0).count();
        assert_eq!(populated, 16, "{org}: wrong active set");
    }
}

#[test]
fn narrower_links_hurt_performance() {
    let w = Workload::DataServing;
    let wide = quick(ChipConfig::paper(Organization::FlattenedButterfly), w, 2);
    let narrow = quick(
        ChipConfig::paper(Organization::FlattenedButterfly).with_link_width(16),
        w,
        2,
    );
    // Fig. 9's mechanism: 16-bit links mean 36-flit responses.
    assert!(
        narrow.aggregate_ipc() < wide.aggregate_ipc() * 0.85,
        "narrow {:.3} vs wide {:.3}",
        narrow.aggregate_ipc(),
        wide.aggregate_ipc()
    );
    assert!(narrow.network.mean_response_latency > wide.network.mean_response_latency * 1.5);
}

#[test]
fn ideal_fabric_is_upper_bound() {
    let w = Workload::MapReduceW;
    let ideal = quick(ChipConfig::paper(Organization::IdealWire), w, 4);
    for org in Organization::EVALUATED {
        let m = quick(ChipConfig::paper(org), w, 4);
        assert!(
            ideal.aggregate_ipc() > m.aggregate_ipc() * 0.99,
            "{org} {:.3} should not beat ideal {:.3}",
            m.aggregate_ipc(),
            ideal.aggregate_ipc()
        );
    }
}

#[test]
fn memory_traffic_reaches_all_channels() {
    let m = quick(ChipConfig::paper(Organization::NocOut), Workload::MapReduceC, 6);
    assert!(m.memory.reads > 100, "vast dataset must stream from DRAM");
}

#[test]
fn two_dimensional_llc_chip_runs() {
    // §7.1: LLC extended to two rows (16 tiles, 512 KB slices).
    let mut cfg = ChipConfig::paper(Organization::NocOut);
    cfg.llc_rows = 2;
    let m = quick(cfg, Workload::MapReduceC, 4);
    assert!(m.aggregate_ipc() > 0.05);
    assert!(m.llc.accesses > 0);
}

#[test]
fn express_link_chip_runs_and_does_not_lose_performance() {
    let mut tall = ChipConfig::with_cores(Organization::NocOut, 128);
    tall.active_core_override = Some(128);
    tall.mem_channels = 8;
    let plain = quick(tall, Workload::MapReduceC, 4);
    let mut with_express = tall;
    with_express.express_links = true;
    let express = quick(with_express, Workload::MapReduceC, 4);
    assert!(
        express.aggregate_ipc() >= plain.aggregate_ipc() * 0.99,
        "express links must not hurt: {:.3} vs {:.3}",
        express.aggregate_ipc(),
        plain.aggregate_ipc()
    );
}

#[test]
fn concentrated_chip_runs() {
    let mut cfg = ChipConfig::with_cores(Organization::NocOut, 128);
    cfg.concentration = 2;
    cfg.active_core_override = Some(128);
    let m = quick(cfg, Workload::SatSolver, 2);
    assert_eq!(m.active_cores, 128);
    assert!(m.aggregate_ipc() > 0.05);
}

#[test]
fn snoop_rates_stay_in_scale_out_range() {
    for w in Workload::ALL {
        let m = quick(ChipConfig::paper(Organization::Mesh), w, 8);
        let pct = m.llc.snoop_percent();
        assert!(
            pct < 8.0,
            "{w}: snoop rate {pct:.1}% breaks the bilateral-traffic premise"
        );
    }
}
