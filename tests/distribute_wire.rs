//! Property tests of the shard wire protocol (`nocout::distribute`).
//!
//! The invariants a distributed campaign leans on:
//!
//! * any `RunSpec` — every field randomized, synthetic or trace workload
//!   — survives `render_spec`/`parse_spec` exactly (same value, same
//!   cache key);
//! * any message — all ten kinds, including the capability handshake and
//!   the chunked trace-transfer frames — survives
//!   `encode_frame`/`decode_frame` exactly;
//! * a frame truncated at *every* possible byte boundary decodes to a
//!   typed error, never a panic, never a wrong message;
//! * flipping any single bit of a frame's *payload* is always detected
//!   (the header digest), and flipping any header byte is a typed error
//!   or a differently-typed message — never a panic;
//! * a v1-framed stream dialed at a v2 worker is refused with a typed
//!   version-mismatch error naming both versions.

use nocout_repro::config::{ChipConfig, Organization};
use nocout_repro::distribute::{
    decode_frame, encode_frame, parse_spec, parse_spec_with, render_spec,
};
use nocout_repro::distribute::{Message, TraceLookup, WireError, Worker, HEADER_LEN, VERSION};
use nocout_repro::prelude::*;
use nocout_repro::runner::{BatchRunner, RunSpec};
use nocout_workloads::trace::TraceSet;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Decodes a proptest tuple into a fully randomized spec. Serialization
/// must not care whether the configuration is *simulable*, so the fields
/// roam beyond what `ChipConfig::paper` would accept.
fn spec_from(
    (org, cores, seed, warmup, express): (u8, u64, u64, u64, bool),
) -> RunSpec {
    let org = Organization::EVALUATED[(org % 3) as usize];
    let mut chip = ChipConfig::paper(org);
    chip.cores = (cores % 512 + 1) as usize;
    chip.link_width_bits = (seed % 4 + 1) as u32 * 64;
    chip.mem_channels = (warmup % 8 + 1) as usize;
    chip.active_core_override = if express { Some((cores % 64) as usize) } else { None };
    chip.express_links = express;
    chip.llc_rows = (seed % 3 + 1) as usize;
    let mut spec = RunSpec::new(chip, Workload::ALL[(cores % 6) as usize]).fast();
    spec.window = MeasurementWindow::new(warmup % 100_000, seed % 100_000 + 1);
    spec.with_seed(seed)
}

/// The raw tuple a spec is generated from.
type SpecBits = (u8, u64, u64, u64, bool);

/// Decodes a proptest tuple into one of the ten message kinds.
fn message_from((kind, shard, index, bits, extra): (u8, u64, u32, SpecBits, u8)) -> Message {
    let body = format!("payload {} line\nsecond {extra}", bits.1);
    match kind % 10 {
        0 => Message::ShardRequest {
            shard,
            specs: vec![spec_from(bits), spec_from((bits.0, bits.1 ^ 7, shard, bits.3, !bits.4))],
        },
        1 => Message::PointOk { shard, index, entry: body },
        2 => Message::PointFailed { shard, index, error: body },
        3 => Message::ShardDone { shard, points: index },
        4 => Message::Heartbeat,
        5 => Message::Hello { version: (shard % u64::from(u16::MAX)) as u16 },
        6 => Message::HelloAck {
            version: (shard % u64::from(u16::MAX)) as u16,
            cores: index,
            store: bits.4,
            trace_hashes: vec![bits.1, bits.2, shard ^ u64::from(extra)],
        },
        7 => Message::TraceOffer { hash: shard ^ bits.1, total_len: bits.2 },
        8 => Message::TraceChunk {
            hash: shard ^ bits.1,
            offset: bits.2,
            // Arbitrary binary data, including newline and non-UTF-8
            // bytes, sized by the tuple so lengths vary across cases.
            data: (0..(extra as usize + 1))
                .map(|i| (bits.1 as u8).wrapping_mul(i as u8).wrapping_add(extra))
                .collect(),
        },
        _ => Message::TraceAck { hash: shard ^ bits.1, have: bits.3 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn specs_round_trip_bit_exactly(
        bits in (0u8..6, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, any::<bool>())
    ) {
        let spec = spec_from(bits);
        let line = render_spec(&spec).expect("synthetic specs always render");
        let parsed = parse_spec(&line).expect("rendered specs always parse");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.cache_key(), spec.cache_key());
    }

    #[test]
    fn frames_round_trip_every_kind(
        bits in (
            0u8..10,
            0u64..u64::MAX,
            0u32..u32::MAX,
            (0u8..6, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, any::<bool>()),
            0u8..255,
        )
    ) {
        let msg = message_from(bits);
        let frame = encode_frame(&msg).expect("message encodes");
        prop_assert_eq!(decode_frame(&frame).expect("frame decodes"), msg);
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_error(
        bits in (
            0u8..10,
            0u64..1_000_000,
            0u32..1_000_000,
            (0u8..6, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, any::<bool>()),
            0u8..255,
        )
    ) {
        let frame = encode_frame(&message_from(bits)).expect("message encodes");
        for cut in 0..frame.len() {
            // Must refuse — cleanly: truncated input never decodes to a
            // message and never panics.
            let err = decode_frame(&frame[..cut]).unwrap_err();
            if cut == 0 {
                prop_assert!(matches!(err, WireError::Closed), "cut 0 is a clean close");
            }
        }
    }

    #[test]
    fn any_payload_bit_flip_is_detected(
        kind in 0u8..9, // remapped below to skip Heartbeat (no payload)
        bits in (
            0u64..1_000_000,
            0u32..1_000_000,
            (0u8..6, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, any::<bool>()),
            0u8..255,
        ),
        at in 0u64..1_000_000,
        bit in 0u8..8,
    ) {
        let kind = if kind >= 4 { kind + 1 } else { kind };
        let (shard, index, spec_bits, extra) = bits;
        let frame = encode_frame(&message_from((kind, shard, index, spec_bits, extra)))
            .expect("message encodes");
        prop_assert!(frame.len() > HEADER_LEN, "non-heartbeat frames carry a payload");
        let mut bad = frame.clone();
        let pos = HEADER_LEN + (at as usize) % (frame.len() - HEADER_LEN);
        bad[pos] ^= 1 << bit;
        // The payload digest makes *every* payload corruption loud — a
        // flipped digit inside a metrics record (or a flipped byte of a
        // trace-archive chunk) must never decode into a
        // plausible-but-wrong value.
        prop_assert!(
            decode_frame(&bad).is_err(),
            "kind {kind} payload flip at byte {pos} bit {bit} went undetected"
        );
    }

    #[test]
    fn header_mutations_never_panic_or_impersonate(
        at in 0u64..1_000_000,
        bit in 0u8..8,
        shard in 0u64..1_000_000,
    ) {
        let msg = Message::ShardDone { shard, points: 3 };
        let frame = encode_frame(&msg).expect("message encodes");
        let mut bad = frame.clone();
        let pos = (at as usize) % HEADER_LEN;
        bad[pos] ^= 1 << bit;
        // Header bytes are not digest-covered; a flip may still decode
        // (e.g. the kind byte landing on another valid kind), but it must
        // never panic and never yield the original message back.
        if let Ok(other) = decode_frame(&bad) {
            prop_assert_ne!(other, msg);
        }
    }
}

/// A test-side trace registry: what the driver holds in memory, or a
/// worker store reduced to its lookup function.
struct MapLookup(HashMap<u64, Arc<TraceSet>>);

impl TraceLookup for MapLookup {
    fn lookup(&self, hash: u64) -> Option<Arc<TraceSet>> {
        self.0.get(&hash).cloned()
    }
}

/// Trace workloads serialize by *content hash* (`trace@<hash>`), never
/// by path: the line round-trips through any resolver holding the same
/// bytes, regardless of where either side stores them — even when the
/// capture directory path contains spaces or a newline, which the v1
/// path form could not frame.
#[test]
fn trace_specs_round_trip_by_content_hash() {
    let dir = std::env::temp_dir().join(format!(
        "nocout wire trace {}\n-x", // hostile path on purpose: irrelevant to the hash form
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let chip = ChipConfig::paper(Organization::Mesh);
    let trace = nocout_repro::capture_synthetic_trace(chip, Workload::WebSearch, 1, &dir, 2_000)
        .expect("capture trace");
    let hash = trace.content_hash();
    let spec = RunSpec {
        chip,
        workload: WorkloadClass::from(trace.clone()),
        window: MeasurementWindow::new(100, 400),
        seed: 1,
    };
    let line = render_spec(&spec).expect("trace spec renders");
    assert!(
        line.ends_with(&format!("trace@{hash:016x}")),
        "trace workloads render by content hash: {line}"
    );
    let resolver = MapLookup(HashMap::from([(hash, trace)]));
    let parsed = parse_spec_with(&line, Some(&resolver)).expect("trace spec parses");
    assert_eq!(parsed.cache_key(), spec.cache_key());
    // Without a resolver the same line is a typed error naming the
    // missing store — never a panic, never a silent miss.
    let err = parse_spec_with(&line, None).unwrap_err();
    assert!(matches!(err, WireError::Malformed(_)), "{err}");
    assert!(err.to_string().contains("--trace-store"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The v1 `trace:PATH` spec form stays parseable for one protocol
/// version: a line hand-built in the old form loads the trace from the
/// named directory and lands on the same cache key.
#[test]
fn v1_trace_path_form_is_still_accepted() {
    let dir = std::env::temp_dir().join(format!("nocout-wire-v1-path-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let chip = ChipConfig::paper(Organization::Mesh);
    let trace = nocout_repro::capture_synthetic_trace(chip, Workload::WebSearch, 1, &dir, 2_000)
        .expect("capture trace");
    let hash = trace.content_hash();
    let spec = RunSpec {
        chip,
        workload: WorkloadClass::from(trace),
        window: MeasurementWindow::new(100, 400),
        seed: 1,
    };
    let line = render_spec(&spec).expect("trace spec renders");
    let v1_line = line.replace(
        &format!("trace@{hash:016x}"),
        &format!("trace:{}", dir.display()),
    );
    let parsed = parse_spec(&v1_line).expect("v1 path form parses without a resolver");
    assert_eq!(parsed.cache_key(), spec.cache_key());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite contract: dialing a v1-framed stream at a v2 worker is a
/// typed version mismatch naming both versions — not a hang, not a
/// generic decode error.
#[test]
fn v1_frames_at_a_v2_worker_are_a_typed_version_mismatch() {
    let mut frame = encode_frame(&Message::Hello { version: 1 }).expect("hello encodes");
    frame[4..6].copy_from_slice(&1u16.to_le_bytes()); // header speaks v1 too
    let worker = Worker::new(BatchRunner::new(1));
    let mut out = Vec::new();
    let err = worker
        .serve_stream(&mut frame.as_slice(), &mut out)
        .expect_err("a v1 stream must be refused");
    match err {
        WireError::VersionMismatch { ours, theirs } => {
            assert_eq!((ours, theirs), (VERSION, 1));
        }
        other => panic!("expected a version mismatch, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("v1") && msg.contains(&format!("v{VERSION}")), "{msg}");
}
