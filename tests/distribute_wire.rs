//! Property tests of the shard wire protocol (`nocout::distribute`).
//!
//! The invariants a distributed campaign leans on:
//!
//! * any `RunSpec` — every field randomized, synthetic or trace workload
//!   — survives `render_spec`/`parse_spec` exactly (same value, same
//!   cache key);
//! * any message survives `encode_frame`/`decode_frame` exactly;
//! * a frame truncated at *every* possible byte boundary decodes to a
//!   typed error, never a panic, never a wrong message;
//! * flipping any single bit of a frame's *payload* is always detected
//!   (the header digest), and flipping any header byte is a typed error
//!   or a differently-typed message — never a panic.

use nocout_repro::config::{ChipConfig, Organization};
use nocout_repro::distribute::{decode_frame, encode_frame, parse_spec, render_spec};
use nocout_repro::distribute::{Message, WireError, HEADER_LEN};
use nocout_repro::runner::RunSpec;
use nocout_repro::prelude::*;
use proptest::prelude::*;

/// Decodes a proptest tuple into a fully randomized spec. Serialization
/// must not care whether the configuration is *simulable*, so the fields
/// roam beyond what `ChipConfig::paper` would accept.
fn spec_from(
    (org, cores, seed, warmup, express): (u8, u64, u64, u64, bool),
) -> RunSpec {
    let org = Organization::EVALUATED[(org % 3) as usize];
    let mut chip = ChipConfig::paper(org);
    chip.cores = (cores % 512 + 1) as usize;
    chip.link_width_bits = (seed % 4 + 1) as u32 * 64;
    chip.mem_channels = (warmup % 8 + 1) as usize;
    chip.active_core_override = if express { Some((cores % 64) as usize) } else { None };
    chip.express_links = express;
    chip.llc_rows = (seed % 3 + 1) as usize;
    let mut spec = RunSpec::new(chip, Workload::ALL[(cores % 6) as usize]).fast();
    spec.window = MeasurementWindow::new(warmup % 100_000, seed % 100_000 + 1);
    spec.with_seed(seed)
}

/// The raw tuple a spec is generated from.
type SpecBits = (u8, u64, u64, u64, bool);

/// Decodes a proptest tuple into one of the five message kinds.
fn message_from((kind, shard, index, bits, extra): (u8, u64, u32, SpecBits, u8)) -> Message {
    let body = format!("payload {} line\nsecond {extra}", bits.1);
    match kind % 5 {
        0 => Message::ShardRequest {
            shard,
            specs: vec![spec_from(bits), spec_from((bits.0, bits.1 ^ 7, shard, bits.3, !bits.4))],
        },
        1 => Message::PointOk { shard, index, entry: body },
        2 => Message::PointFailed { shard, index, error: body },
        3 => Message::ShardDone { shard, points: index },
        _ => Message::Heartbeat,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn specs_round_trip_bit_exactly(
        bits in (0u8..6, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, any::<bool>())
    ) {
        let spec = spec_from(bits);
        let line = render_spec(&spec).expect("synthetic specs always render");
        let parsed = parse_spec(&line).expect("rendered specs always parse");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.cache_key(), spec.cache_key());
    }

    #[test]
    fn frames_round_trip_every_kind(
        bits in (
            0u8..5,
            0u64..u64::MAX,
            0u32..u32::MAX,
            (0u8..6, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, any::<bool>()),
            0u8..255,
        )
    ) {
        let msg = message_from(bits);
        let frame = encode_frame(&msg).expect("message encodes");
        prop_assert_eq!(decode_frame(&frame).expect("frame decodes"), msg);
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_error(
        bits in (
            0u8..5,
            0u64..1_000_000,
            0u32..1_000_000,
            (0u8..6, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, any::<bool>()),
            0u8..255,
        )
    ) {
        let frame = encode_frame(&message_from(bits)).expect("message encodes");
        for cut in 0..frame.len() {
            // Must refuse — cleanly: truncated input never decodes to a
            // message and never panics.
            let err = decode_frame(&frame[..cut]).unwrap_err();
            if cut == 0 {
                prop_assert!(matches!(err, WireError::Closed), "cut 0 is a clean close");
            }
        }
    }

    #[test]
    fn any_payload_bit_flip_is_detected(
        bits in (
            0u8..4, // never Heartbeat: it has no payload to corrupt
            0u64..1_000_000,
            0u32..1_000_000,
            (0u8..6, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, any::<bool>()),
            0u8..255,
        ),
        at in 0u64..1_000_000,
        bit in 0u8..8,
    ) {
        let frame = encode_frame(&message_from(bits)).expect("message encodes");
        prop_assert!(frame.len() > HEADER_LEN, "non-heartbeat frames carry a payload");
        let mut bad = frame.clone();
        let pos = HEADER_LEN + (at as usize) % (frame.len() - HEADER_LEN);
        bad[pos] ^= 1 << bit;
        // The payload digest makes *every* payload corruption loud — a
        // flipped digit inside a metrics record must never decode into a
        // plausible-but-wrong value.
        prop_assert!(
            decode_frame(&bad).is_err(),
            "payload flip at byte {pos} bit {bit} went undetected"
        );
    }

    #[test]
    fn header_mutations_never_panic_or_impersonate(
        at in 0u64..1_000_000,
        bit in 0u8..8,
        shard in 0u64..1_000_000,
    ) {
        let msg = Message::ShardDone { shard, points: 3 };
        let frame = encode_frame(&msg).expect("message encodes");
        let mut bad = frame.clone();
        let pos = (at as usize) % HEADER_LEN;
        bad[pos] ^= 1 << bit;
        // Header bytes are not digest-covered; a flip may still decode
        // (e.g. the kind byte landing on another valid kind), but it must
        // never panic and never yield the original message back.
        if let Ok(other) = decode_frame(&bad) {
            prop_assert_ne!(other, msg);
        }
    }
}

/// Trace workloads serialize by path (the token is last on the line, so
/// the path may contain spaces) and reload through `TraceSet::load`.
#[test]
fn trace_specs_round_trip_by_path() {
    let dir = std::env::temp_dir().join(format!(
        "nocout wire trace {}", // spaces on purpose: the format must cope
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let chip = ChipConfig::paper(Organization::Mesh);
    let trace = nocout_repro::capture_synthetic_trace(chip, Workload::WebSearch, 1, &dir, 2_000)
        .expect("capture trace");
    let spec = RunSpec {
        chip,
        workload: WorkloadClass::from(trace),
        window: MeasurementWindow::new(100, 400),
        seed: 1,
    };
    let line = render_spec(&spec).expect("trace spec renders");
    let parsed = parse_spec(&line).expect("trace spec parses");
    assert_eq!(parsed.cache_key(), spec.cache_key());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A trace path containing a newline cannot be framed — rejected at
/// render time rather than corrupting the line-oriented payload.
#[test]
fn newline_in_trace_path_is_rejected_at_render() {
    let dir = std::env::temp_dir().join(format!("nocout-wire-nl-{}\n-x", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let chip = ChipConfig::paper(Organization::Mesh);
    let trace = nocout_repro::capture_synthetic_trace(chip, Workload::WebSearch, 1, &dir, 2_000)
        .expect("capture trace");
    let spec = RunSpec {
        chip,
        workload: WorkloadClass::from(trace),
        window: MeasurementWindow::new(100, 400),
        seed: 1,
    };
    let err = render_spec(&spec).unwrap_err();
    assert!(matches!(err, WireError::Malformed(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
