//! Property-based differential tests for the uncore hot-path
//! structures: the LLC tile's array-backed MSHR file and calendar-wheel
//! output stage against the `HashMap`/`BinaryHeap` pair they replaced,
//! the set-associative directory against a per-line `HashMap` model, and
//! the generic `Ring` against `VecDeque`.
//!
//! These are the structure-level halves of the old-vs-new proof (the
//! chip-level half is `tests/chip_golden_metrics.rs`): every operation
//! sequence must leave the new structures observably identical to the
//! containers they replaced — including pop order, merge semantics and
//! same-cycle tiebreaks.

use nocout_repro::substrates::mem::addr::Addr;
use nocout_repro::substrates::mem::directory::{DirState, Directory, SharerSet};
use nocout_repro::substrates::mem::llc::{LlcWaiter, OutputWheel, TileMshrFile};
use nocout_repro::substrates::mem::protocol::{CoreId, MshrId, RequestKind, TxnId};
use nocout_repro::substrates::sim::ring::Ring;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// The pre-refactor tile MSHR entry: what the `HashMap<u64, TileMshr>`
/// tracked per line.
#[derive(Debug, Clone)]
struct MshrModel {
    addr: Addr,
    acks: u32,
    mem: bool,
    waiters: Vec<LlcWaiter>,
    id: MshrId,
}

fn waiter(n: u32) -> LlcWaiter {
    let kind = if n.is_multiple_of(3) {
        RequestKind::GetX
    } else {
        RequestKind::GetS
    };
    (TxnId(n), CoreId((n % 4) as u16), kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tile_mshr_file_matches_hashmap_model(
        ops in prop::collection::vec((0u8..4, 0u64..10, any::<bool>(), 0u32..3), 1..300)
    ) {
        // Capacity below the line space so the file exercises its
        // overflow-growth path (the HashMap it replaced never refused an
        // allocation).
        let mut file = TileMshrFile::new(4);
        let mut model: HashMap<u64, MshrModel> = HashMap::new();
        let mut stale: Vec<MshrId> = vec![MshrId(777)];
        let mut next_waiter = 0u32;
        let mut scratch = Vec::new();
        let mut model_waiters = Vec::new();
        for &(kind, line, flag, acks) in &ops {
            let addr = Addr(line * 64);
            match kind {
                0 => {
                    // Request arrival: merge into the in-flight entry for
                    // the line, or allocate one.
                    let w = waiter(next_waiter);
                    next_waiter += 1;
                    if let Some(e) = model.get_mut(&line) {
                        let id = file.lookup_line(line).expect("entry must be found");
                        prop_assert_eq!(id, e.id, "merge must find the allocation's id");
                        prop_assert!(file.push_waiter(id, w));
                        e.waiters.push(w);
                    } else {
                        let id = file.alloc(addr, acks, flag);
                        prop_assert!(file.push_waiter(id, w));
                        model.insert(line, MshrModel {
                            addr,
                            acks,
                            mem: flag,
                            waiters: vec![w],
                            id,
                        });
                    }
                }
                1 => {
                    // Invalidation ack, if the entry expects one.
                    let finished = match model.get_mut(&line) {
                        Some(e) if e.acks > 0 => {
                            e.acks -= 1;
                            let fin = e.acks == 0 && !e.mem;
                            prop_assert_eq!(file.dec_ack(e.id), Some(fin));
                            fin
                        }
                        _ => false,
                    };
                    if finished {
                        let e = model.remove(&line).expect("finished entry exists");
                        scratch.clear();
                        prop_assert_eq!(file.take(e.id, &mut scratch), Some(e.addr));
                        prop_assert_eq!(&scratch, &e.waiters, "waiter order must be merge order");
                        stale.push(e.id);
                    }
                }
                2 => {
                    // Memory data return, if the entry is waiting on one.
                    let finished = match model.get_mut(&line) {
                        Some(e) if e.mem => {
                            e.mem = false;
                            let fin = e.acks == 0;
                            prop_assert_eq!(file.mem_arrived(e.id), Some((e.addr, fin)));
                            fin
                        }
                        _ => false,
                    };
                    if finished {
                        let e = model.remove(&line).expect("finished entry exists");
                        scratch.clear();
                        prop_assert_eq!(file.take(e.id, &mut scratch), Some(e.addr));
                        prop_assert_eq!(&scratch, &e.waiters);
                        stale.push(e.id);
                    }
                }
                _ => {
                    // A stale or foreign id (a message still in flight
                    // after its entry completed) must be ignored on every
                    // path, exactly as a missing HashMap key was.
                    let id = stale[(line as usize) % stale.len()];
                    prop_assert_eq!(file.addr_of(id), None);
                    prop_assert_eq!(file.dec_ack(id), None);
                    prop_assert_eq!(file.mem_arrived(id), None);
                    prop_assert!(!file.push_waiter(id, waiter(9999)));
                    model_waiters.clear();
                    prop_assert_eq!(file.take(id, &mut model_waiters), None);
                }
            }
            // Invariants after every op.
            prop_assert_eq!(file.len(), model.len());
            for (l, e) in &model {
                prop_assert_eq!(file.lookup_line(*l), Some(e.id));
                prop_assert_eq!(file.addr_of(e.id), Some(e.addr));
            }
        }
    }

    #[test]
    fn output_wheel_matches_heap_model(
        ops in prop::collection::vec((0u8..3, 0u64..12, 0u64..4), 1..300)
    ) {
        const MAX_LATENCY: u64 = 12;
        let mut wheel: OutputWheel<u64> = OutputWheel::new(MAX_LATENCY);
        // The pre-refactor pair: a (due, seq) heap plus a seq → payload
        // side table; seq is emission order, which is the tiebreak for
        // same-cycle entries.
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut payloads: HashMap<u64, u64> = HashMap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for &(kind, delta, advance) in &ops {
            match kind {
                0 => {
                    // Emit: due within the tile's bounded access latency.
                    let at = now + delta.min(MAX_LATENCY);
                    wheel.push(at, seq);
                    heap.push(Reverse((at, seq)));
                    payloads.insert(seq, seq);
                    seq += 1;
                }
                1 => now += advance,
                _ => {
                    // Drain everything due, comparing pop order exactly —
                    // same-cycle entries must come out in emission order.
                    loop {
                        let model_next = match heap.peek() {
                            Some(&Reverse((at, s))) if at <= now => Some(s),
                            _ => None,
                        };
                        let got = wheel.pop_due(now);
                        prop_assert_eq!(
                            got,
                            model_next.map(|s| payloads[&s]),
                            "pop at now={} diverged", now
                        );
                        if model_next.is_none() {
                            break;
                        }
                        let Reverse((_, s)) = heap.pop().expect("peeked entry");
                        payloads.remove(&s);
                    }
                }
            }
            // Invariants after every op.
            prop_assert_eq!(wheel.pending(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
            prop_assert_eq!(wheel.earliest(), heap.peek().map(|&Reverse((at, _))| at));
        }
    }

    #[test]
    fn set_associative_directory_matches_hashmap_model(
        ops in prop::collection::vec((0u8..4, 0u64..24, 0u16..6), 1..300)
    ) {
        // Tiny geometry (4 sets × 2 ways) against a 24-line space forces
        // constant set-conflict spills, the path a full-size directory
        // takes rarely.
        let mut dir = Directory::with_geometry(4, 2, 1);
        let mut model: HashMap<u64, DirState> = HashMap::new();
        for &(kind, line, core) in &ops {
            let addr = Addr(line * 64);
            let core = CoreId(core);
            match kind {
                0 => {
                    dir.add_sharer(addr, core);
                    model
                        .entry(line)
                        .and_modify(|st| {
                            *st = match *st {
                                DirState::Shared(mut s) => {
                                    s.insert(core);
                                    DirState::Shared(s)
                                }
                                DirState::Exclusive(owner) => {
                                    let mut s = SharerSet::single(owner);
                                    s.insert(core);
                                    DirState::Shared(s)
                                }
                            };
                        })
                        .or_insert(DirState::Shared(SharerSet::single(core)));
                }
                1 => {
                    dir.set_exclusive(addr, core);
                    model.insert(line, DirState::Exclusive(core));
                }
                2 => {
                    let model_had = match model.get_mut(&line) {
                        None => false,
                        Some(DirState::Exclusive(owner)) if *owner == core => {
                            model.remove(&line);
                            true
                        }
                        Some(DirState::Exclusive(_)) => false,
                        Some(DirState::Shared(s)) => {
                            let had = s.contains(core);
                            s.remove(core);
                            if s.is_empty() {
                                model.remove(&line);
                            }
                            had
                        }
                    };
                    prop_assert_eq!(dir.remove_core(addr, core), model_had);
                }
                _ => {
                    dir.drop_line(addr);
                    model.remove(&line);
                }
            }
            // Invariants after every op.
            prop_assert_eq!(dir.tracked_lines(), model.len());
            for probe in 0..24u64 {
                prop_assert_eq!(
                    dir.state(Addr(probe * 64)),
                    model.get(&probe).copied(),
                    "state of line {} diverged", probe
                );
            }
        }
    }

    #[test]
    fn ring_matches_vecdeque_model(
        ops in prop::collection::vec((0u8..5, 0u32..1000, 0usize..12), 1..300)
    ) {
        // Tiny capacity hint so growth happens repeatedly mid-sequence.
        let mut ring: Ring<u32> = Ring::with_capacity(2);
        let mut model: VecDeque<u32> = VecDeque::new();
        for &(kind, v, i) in &ops {
            match kind {
                0 | 1 => {
                    // Push (twice as likely as pop, so the ring grows).
                    ring.push_back(v);
                    model.push_back(v);
                }
                2 => {
                    prop_assert_eq!(ring.pop_front(), model.pop_front());
                }
                3 => {
                    if !model.is_empty() {
                        let idx = i % model.len();
                        model[idx] = v;
                        ring.set(idx, v);
                    }
                }
                _ => {
                    let keep = i % (model.len() + 1);
                    model.truncate(keep);
                    ring.truncate(keep);
                }
            }
            // Invariants after every op.
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.is_empty(), model.is_empty());
            prop_assert_eq!(ring.front(), model.front());
            for (j, &m) in model.iter().enumerate() {
                prop_assert_eq!(ring.get(j), m);
            }
            prop_assert!(ring.iter().eq(model.iter().copied()));
        }
    }
}
