//! Golden chip-metrics gate for the core memory-path refactor.
//!
//! `tests/golden/chip_metrics.txt` was captured from the build *before*
//! the ring-buffer ROB / line-indexed wakeup / array-MSHR rework (the
//! `VecDeque`-ROB, `HashMap`-MSHR core), across every organization, two
//! workloads and two seeds. The refactored structures must reproduce
//! those runs bit for bit — the same role `tests/golden/fig7_fast.csv`
//! plays for the campaign layer, but aimed at the core/L1 hot path and
//! covering all five organizations (fig7 evaluates only three).
//!
//! Regenerate (only when a *deliberate* behaviour change is shipped,
//! which also bumps the results-cache behaviour version):
//!
//! ```text
//! NOCOUT_REGEN_GOLDEN=1 cargo test --test chip_golden_metrics
//! ```

use nocout_repro::prelude::*;
use std::fmt::Write as _;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/chip_metrics.txt"
);

/// One canonical line per run: every counter the chip aggregates, plus
/// the stall fraction bit-exactly (hex of `to_bits`, the results-cache
/// float convention).
fn metric_line(org: Organization, wl: Workload, seed: u64) -> String {
    let mut chip = ScaleOutChip::new(ChipConfig::paper(org), wl, seed);
    chip.run_for(1_000);
    chip.reset_stats();
    chip.run_for(2_500);
    let m = chip.metrics();
    let mut s = String::new();
    let _ = write!(
        s,
        "{org}|{wl:?}|{seed}|instr={} cycles={} stall={:016x} \
         llc={}/{}/{} snoop={}/{} wb={} net={} mem={}/{} inflight={}/{}",
        m.instructions,
        m.cycles,
        m.fetch_stall_fraction.to_bits(),
        m.llc.accesses,
        m.llc.hits,
        m.llc.misses,
        m.llc.snoops_sent,
        m.llc.snooping_accesses,
        m.llc.writebacks,
        m.network.packets,
        m.memory.reads,
        m.memory.writes,
        chip.inflight_messages(),
        chip.inflight_transactions(),
    );
    s
}

fn current_lines() -> String {
    let mut out = String::new();
    for org in [
        Organization::Mesh,
        Organization::FlattenedButterfly,
        Organization::NocOut,
        Organization::IdealWire,
        Organization::ZeroLoadMesh,
    ] {
        for (wl, seed) in [
            (Workload::WebSearch, 1u64),
            (Workload::WebSearch, 11),
            (Workload::DataServing, 7),
            (Workload::MapReduceC, 3),
        ] {
            out.push_str(&metric_line(org, wl, seed));
            out.push('\n');
        }
    }
    out
}

#[test]
fn chip_metrics_match_pre_refactor_golden() {
    let lines = current_lines();
    if std::env::var_os("NOCOUT_REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &lines).expect("write golden");
        eprintln!("regenerated {GOLDEN}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run with NOCOUT_REGEN_GOLDEN=1 once");
    for (i, (got, want)) in lines.lines().zip(golden.lines()).enumerate() {
        assert_eq!(got, want, "line {i} diverged from the pre-refactor core");
    }
    assert_eq!(
        lines.lines().count(),
        golden.lines().count(),
        "run-grid size changed; regenerate the golden deliberately"
    );
}
