//! Property-based tests on the memory-system substrate: cache replacement,
//! directory bookkeeping and address-map structure.

use nocout_repro::substrates::mem::addr::{Addr, AddressMap};
use nocout_repro::substrates::mem::cache::{CacheArray, CacheGeometry, Lookup};
use nocout_repro::substrates::mem::directory::Directory;
use nocout_repro::substrates::mem::protocol::CoreId;
use proptest::prelude::*;

fn small_cache() -> CacheArray {
    CacheArray::new(CacheGeometry {
        capacity_bytes: 2048, // 8 sets × 4 ways
        ways: 4,
        line_bytes: 64,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_never_exceeds_capacity(lines in prop::collection::vec(0u64..4096, 1..300)) {
        let mut c = small_cache();
        for l in &lines {
            let _ = c.insert(Addr::from_line_index(*l), false);
        }
        prop_assert!(c.valid_lines() <= 32, "capacity exceeded: {}", c.valid_lines());
    }

    #[test]
    fn inserted_line_is_immediately_present(lines in prop::collection::vec(0u64..4096, 1..100)) {
        let mut c = small_cache();
        for l in &lines {
            let a = Addr::from_line_index(*l);
            c.insert(a, false);
            prop_assert_eq!(c.probe(a), Lookup::Hit);
        }
    }

    #[test]
    fn eviction_reports_a_previously_inserted_line(lines in prop::collection::vec(0u64..512, 1..200)) {
        let mut c = small_cache();
        let mut inserted = std::collections::HashSet::new();
        for l in &lines {
            let a = Addr::from_line_index(*l);
            if let Some(ev) = c.insert(a, false) {
                prop_assert!(
                    inserted.contains(&ev.addr.line_index()),
                    "victim {} was never inserted",
                    ev.addr
                );
                prop_assert_ne!(ev.addr.line_index(), *l, "cannot evict the incoming line");
            }
            inserted.insert(*l);
        }
    }

    #[test]
    fn mru_line_survives_one_insertion(tag in 0u64..64) {
        let mut c = small_cache();
        // Fill one set (lines with the same set index: stride 8).
        let set_lines: Vec<u64> = (0..4).map(|i| tag + i * 8 * 64).collect();
        // Use line indices in the same set: set = line & 7 with 8 sets.
        let base = tag % 8;
        let fill: Vec<u64> = (0..4u64).map(|i| base + i * 8).collect();
        for &l in &fill {
            c.insert(Addr::from_line_index(l), false);
        }
        let _ = set_lines;
        // Touch the first line, insert a conflicting fifth: the touched
        // line must survive.
        let protected = Addr::from_line_index(fill[0]);
        c.lookup(protected);
        c.insert(Addr::from_line_index(base + 4 * 8), false);
        prop_assert_eq!(c.probe(protected), Lookup::Hit);
    }

    #[test]
    fn dirty_data_is_never_silently_lost(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        // Every line marked dirty must either still be present-dirty or
        // have been reported as a dirty eviction.
        let mut c = small_cache();
        let mut dirty_out = 0usize;
        let mut dirty_in = std::collections::HashSet::new();
        for (l, write) in &ops {
            let a = Addr::from_line_index(*l);
            if c.probe(a) == Lookup::Hit {
                if *write {
                    c.mark_dirty(a);
                    dirty_in.insert(*l);
                }
            } else if let Some(ev) = c.insert(a, *write) {
                if ev.dirty {
                    dirty_out += 1;
                    dirty_in.remove(&ev.addr.line_index());
                }
            } else if *write {
                dirty_in.insert(*l);
            }
            if *write && c.probe(a) == Lookup::Hit {
                c.mark_dirty(a);
                dirty_in.insert(*l);
            }
        }
        let mut still_dirty = 0usize;
        for l in &dirty_in {
            let (present, dirty) = c.invalidate(Addr::from_line_index(*l));
            if present && dirty {
                still_dirty += 1;
            }
        }
        // All tracked dirty lines are accounted: present-dirty or evicted.
        prop_assert!(still_dirty + dirty_out >= dirty_in.len().saturating_sub(dirty_out));
    }

    #[test]
    fn address_map_is_a_partition(tiles in 1usize..16, banks in 1usize..4, lines in prop::collection::vec(0u64..100_000, 1..200)) {
        let map = AddressMap::new(tiles, banks, 4);
        for l in &lines {
            let a = Addr::from_line_index(*l);
            prop_assert!(map.home_tile(a) < tiles);
            prop_assert!(map.bank_in_tile(a) < banks);
            prop_assert!(map.memory_channel(a) < 4);
            // Same line always maps to the same place.
            prop_assert_eq!(map.home_tile(a), map.home_tile(a));
        }
    }

    #[test]
    fn directory_add_remove_is_balanced(ops in prop::collection::vec((0u64..32, 0u16..8, any::<bool>()), 1..200)) {
        let mut dir = Directory::new();
        let mut model: std::collections::HashMap<u64, std::collections::HashSet<u16>> =
            std::collections::HashMap::new();
        for (line, core, add) in &ops {
            let a = Addr::from_line_index(*line);
            if *add {
                dir.add_sharer(a, CoreId(*core));
                model.entry(*line).or_default().insert(*core);
            } else {
                dir.remove_core(a, CoreId(*core));
                if let Some(s) = model.get_mut(line) {
                    s.remove(core);
                    if s.is_empty() {
                        model.remove(line);
                    }
                }
            }
        }
        prop_assert_eq!(dir.tracked_lines(), model.len());
    }
}
