//! The campaign layer's contract: grid expansion is canonical and stable,
//! axis declaration order cannot change the cache keys a campaign
//! touches, and a warm results cache replays a full campaign with zero
//! simulations.

use nocout_repro::cache::ResultsCache;
use nocout_repro::campaign::Campaign;
use nocout_repro::prelude::*;
use nocout_repro::runner::BatchRunner;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-cleaning cache directory per test.
struct TempCacheDir(PathBuf);

impl TempCacheDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "nocout-campaign-test-{}-{}-{}",
            tag,
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        TempCacheDir(dir)
    }
}

impl Drop for TempCacheDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn window() -> MeasurementWindow {
    MeasurementWindow::new(1_000, 3_000)
}

/// A small but multi-axis grid: 2 orgs × 2 core counts × 2 workloads ×
/// 2 seeds = 16 runs.
fn grid() -> Campaign {
    Campaign::new()
        .orgs([Organization::Mesh, Organization::NocOut])
        .cores([16, 64])
        .workloads([Workload::WebSearch, Workload::MapReduceC])
        .seeds([1, 2])
        .window(window())
}

#[test]
fn canonical_ordering_is_stable() {
    // The documented nesting: configuration (outermost) → cores →
    // link width → workload → seed (innermost), each axis in declared
    // element order. Pin the exact sequence so a refactor cannot
    // silently reorder a campaign's execution plan.
    let specs = grid().specs();
    assert_eq!(specs.len(), 16);
    let coords: Vec<(Organization, usize, String, u64)> = specs
        .iter()
        .map(|s| {
            (
                s.chip.organization,
                s.chip.cores,
                s.workload.name(),
                s.seed,
            )
        })
        .collect();
    let mut expected = Vec::new();
    for org in [Organization::Mesh, Organization::NocOut] {
        for cores in [16usize, 64] {
            for wl in [Workload::WebSearch, Workload::MapReduceC] {
                for seed in [1u64, 2] {
                    expected.push((org, cores, wl.name().to_string(), seed));
                }
            }
        }
    }
    assert_eq!(coords, expected);
    // Expanding twice yields the same plan (no hidden state).
    assert_eq!(
        grid().specs().iter().map(RunSpec::cache_key).collect::<Vec<_>>(),
        specs.iter().map(RunSpec::cache_key).collect::<Vec<_>>()
    );
}

#[test]
fn axis_declaration_order_does_not_change_cache_key_coverage() {
    // The same grid declared with every builder call order must touch
    // the same RunSpec cache keys — in the same canonical sequence —
    // so a cache warmed by one spelling fully serves any other.
    let keys = |c: Campaign| -> Vec<String> {
        c.window(window()).specs().iter().map(RunSpec::cache_key).collect()
    };
    let orgs = [Organization::Mesh, Organization::NocOut];
    let workloads = [Workload::WebSearch, Workload::MapReduceC];
    let declared_orgs_first = keys(
        Campaign::new()
            .orgs(orgs)
            .cores([16, 64])
            .workloads(workloads)
            .seeds([1, 2]),
    );
    let declared_seeds_first = keys(
        Campaign::new()
            .seeds([1, 2])
            .workloads(workloads)
            .cores([16, 64])
            .orgs(orgs),
    );
    let declared_interleaved = keys(
        Campaign::new()
            .workloads(workloads)
            .orgs(orgs)
            .seeds([1, 2])
            .cores([16, 64]),
    );
    assert_eq!(declared_orgs_first, declared_seeds_first);
    assert_eq!(declared_orgs_first, declared_interleaved);
    // And the keys are all distinct — the grid has no aliasing points.
    let mut sorted = declared_orgs_first.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), declared_orgs_first.len());
}

#[test]
fn warm_cache_replays_a_full_campaign_with_zero_simulations() {
    let dir = TempCacheDir::new("warm-replay");

    let cold = BatchRunner::serial().with_cache(ResultsCache::open(&dir.0).unwrap());
    let first = grid().run(&cold);
    let cache = cold.cache().unwrap();
    assert_eq!(cache.hits(), 0, "cold cache cannot hit");
    assert_eq!(cache.misses(), 16, "every point × seed simulates once");

    // A fresh handle over the same directory: the whole campaign —
    // every point, every seed — must come back from disk.
    let warm = BatchRunner::serial().with_cache(ResultsCache::open(&dir.0).unwrap());
    let second = grid().run(&warm);
    let cache = warm.cache().unwrap();
    assert_eq!(cache.misses(), 0, "warm campaign must not simulate");
    assert_eq!(cache.hits(), 16);

    // And the frames are bit-identical, per point.
    assert_eq!(first.len(), second.len());
    for (a, b) in first.results().iter().zip(second.results()) {
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
        assert_eq!(a.ci95.to_bits(), b.ci95.to_bits());
        assert_eq!(a.metrics.instructions, b.metrics.instructions);
        assert_eq!(a.metrics.network.packets, b.metrics.network.packets);
        assert_eq!(a.seeds_run, b.seeds_run);
    }
}

#[test]
fn campaign_matches_hand_rolled_point_loop() {
    // The frame must be bit-identical to the pre-campaign idiom the
    // binaries used: run_replicated per (chip, workload) point.
    let frame = grid().run(&BatchRunner::serial());
    let seeds = SeedSet::consecutive(1, 2);
    for p in frame.results() {
        let spec = RunSpec {
            chip: p.chip,
            workload: p.workload.clone(),
            window: window(),
            seed: 1,
        };
        let r = nocout_repro::run_replicated(&spec, &seeds);
        assert_eq!(p.ipc.to_bits(), r.mean_ipc.to_bits());
        assert_eq!(p.ci95.to_bits(), r.ci95.to_bits());
        assert_eq!(p.metrics.instructions, r.last.instructions);
    }
}

#[test]
fn worker_count_does_not_change_the_frame() {
    let serial = grid().run(&BatchRunner::serial());
    let parallel = grid().run(&BatchRunner::new(4));
    for (a, b) in serial.results().iter().zip(parallel.results()) {
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
        assert_eq!(a.metrics.instructions, b.metrics.instructions);
    }
}

#[test]
fn trace_workloads_compose_with_the_grid_and_collapse_seeds() {
    // Capture a tiny trace, then put it on the workload axis next to a
    // synthetic profile: the synthetic points replicate over both
    // seeds, the trace points collapse to one literal replay each.
    let dir = TempCacheDir::new("trace-axis");
    let chip = ChipConfig::with_cores(Organization::Mesh, 16);
    let set = nocout_repro::capture_synthetic_trace(
        chip,
        Workload::WebSearch,
        1,
        &dir.0,
        20_000,
    )
    .expect("capture");

    let campaign = Campaign::new()
        .fixed(chip)
        .workloads([
            WorkloadClass::from(Workload::WebSearch),
            WorkloadClass::Trace(set),
        ])
        .seeds([1, 2])
        .window(window());
    // 2 synthetic runs + 1 collapsed trace replay.
    assert_eq!(campaign.specs().len(), 3);
    let frame = campaign.run(&BatchRunner::serial());
    assert_eq!(frame.len(), 2);
    assert_eq!(frame.results()[0].seeds_run, 2);
    assert_eq!(frame.results()[1].seeds_run, 1);
    assert_eq!(frame.results()[1].ci95, 0.0, "single replay has no spread");
    assert!(frame.results()[1].ipc > 0.0);
}
