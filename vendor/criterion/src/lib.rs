//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API the workspace benches use —
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `Throughput`,
//! `criterion_group!`/`criterion_main!` — with real wall-clock measurement
//! and a `--test` smoke mode (each routine runs once), so `cargo bench`
//! and `cargo bench -- --test` behave the way CI expects. Results print as
//! `name  time: [median ns/iter]  thrpt: [elements/s]`.
//!
//! It is not a statistical twin of Criterion (no outlier analysis, no
//! HTML reports); it exists because this build environment cannot reach
//! crates.io. Swapping the real crate back in is a one-line manifest
//! change.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Measure,
    Smoke,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its median time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(routine());
            self.result_ns = 0.0;
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Split the measurement budget into `sample_size` samples.
        let per_sample = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = (per_sample / est_ns).ceil().max(1.0) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.4} G/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.4} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.4} K/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.2} /s")
    }
}

/// Top-level benchmark driver (API-compatible subset).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(3),
            mode: Mode::Measure,
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Applies command-line configuration (`--test` smoke mode, name
    /// filter). Called by `criterion_main!`.
    pub fn configure_from_args(mut self) -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.mode = Mode::Smoke,
                s if s.starts_with("--") => {} // --bench and friends: ignore
                s => filter = Some(s.to_string()),
            }
        }
        self.filter = filter;
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.selected(name) {
            return;
        }
        let mut b = Bencher {
            mode: self.mode,
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            result_ns: 0.0,
        };
        f(&mut b);
        if self.mode == Mode::Smoke {
            println!("{name:<44} ... ok (smoke)");
            return;
        }
        let mut line = format!("{name:<44} time: [{}]", format_ns(b.result_ns));
        if let Some(t) = throughput {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = n as f64 * 1e9 / b.result_ns.max(1.0);
            line.push_str(&format!("  thrpt: [{} {unit}]", format_rate(rate)));
        }
        println!("{line}");
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self {
        self.run_one(name.as_ref(), None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id.as_ref());
        let t = self.throughput;
        self.criterion.run_one(&name, t, &mut f);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (both Criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            c = c.configure_from_args();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
