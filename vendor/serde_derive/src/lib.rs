//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no network access to crates.io, and nothing
//! in the workspace actually serializes — the `#[derive(Serialize,
//! Deserialize)]` attributes exist so configs *can* be archived once a
//! real serializer is available. The derives therefore emit marker-trait
//! impls only.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(generics-intro, type-name, where-usable generics)` from a
/// struct/enum definition, supporting the simple non-generic shapes used
/// in this workspace plus a single lifetime or type parameter.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let word = id.to_string();
            if word == "struct" || word == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let Some(name) = type_name(&input) else {
        return TokenStream::new();
    };
    // The workspace only derives on non-generic types; a generic type
    // would fail to parse here and simply receive no impl (the marker
    // traits carry no behaviour, so nothing downstream breaks).
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .unwrap_or_default()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::de::DeserializeMarker")
}
