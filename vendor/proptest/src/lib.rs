//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the `proptest!` macro with `#![proptest_config(..)]`,
//! `Strategy` (ranges, tuples, `Just`, `prop_oneof!`, `prop_map`,
//! `prop::collection::vec`, `any::<bool>()`), and the `prop_assert*`
//! macros. Case generation is deterministic (seeded from the test name),
//! so failures reproduce; there is no shrinking — the generated inputs
//! are small enough to debug directly.
//!
//! It exists because this build environment cannot reach crates.io;
//! swapping the real crate back in is a one-line manifest change.

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Deterministic splitmix64 generator used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name so every run of a given test
    /// sees the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Per-test configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

/// Mirrors proptest's `prop` façade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::strategy::collection;
}

/// Declares property tests. Supports the two shapes the workspace uses:
/// with and without a leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let guard = $crate::CaseGuard::new(case, || {
                        $(eprintln!("  {} = {:?}", stringify!($arg), &$arg);)+
                    });
                    $body
                    guard.disarm();
                }
            }
        )*
    };
}

/// Prints the failing case number if the property panics.
pub struct CaseGuard<F: FnMut()> {
    case: u32,
    describe: F,
    armed: bool,
}

impl<F: FnMut()> CaseGuard<F> {
    /// Arms a guard for `case`.
    pub fn new(case: u32, describe: F) -> Self {
        CaseGuard {
            case,
            describe,
            armed: true,
        }
    }

    /// Disarms after the case passes.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl<F: FnMut()> Drop for CaseGuard<F> {
    fn drop(&mut self) {
        if self.armed {
            eprintln!("proptest: property failed at case #{}", self.case);
            (self.describe)();
        }
    }
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among the given strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}
