//! Value-generation strategies (the proptest `Strategy` API subset).

use crate::TestRng;
use std::ops::Range;

/// Generates values of an output type from random bits.
///
/// Combinator methods are `Sized`-gated so `Box<dyn Strategy<Value = T>>`
/// remains usable (needed by `prop_oneof!`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (helper for `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for `bool` (fair coin).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}
