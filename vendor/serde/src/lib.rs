//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config structs
//! so runs can be archived next to results, but no code path serializes
//! yet and the build environment cannot reach crates.io. This crate keeps
//! the source compatible with real serde: the traits exist as markers and
//! the derives (re-exported from the local `serde_derive` stand-in) emit
//! marker impls. Swapping in the real serde later is a one-line manifest
//! change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Deserialization support module (mirrors `serde::de`).
pub mod de {
    /// Marker emitted by the no-op `Deserialize` derive. The real serde
    /// `Deserialize<'de>` trait carries a lifetime; deriving a marker
    /// without one keeps the expansion trivial.
    pub trait DeserializeMarker {}
}
