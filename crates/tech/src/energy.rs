//! NoC energy model (§6.4 power analysis).
//!
//! Consumes the activity counters the flit-level simulator records
//! (flit·mm of link traversal, buffer writes/reads, crossbar traversals)
//! and converts them to average power. The paper finds all three
//! organizations below 2 W with links dominating, ordered
//! NOC-Out (1.3 W) < FBfly (1.6 W) < Mesh (1.8 W).

use crate::wire::WireModel;
use crate::BufferTech;
use serde::{Deserialize, Serialize};

/// Activity observed over a measurement window (taken from
/// `nocout_noc::NetStats`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocActivity {
    /// Total link distance travelled by flits, in flit·mm.
    pub flit_mm: f64,
    /// Buffer write operations (one per flit arrival).
    pub buffer_writes: u64,
    /// Buffer read operations (one per flit departure).
    pub buffer_reads: u64,
    /// Crossbar/mux traversals.
    pub xbar_traversals: u64,
    /// Cycles in the window.
    pub cycles: u64,
}

/// Energy breakdown over the window, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocEnergyReport {
    /// Link (wire + repeater) energy.
    pub links_j: f64,
    /// Buffer write+read energy.
    pub buffers_j: f64,
    /// Crossbar traversal energy.
    pub crossbars_j: f64,
    /// Static/clock overhead energy.
    pub static_j: f64,
    /// Window length in seconds.
    pub seconds: f64,
}

impl NocEnergyReport {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.links_j + self.buffers_j + self.crossbars_j + self.static_j
    }

    /// Average power in watts.
    pub fn power_w(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.total_j() / self.seconds
        }
    }

    /// Fraction of dynamic energy spent in links (the paper: links
    /// dominate in every organization).
    pub fn link_fraction(&self) -> f64 {
        let dynamic = self.links_j + self.buffers_j + self.crossbars_j;
        if dynamic == 0.0 {
            0.0
        } else {
            self.links_j / dynamic
        }
    }
}

/// The analytic energy model.
///
/// # Examples
///
/// ```
/// use nocout_tech::energy::{NocActivity, NocEnergyModel};
/// use nocout_tech::BufferTech;
///
/// let model = NocEnergyModel::paper_32nm(128, BufferTech::FlipFlop);
/// let report = model.energy(&NocActivity {
///     flit_mm: 1.0e6,
///     buffer_writes: 100_000,
///     buffer_reads: 100_000,
///     xbar_traversals: 100_000,
///     cycles: 100_000,
/// });
/// assert!(report.power_w() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocEnergyModel {
    /// Wire technology.
    pub wire: WireModel,
    /// Flit width in bits.
    pub width_bits: u32,
    /// Buffer technology (splits the write+read energy).
    pub buffer_tech: BufferTech,
    /// Crossbar traversal energy per bit, femtojoules, for a 5-port
    /// reference crossbar; scaled by [`Self::avg_crossbar_radix`].
    pub xbar_fj_per_bit: f64,
    /// Average switch radix of the organization (5 for the mesh, 15 for
    /// the flattened butterfly, ≈3 for NOC-Out's mux-dominated fabric):
    /// matrix-crossbar traversal energy grows with the port count.
    pub avg_crossbar_radix: f64,
    /// Static + clock power of the whole NoC, watts (leakage in buffers,
    /// repeaters and control).
    pub static_power_w: f64,
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
}

impl NocEnergyModel {
    /// The paper's 32 nm constants at 2 GHz.
    pub fn paper_32nm(width_bits: u32, buffer_tech: BufferTech) -> Self {
        NocEnergyModel {
            wire: WireModel::paper_32nm(),
            width_bits,
            buffer_tech,
            xbar_fj_per_bit: 30.0,
            avg_crossbar_radix: 5.0,
            static_power_w: 0.30,
            frequency_hz: 2.0e9,
        }
    }

    /// Overrides the average switch radix.
    pub fn with_radix(mut self, radix: f64) -> Self {
        self.avg_crossbar_radix = radix;
        self
    }

    /// Converts activity to an energy/power report.
    pub fn energy(&self, activity: &NocActivity) -> NocEnergyReport {
        let w = self.width_bits as f64;
        let seconds = activity.cycles as f64 / self.frequency_hz;
        let links_j = self.wire.transfer_energy_j(w * activity.flit_mm, 1.0);
        let buffer_ops = (activity.buffer_writes + activity.buffer_reads) as f64;
        // energy_per_bit_fj covers a write+read pass; halve per operation.
        let buffers_j = buffer_ops * w * self.buffer_tech.energy_per_bit_fj() * 0.5 * 1.0e-15;
        let crossbars_j = activity.xbar_traversals as f64
            * w
            * self.xbar_fj_per_bit
            * (self.avg_crossbar_radix / 5.0)
            * 1.0e-15;
        NocEnergyReport {
            links_j,
            buffers_j,
            crossbars_j,
            static_j: self.static_power_w * seconds,
            seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_activity() -> NocActivity {
        // ~40 flit-hops/cycle at ~1.85 mm each over 100K cycles — the kind
        // of load a 64-core mesh sees in steady state.
        NocActivity {
            flit_mm: 40.0 * 1.85 * 100_000.0,
            buffer_writes: 4_000_000,
            buffer_reads: 4_000_000,
            xbar_traversals: 4_000_000,
            cycles: 100_000,
        }
    }

    #[test]
    fn mesh_like_power_under_two_watts() {
        let model = NocEnergyModel::paper_32nm(128, BufferTech::FlipFlop);
        let p = model.energy(&busy_activity()).power_w();
        assert!(
            (0.8..2.5).contains(&p),
            "paper: NoC power stays small (≈2 W); got {p:.2}"
        );
    }

    #[test]
    fn links_dominate() {
        let model = NocEnergyModel::paper_32nm(128, BufferTech::FlipFlop);
        let r = model.energy(&busy_activity());
        assert!(
            r.link_fraction() > 0.4,
            "paper: most energy in links; got {:.0}%",
            r.link_fraction() * 100.0
        );
    }

    #[test]
    fn shorter_distances_cost_less() {
        let model = NocEnergyModel::paper_32nm(128, BufferTech::FlipFlop);
        let mut near = busy_activity();
        near.flit_mm *= 0.5;
        assert!(model.energy(&near).power_w() < model.energy(&busy_activity()).power_w());
    }

    #[test]
    fn zero_activity_is_static_only() {
        let model = NocEnergyModel::paper_32nm(128, BufferTech::FlipFlop);
        let r = model.energy(&NocActivity {
            flit_mm: 0.0,
            buffer_writes: 0,
            buffer_reads: 0,
            xbar_traversals: 0,
            cycles: 1_000_000,
        });
        assert!((r.power_w() - model.static_power_w).abs() < 1e-9);
    }
}
