//! Semi-global wire model (§5.2).

/// Repeated semi-global wires at 32 nm: 200 nm pitch, power-delay-optimized
/// repeaters.
///
/// # Examples
///
/// ```
/// use nocout_tech::wire::WireModel;
///
/// let w = WireModel::paper_32nm();
/// // A 4 mm link takes one 2 GHz cycle.
/// assert!((w.delay_cycles(4.0, 2.0e9) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Signal propagation delay in picoseconds per millimetre.
    pub delay_ps_per_mm: f64,
    /// Switching energy per bit per millimetre, in femtojoules (random
    /// data).
    pub energy_fj_per_bit_mm: f64,
    /// Fraction of link energy dissipated in the repeaters.
    pub repeater_energy_fraction: f64,
    /// Repeater (and driver) area per bit per millimetre of link, in mm².
    /// Wires route over logic/SRAM and contribute no area themselves; only
    /// repeaters count (§5.2).
    pub repeater_area_mm2_per_bit_mm: f64,
    /// Wire pitch in millimetres (sets crossbar matrix dimensions).
    pub pitch_mm: f64,
}

impl WireModel {
    /// The paper's 32 nm parameters: 125 ps/mm, 50 fJ/bit/mm, 19% repeater
    /// energy, 200 nm pitch.
    pub fn paper_32nm() -> Self {
        WireModel {
            delay_ps_per_mm: 125.0,
            energy_fj_per_bit_mm: 50.0,
            repeater_energy_fraction: 0.19,
            repeater_area_mm2_per_bit_mm: 1.15e-5,
            pitch_mm: 200.0e-6,
        }
    }

    /// Wire delay of a link in clock cycles (fractional).
    pub fn delay_cycles(&self, length_mm: f64, frequency_hz: f64) -> f64 {
        let cycle_ps = 1.0e12 / frequency_hz;
        self.delay_ps_per_mm * length_mm / cycle_ps
    }

    /// Energy to move `bits` across `length_mm`, in joules.
    pub fn transfer_energy_j(&self, bits: f64, length_mm: f64) -> f64 {
        bits * length_mm * self.energy_fj_per_bit_mm * 1.0e-15
    }

    /// Repeater area of a `width_bits`-wide link of `length_mm`, in mm².
    pub fn repeater_area_mm2(&self, width_bits: u32, length_mm: f64) -> f64 {
        width_bits as f64 * length_mm * self.repeater_area_mm2_per_bit_mm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let w = WireModel::paper_32nm();
        assert_eq!(w.delay_ps_per_mm, 125.0);
        assert_eq!(w.energy_fj_per_bit_mm, 50.0);
    }

    #[test]
    fn delay_scales_linearly() {
        let w = WireModel::paper_32nm();
        assert!((w.delay_cycles(8.0, 2.0e9) - 2.0).abs() < 1e-9);
        assert!((w.delay_cycles(1.85, 2.0e9) - 0.4625).abs() < 1e-9);
    }

    #[test]
    fn energy_matches_headline_number() {
        let w = WireModel::paper_32nm();
        // 128 bits over 1 mm = 6.4 pJ.
        let e = w.transfer_energy_j(128.0, 1.0);
        assert!((e - 6.4e-12).abs() < 1e-18);
    }

    #[test]
    fn repeater_area_scales_with_width_and_length() {
        let w = WireModel::paper_32nm();
        let a1 = w.repeater_area_mm2(128, 1.85);
        let a2 = w.repeater_area_mm2(64, 1.85);
        assert!((a1 / a2 - 2.0).abs() < 1e-9);
    }
}
