//! 32 nm technology models: wires, buffers, crossbars, SRAM, and the
//! NoC area/energy models built from them.
//!
//! The paper estimates area and energy with custom wire models (125 ps/mm,
//! 50 fJ/bit/mm semi-global wires), ORION 2.0 buffer models (flip-flops
//! for the mesh and NOC-Out, SRAM for the flattened butterfly's deep
//! buffers) and CACTI 6.5 for caches (§5.2). This crate implements
//! analytic equivalents with constants chosen so the three published area
//! anchors emerge: mesh ≈ 3.5 mm², flattened butterfly ≈ 23 mm², NOC-Out ≈
//! 2.5 mm² (Fig. 8). The same models are then used *predictively* for the
//! area-normalized link-width search of Fig. 9 and the power analysis of
//! §6.4.

pub mod area;
pub mod chip;
pub mod energy;
pub mod wire;

pub use area::{NocAreaModel, NocAreaReport, OrganizationArea};
pub use chip::ChipPowerModel;
pub use energy::NocEnergyModel;
pub use wire::WireModel;

/// Buffer implementation technology (§5.2: flip-flops for shallow mesh and
/// NOC-Out buffers, SRAM for the flattened butterfly's deep buffers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferTech {
    /// Flip-flop storage: fast, area-hungry; used when ports hold only a
    /// few flits.
    FlipFlop,
    /// SRAM storage: denser per bit but with periphery overhead; pays off
    /// for the butterfly's deep per-port buffers.
    Sram,
}

impl BufferTech {
    /// Storage area per bit in mm².
    pub fn area_per_bit_mm2(self) -> f64 {
        match self {
            // ~3 µm²/bit flip-flop cell + mux at 32 nm.
            BufferTech::FlipFlop => 3.0e-6,
            // ~1.6 µm²/bit SRAM including periphery at buffer-scale arrays.
            BufferTech::Sram => 1.6e-6,
        }
    }

    /// Energy per bit for one write+read pass, in femtojoules. Clocked
    /// flip-flop buffers pay clock and mux energy on every access; SRAM
    /// buffer arrays amortize periphery across the row.
    pub fn energy_per_bit_fj(self) -> f64 {
        match self {
            BufferTech::FlipFlop => 90.0,
            BufferTech::Sram => 30.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_denser_than_flipflop() {
        assert!(BufferTech::Sram.area_per_bit_mm2() < BufferTech::FlipFlop.area_per_bit_mm2());
    }

    #[test]
    fn flipflop_costs_more_energy() {
        assert!(BufferTech::FlipFlop.energy_per_bit_fj() > BufferTech::Sram.energy_per_bit_fj());
    }
}
