//! NoC area model: links (repeaters), buffers, and crossbars (Fig. 8).
//!
//! The model consumes a structural description of a network — every
//! router's port/VC/depth configuration and every link's length — and
//! produces the three-way breakdown the paper reports. Constructors derive
//! those structural descriptions directly from the same topology specs the
//! simulator builds its networks from, so the area numbers and the timing
//! model always describe the same hardware.

use crate::wire::WireModel;
use crate::BufferTech;
use nocout_noc::topology::fbfly::FbflySpec;
use nocout_noc::topology::mesh::MeshSpec;
use nocout_noc::topology::nocout::NocOutSpec;
use nocout_noc::topology::{credit_round_trip_depth, link_delay_for_mm};
use serde::{Deserialize, Serialize};

/// One router's buffering/switching structure for area purposes.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterAreaSpec {
    /// Per input port: (number of VCs, flits per VC).
    pub in_ports: Vec<(usize, usize)>,
    /// Number of output ports (crossbar columns).
    pub out_ports: usize,
    /// Buffer technology.
    pub buffer_tech: BufferTech,
}

/// One link's geometry for area purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkAreaSpec {
    /// Physical length in millimetres.
    pub length_mm: f64,
}

/// A complete structural description of one NoC organization.
#[derive(Debug, Clone, PartialEq)]
pub struct OrganizationArea {
    /// Human-readable name ("Mesh", "Flattened Butterfly", "NOC-Out").
    pub name: String,
    /// All routers (including tree nodes).
    pub routers: Vec<RouterAreaSpec>,
    /// All unidirectional router-to-router links.
    pub links: Vec<LinkAreaSpec>,
    /// Link (flit) width in bits.
    pub width_bits: u32,
}

/// The Fig. 8 area breakdown, in mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocAreaReport {
    /// Link repeater/driver area.
    pub links_mm2: f64,
    /// Input-buffer storage area.
    pub buffers_mm2: f64,
    /// Crossbar/switch area.
    pub crossbars_mm2: f64,
}

impl NocAreaReport {
    /// Total NoC area.
    pub fn total_mm2(&self) -> f64 {
        self.links_mm2 + self.buffers_mm2 + self.crossbars_mm2
    }
}

/// The analytic area model.
///
/// # Examples
///
/// ```
/// use nocout_noc::topology::mesh::MeshSpec;
/// use nocout_tech::area::{NocAreaModel, OrganizationArea};
///
/// let model = NocAreaModel::paper_32nm();
/// let mesh = OrganizationArea::mesh(&MeshSpec::paper_64());
/// let report = model.area(&mesh);
/// assert!(report.total_mm2() > 2.0 && report.total_mm2() < 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocAreaModel {
    /// Wire/repeater technology.
    pub wire: WireModel,
}

impl NocAreaModel {
    /// The paper's 32 nm constants.
    pub fn paper_32nm() -> Self {
        NocAreaModel {
            wire: WireModel::paper_32nm(),
        }
    }

    /// Computes the area breakdown of an organization.
    pub fn area(&self, org: &OrganizationArea) -> NocAreaReport {
        let w = org.width_bits as f64;
        let mut buffers = 0.0;
        let mut crossbars = 0.0;
        for r in &org.routers {
            let bits: f64 = r
                .in_ports
                .iter()
                .map(|&(vcs, depth)| (vcs * depth) as f64 * w)
                .sum();
            buffers += bits * r.buffer_tech.area_per_bit_mm2();
            // Matrix crossbar: wire area = (in_ports·W·pitch) × (out·W·pitch).
            let pitch = self.wire.pitch_mm;
            crossbars += (r.in_ports.len() as f64 * w * pitch) * (r.out_ports as f64 * w * pitch);
        }
        let links = org
            .links
            .iter()
            .map(|l| self.wire.repeater_area_mm2(org.width_bits, l.length_mm))
            .sum();
        NocAreaReport {
            links_mm2: links,
            buffers_mm2: buffers,
            crossbars_mm2: crossbars,
        }
    }

    /// Finds the largest link width (in bits, multiple of 8) for which the
    /// organization fits within `budget_mm2` — the Fig. 9 area
    /// normalization. Returns the width and its report.
    ///
    /// # Panics
    ///
    /// Panics if even an 8-bit network exceeds the budget.
    pub fn fit_width_to_budget<F>(&self, budget_mm2: f64, build: F) -> (u32, NocAreaReport)
    where
        F: Fn(u32) -> OrganizationArea,
    {
        let mut best = None;
        let mut width = 8u32;
        while width <= 256 {
            let report = self.area(&build(width));
            if report.total_mm2() <= budget_mm2 {
                best = Some((width, report));
            } else {
                break;
            }
            width += 8;
        }
        best.expect("even the narrowest network exceeds the area budget")
    }
}

impl OrganizationArea {
    /// Structural description of the tiled mesh (Fig. 2): 5-port routers
    /// with 3 VCs × 5 flits, single-tile links, flip-flop buffers.
    pub fn mesh(spec: &MeshSpec) -> Self {
        Self::mesh_with_width(spec, spec.link_width_bits)
    }

    /// Mesh at an explicit link width (Fig. 9 sweep).
    pub fn mesh_with_width(spec: &MeshSpec, width_bits: u32) -> Self {
        let mut routers = Vec::new();
        let mut links = Vec::new();
        let (cols, rows) = (spec.cols, spec.rows);
        for r in 0..rows {
            for c in 0..cols {
                let mut neighbors = 0;
                if c > 0 {
                    neighbors += 1;
                }
                if c + 1 < cols {
                    neighbors += 1;
                }
                if r > 0 {
                    neighbors += 1;
                }
                if r + 1 < rows {
                    neighbors += 1;
                }
                // Network in-ports + the local injection port.
                let in_ports = vec![(3usize, spec.vc_depth as usize); neighbors + 1];
                routers.push(RouterAreaSpec {
                    in_ports,
                    out_ports: neighbors + 1,
                    buffer_tech: BufferTech::FlipFlop,
                });
                if c + 1 < cols {
                    links.push(LinkAreaSpec {
                        length_mm: spec.tile_mm,
                    });
                    links.push(LinkAreaSpec {
                        length_mm: spec.tile_mm,
                    });
                }
                if r + 1 < rows {
                    links.push(LinkAreaSpec {
                        length_mm: spec.tile_mm,
                    });
                    links.push(LinkAreaSpec {
                        length_mm: spec.tile_mm,
                    });
                }
            }
        }
        OrganizationArea {
            name: "Mesh".into(),
            routers,
            links,
            width_bits,
        }
    }

    /// Structural description of the tiled flattened butterfly (Fig. 3):
    /// 15-port routers, per-link round-trip-sized SRAM buffers, long links.
    pub fn fbfly(spec: &FbflySpec) -> Self {
        Self::fbfly_with_width(spec, spec.link_width_bits)
    }

    /// Flattened butterfly at an explicit link width (Fig. 9 sweep).
    pub fn fbfly_with_width(spec: &FbflySpec, width_bits: u32) -> Self {
        let mut routers = Vec::new();
        let mut links = Vec::new();
        let (cols, rows) = (spec.cols, spec.rows);
        let pipeline = 3u8;
        for r in 0..rows {
            for c in 0..cols {
                let mut in_ports = Vec::new();
                // Row neighbours.
                for dc in 0..cols {
                    if dc == c {
                        continue;
                    }
                    let mm = c.abs_diff(dc) as f64 * spec.tile_mm;
                    let depth = credit_round_trip_depth(pipeline, link_delay_for_mm(mm));
                    in_ports.push((3usize, depth as usize));
                    links.push(LinkAreaSpec { length_mm: mm });
                }
                // Column neighbours.
                for dr in 0..rows {
                    if dr == r {
                        continue;
                    }
                    let mm = r.abs_diff(dr) as f64 * spec.tile_mm;
                    let depth = credit_round_trip_depth(pipeline, link_delay_for_mm(mm));
                    in_ports.push((3usize, depth as usize));
                    links.push(LinkAreaSpec { length_mm: mm });
                }
                // Local port.
                in_ports.push((3usize, 5));
                let n = in_ports.len();
                routers.push(RouterAreaSpec {
                    in_ports,
                    out_ports: n,
                    buffer_tech: BufferTech::Sram,
                });
            }
        }
        OrganizationArea {
            name: "Flattened Butterfly".into(),
            routers,
            links,
            width_bits,
        }
    }

    /// Structural description of NOC-Out (Fig. 5): 2-port tree nodes with
    /// 2 shallow VCs, LLC routers with a 1-D butterfly, flip-flop buffers.
    pub fn nocout(spec: &NocOutSpec) -> Self {
        Self::nocout_with_width(spec, spec.link_width_bits)
    }

    /// NOC-Out at an explicit link width.
    pub fn nocout_with_width(spec: &NocOutSpec, width_bits: u32) -> Self {
        let mut routers = Vec::new();
        let mut links = Vec::new();
        let llc_pipeline = 3u8;
        let tree_depth = 3usize;
        let llc_rows = spec.llc_rows.max(1);
        // Tree nodes: 2 sides × columns × rows, reduction + dispersion.
        // Reduction node: network in + local in(s), 2 VCs each, one output.
        // Dispersion node: network in, 2 VCs, two outputs.
        for _side in 0..2 {
            for _col in 0..spec.columns {
                for row in 0..spec.rows_per_side {
                    let mut red_in = vec![(2usize, tree_depth); spec.concentration];
                    if row > 0 {
                        red_in.push((2, tree_depth));
                    }
                    routers.push(RouterAreaSpec {
                        in_ports: red_in,
                        out_ports: 1,
                        buffer_tech: BufferTech::FlipFlop,
                    });
                    let disp_depth = if row + 1 == spec.rows_per_side {
                        // First dispersion node holds the deeper buffer that
                        // covers the LLC router's credit round trip.
                        credit_round_trip_depth(llc_pipeline, 1) as usize
                    } else {
                        tree_depth
                    };
                    routers.push(RouterAreaSpec {
                        in_ports: vec![(2, disp_depth)],
                        out_ports: 1 + spec.concentration,
                        buffer_tech: BufferTech::FlipFlop,
                    });
                    // Tree links: node-to-node / node-to-LLC, one each way.
                    links.push(LinkAreaSpec {
                        length_mm: spec.tile_mm,
                    });
                    links.push(LinkAreaSpec {
                        length_mm: spec.tile_mm,
                    });
                }
                // §7.1 express links: skip-two channels at every level in
                // both trees, plus skip-four channels in tall trees.
                if spec.express_links && spec.rows_per_side >= 3 {
                    for _ in 0..spec.rows_per_side - 2 {
                        links.push(LinkAreaSpec {
                            length_mm: 2.0 * spec.tile_mm,
                        });
                        links.push(LinkAreaSpec {
                            length_mm: 2.0 * spec.tile_mm,
                        });
                    }
                    if spec.rows_per_side >= 6 {
                        for _ in (0..spec.rows_per_side - 4).step_by(4) {
                            links.push(LinkAreaSpec {
                                length_mm: 4.0 * spec.tile_mm,
                            });
                            links.push(LinkAreaSpec {
                                length_mm: 4.0 * spec.tile_mm,
                            });
                        }
                    }
                }
            }
        }
        // LLC routers: flattened butterfly (1-D, or 2-D per §7.1) + tree
        // ports + local port.
        for row in 0..llc_rows {
            for c in 0..spec.columns {
                let mut in_ports = Vec::new();
                for dc in 0..spec.columns {
                    if dc == c {
                        continue;
                    }
                    let mm = c.abs_diff(dc) as f64 * spec.tile_mm;
                    let depth = credit_round_trip_depth(llc_pipeline, link_delay_for_mm(mm));
                    in_ports.push((3usize, depth as usize));
                    links.push(LinkAreaSpec { length_mm: mm });
                }
                for dr in 0..llc_rows {
                    if dr == row {
                        continue;
                    }
                    let mm = row.abs_diff(dr) as f64 * spec.tile_mm;
                    let depth = credit_round_trip_depth(llc_pipeline, link_delay_for_mm(mm));
                    in_ports.push((3usize, depth as usize));
                    links.push(LinkAreaSpec { length_mm: mm });
                }
                // One reduction-tree input per side served by this row +
                // the LLC tile's local injection port.
                let tree_inputs = if llc_rows == 1 { 2 } else { 1 };
                for _ in 0..tree_inputs {
                    in_ports.push((2, 5));
                }
                in_ports.push((3, 5));
                let out_ports = in_ports.len();
                routers.push(RouterAreaSpec {
                    in_ports,
                    out_ports,
                    buffer_tech: BufferTech::FlipFlop,
                });
            }
        }
        OrganizationArea {
            name: "NOC-Out".into(),
            routers,
            links,
            width_bits,
        }
    }

    /// Area of just the LLC-region flattened butterfly within a NOC-Out
    /// description (the paper: 64% of NOC-Out's area while linking 11% of
    /// tiles). Computed by building a NOC-Out description with zero tree
    /// nodes.
    pub fn nocout_llc_region_only(spec: &NocOutSpec) -> Self {
        let full = Self::nocout(spec);
        let tree_routers = 2 * spec.columns * spec.rows_per_side * 2;
        let mut tree_links = 2 * spec.columns * spec.rows_per_side * 2;
        if spec.express_links && spec.rows_per_side >= 3 {
            tree_links += 2 * spec.columns * 2 * (spec.rows_per_side - 2);
            if spec.rows_per_side >= 6 {
                tree_links += 2 * spec.columns * 2 * ((spec.rows_per_side - 4).div_ceil(4));
            }
        }
        OrganizationArea {
            name: "NOC-Out LLC region".into(),
            routers: full.routers[tree_routers..].to_vec(),
            links: full.links[tree_links..].to_vec(),
            width_bits: full.width_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NocAreaModel {
        NocAreaModel::paper_32nm()
    }

    #[test]
    fn mesh_area_near_paper_anchor() {
        let report = model().area(&OrganizationArea::mesh(&MeshSpec::paper_64()));
        let total = report.total_mm2();
        assert!(
            (2.8..=4.2).contains(&total),
            "mesh ≈ 3.5 mm² expected, got {total:.2}"
        );
    }

    #[test]
    fn fbfly_area_near_paper_anchor() {
        let report = model().area(&OrganizationArea::fbfly(&FbflySpec::paper_64()));
        let total = report.total_mm2();
        assert!(
            (18.0..=28.0).contains(&total),
            "fbfly ≈ 23 mm² expected, got {total:.2}"
        );
    }

    #[test]
    fn nocout_area_near_paper_anchor() {
        let report = model().area(&OrganizationArea::nocout(&NocOutSpec::paper_64()));
        let total = report.total_mm2();
        assert!(
            (2.0..=3.1).contains(&total),
            "NOC-Out ≈ 2.5 mm² expected, got {total:.2}"
        );
    }

    #[test]
    fn paper_ratios_hold() {
        let m = model();
        let mesh = m.area(&OrganizationArea::mesh(&MeshSpec::paper_64())).total_mm2();
        let fb = m.area(&OrganizationArea::fbfly(&FbflySpec::paper_64())).total_mm2();
        let no = m.area(&OrganizationArea::nocout(&NocOutSpec::paper_64())).total_mm2();
        assert!(fb / mesh > 5.0, "fbfly ≈ 7× mesh; got {:.1}×", fb / mesh);
        assert!(fb / no > 7.0, "fbfly ≈ 9× NOC-Out; got {:.1}×", fb / no);
        assert!(no < mesh, "NOC-Out must undercut the mesh");
        let saving = 1.0 - no / mesh;
        assert!(
            (0.15..=0.45).contains(&saving),
            "NOC-Out ≈ 28% below mesh; got {:.0}%",
            saving * 100.0
        );
    }

    #[test]
    fn llc_butterfly_dominates_nocout_area() {
        let m = model();
        let spec = NocOutSpec::paper_64();
        let full = m.area(&OrganizationArea::nocout(&spec)).total_mm2();
        let llc = m
            .area(&OrganizationArea::nocout_llc_region_only(&spec))
            .total_mm2();
        let share = llc / full;
        assert!(
            (0.45..=0.8).contains(&share),
            "paper: LLC butterfly ≈ 64% of NOC-Out; got {:.0}%",
            share * 100.0
        );
    }

    #[test]
    fn area_scales_down_with_width() {
        let m = model();
        let wide = m
            .area(&OrganizationArea::mesh_with_width(&MeshSpec::paper_64(), 128))
            .total_mm2();
        let narrow = m
            .area(&OrganizationArea::mesh_with_width(&MeshSpec::paper_64(), 64))
            .total_mm2();
        assert!(narrow < wide * 0.6);
    }

    #[test]
    fn fit_width_finds_fig9_operating_points() {
        let m = model();
        let budget = m
            .area(&OrganizationArea::nocout(&NocOutSpec::paper_64()))
            .total_mm2();
        let (mesh_w, mesh_report) =
            m.fit_width_to_budget(budget, |w| {
                OrganizationArea::mesh_with_width(&MeshSpec::paper_64(), w)
            });
        assert!(mesh_report.total_mm2() <= budget);
        assert!(mesh_w < 128, "mesh must shrink to fit NOC-Out's budget");
        let (fb_w, _) = m.fit_width_to_budget(budget, |w| {
            OrganizationArea::fbfly_with_width(&FbflySpec::paper_64(), w)
        });
        // Paper: the butterfly's width shrinks by ~7×.
        assert!(
            fb_w <= 24,
            "fbfly width must collapse (~128/7); got {fb_w}"
        );
        assert!(mesh_w > fb_w);
    }

    #[test]
    fn breakdown_components_all_positive() {
        for org in [
            OrganizationArea::mesh(&MeshSpec::paper_64()),
            OrganizationArea::fbfly(&FbflySpec::paper_64()),
            OrganizationArea::nocout(&NocOutSpec::paper_64()),
        ] {
            let r = model().area(&org);
            assert!(r.links_mm2 > 0.0, "{}", org.name);
            assert!(r.buffers_mm2 > 0.0, "{}", org.name);
            assert!(r.crossbars_mm2 > 0.0, "{}", org.name);
        }
    }
}
