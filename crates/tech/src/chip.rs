//! Chip-level area and power bookkeeping (§5.2, §6.4 context).
//!
//! Cores dominate chip power ("cores alone consume in excess of 60 W")
//! while the NoC stays under 2 W — this module provides the chip-level
//! context numbers the paper uses to frame the NoC results, plus the die
//! floorplan arithmetic behind the tile pitches used by the topologies.

use serde::{Deserialize, Serialize};

/// Per-component area and power constants from §5.2 and Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipPowerModel {
    /// Core area including L1s, mm² (ARM Cortex-A15-like at 32 nm).
    pub core_area_mm2: f64,
    /// Core power at 2 GHz, watts.
    pub core_power_w: f64,
    /// LLC area per megabyte, mm² (CACTI 6.5).
    pub cache_area_mm2_per_mb: f64,
    /// LLC power per megabyte, watts (mostly leakage).
    pub cache_power_w_per_mb: f64,
}

impl ChipPowerModel {
    /// The paper's 32 nm values.
    pub fn paper_32nm() -> Self {
        ChipPowerModel {
            core_area_mm2: 2.9,
            core_power_w: 1.05,
            cache_area_mm2_per_mb: 3.2,
            cache_power_w_per_mb: 0.5,
        }
    }

    /// Total core area for `cores` cores.
    pub fn cores_area_mm2(&self, cores: usize) -> f64 {
        self.core_area_mm2 * cores as f64
    }

    /// Total core power for `cores` cores.
    pub fn cores_power_w(&self, cores: usize) -> f64 {
        self.core_power_w * cores as f64
    }

    /// LLC area for a capacity in megabytes.
    pub fn llc_area_mm2(&self, megabytes: f64) -> f64 {
        self.cache_area_mm2_per_mb * megabytes
    }

    /// LLC power for a capacity in megabytes.
    pub fn llc_power_w(&self, megabytes: f64) -> f64 {
        self.cache_power_w_per_mb * megabytes
    }

    /// Die area (cores + LLC + NoC), mm².
    pub fn die_area_mm2(&self, cores: usize, llc_mb: f64, noc_mm2: f64) -> f64 {
        self.cores_area_mm2(cores) + self.llc_area_mm2(llc_mb) + noc_mm2
    }

    /// Approximate tile pitch (mm) for a tiled design of `tiles` tiles
    /// given the die area.
    pub fn tile_pitch_mm(&self, die_mm2: f64, tiles: usize) -> f64 {
        (die_mm2 / tiles as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_budget() {
        let m = ChipPowerModel::paper_32nm();
        // 64 cores alone exceed 60 W, as the paper states.
        assert!(m.cores_power_w(64) > 60.0);
        // 8 MB of LLC ≈ 25.6 mm², 4 W.
        assert!((m.llc_area_mm2(8.0) - 25.6).abs() < 1e-9);
        assert!((m.llc_power_w(8.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tiled_pitch_close_to_topology_constant() {
        let m = ChipPowerModel::paper_32nm();
        let die = m.die_area_mm2(64, 8.0, 3.5);
        let pitch = m.tile_pitch_mm(die, 64);
        // The mesh/fbfly topologies use 1.85 mm tiles.
        assert!(
            (pitch - nocout_noc::topology::TILED_TILE_MM).abs() < 0.1,
            "pitch {pitch:.3}"
        );
    }

    #[test]
    fn noc_is_small_fraction_of_die() {
        let m = ChipPowerModel::paper_32nm();
        let die = m.die_area_mm2(64, 8.0, 2.5);
        assert!(2.5 / die < 0.02, "NOC-Out ≈ 1% of the die");
    }
}
