//! Workload characterization: run a stream against a standalone core with
//! ideal (fixed-latency) memory and measure the rates that the paper's
//! analysis depends on.
//!
//! This is both a user-facing tool (inspect what a profile actually does
//! before simulating a full chip) and the calibration regression suite:
//! tests pin each workload's L1-I MPKI, data-traffic split and
//! latency-sensitivity knobs so that future edits cannot silently drift
//! from the CloudSuite-derived targets in EXPERIMENTS.md.

use crate::gen::WorkloadGen;
use crate::profile::WorkloadProfile;
use nocout_cpu::{Core, CoreConfig};
use nocout_mem::protocol::AccessKind;
use nocout_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Measured rates of one workload stream (per kilo-instruction where
/// noted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Instructions retired during the measurement.
    pub instructions: u64,
    /// Cycles taken (with the ideal memory below).
    pub cycles: u64,
    /// L1-I misses per kilo-instruction — the rate of LLC instruction
    /// fetches, the paper's key traffic.
    pub ifetch_mpki: f64,
    /// L1-D misses per kilo-instruction.
    pub data_mpki: f64,
    /// Fraction of cycles with fetch stalled.
    pub fetch_stall_fraction: f64,
}

/// Runs `profile` on a standalone core where every miss is filled after
/// `memory_latency` cycles, and measures its rates over `instructions`.
///
/// # Examples
///
/// ```
/// use nocout_workloads::{characterize::characterize, Workload};
///
/// let c = characterize(&Workload::WebSearch.profile(), 50_000, 20, 1);
/// assert!(c.ifetch_mpki > 5.0, "scale-out workloads miss in L1-I");
/// ```
pub fn characterize(
    profile: &WorkloadProfile,
    instructions: u64,
    memory_latency: u64,
    seed: u64,
) -> Characterization {
    let mut core = Core::new(CoreConfig::a15());
    let mut gen = WorkloadGen::new(*profile, 0, seed);
    // Warm the L1s the way the chip model does.
    let hot: Vec<_> = gen.hot_instr_lines().collect();
    for a in hot {
        core.warm_l1i(a);
    }
    let local: Vec<_> = gen.local_data_lines().collect();
    for a in local {
        core.warm_l1d(a);
    }

    let mut now = Cycle(0);
    let mut pending: Vec<(Cycle, nocout_cpu::MissRequest)> = Vec::new();
    let mut out = Vec::new();
    while core.stats.retired.value() < instructions {
        out.clear();
        core.tick(now, &mut gen, &mut out);
        for r in out.drain(..) {
            pending.push((now + memory_latency, r));
        }
        pending.retain(|(at, r)| {
            if *at <= now {
                match r.kind {
                    AccessKind::InstrFetch => core.fill_ifetch(r.line, now),
                    _ => {
                        core.fill_data(r.line, now);
                    }
                }
                false
            } else {
                true
            }
        });
        now += 1;
        if now.raw() > instructions * 100 {
            break; // safety net for pathological profiles
        }
    }
    let retired = core.stats.retired.value().max(1);
    let kinstr = retired as f64 / 1000.0;
    Characterization {
        instructions: retired,
        cycles: core.stats.cycles.value(),
        ifetch_mpki: core.stats.ifetch_misses.value() as f64 / kinstr,
        data_mpki: core.stats.data_misses.value() as f64 / kinstr,
        fetch_stall_fraction: core.stats.fetch_stall_cycles.value() as f64
            / core.stats.cycles.value().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Workload;

    fn measure(w: Workload) -> Characterization {
        characterize(&w.profile(), 60_000, 25, 7)
    }

    #[test]
    fn all_workloads_have_llc_bound_instruction_streams() {
        // The defining trait (§2.1): instruction footprints miss in the
        // L1-I at a meaningful rate. Bands are wide enough to tolerate
        // re-rolls of the stream but tight enough to catch knob drift.
        for w in Workload::ALL {
            let c = measure(w);
            assert!(
                (8.0..80.0).contains(&c.ifetch_mpki),
                "{w}: ifetch MPKI {:.1} outside the scale-out band",
                c.ifetch_mpki
            );
        }
    }

    #[test]
    fn data_serving_has_the_highest_fetch_pressure() {
        let ds = measure(Workload::DataServing);
        for w in [Workload::SatSolver, Workload::WebFrontend] {
            let o = measure(w);
            assert!(
                ds.ifetch_mpki > o.ifetch_mpki,
                "Data Serving ({:.1}) must out-miss {w} ({:.1})",
                ds.ifetch_mpki,
                o.ifetch_mpki
            );
        }
    }

    #[test]
    fn sat_solver_is_the_most_compute_bound() {
        let sat = measure(Workload::SatSolver);
        for w in Workload::ALL.iter().filter(|&&w| w != Workload::SatSolver) {
            let o = measure(*w);
            assert!(
                sat.ifetch_mpki <= o.ifetch_mpki + 2.0,
                "SAT ({:.1}) should miss least; {w} measured {:.1}",
                sat.ifetch_mpki,
                o.ifetch_mpki
            );
        }
    }

    #[test]
    fn data_misses_stay_moderate() {
        // Most data accesses hit the warmed local set; the rest split
        // between the LLC-resident region and the vast dataset.
        for w in Workload::ALL {
            let c = measure(w);
            assert!(
                (3.0..60.0).contains(&c.data_mpki),
                "{w}: data MPKI {:.1}",
                c.data_mpki
            );
        }
    }

    #[test]
    fn fetch_stalls_dominate_when_memory_slows() {
        // Latency sensitivity: doubling the fill latency must visibly
        // stretch execution (this is the paper's whole premise).
        let p = Workload::DataServing.profile();
        let fast = characterize(&p, 40_000, 15, 3);
        let slow = characterize(&p, 40_000, 45, 3);
        let fast_cpi = fast.cycles as f64 / fast.instructions as f64;
        let slow_cpi = slow.cycles as f64 / slow.instructions as f64;
        assert!(
            slow_cpi > fast_cpi * 1.25,
            "CPI must track fill latency: {fast_cpi:.2} -> {slow_cpi:.2}"
        );
    }

    #[test]
    fn characterization_is_deterministic() {
        let p = Workload::MapReduceC.profile();
        assert_eq!(
            characterize(&p, 20_000, 20, 5),
            characterize(&p, 20_000, 20, 5)
        );
    }
}
