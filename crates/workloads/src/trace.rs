//! Binary instruction traces: capture any [`InstructionSource`] stream to
//! compact per-core files and replay them as a first-class workload.
//!
//! A trace is a *directory* of per-core stream files (`core-000.nctrace`,
//! `core-001.nctrace`, ...), each holding a versioned header followed by
//! length-prefixed instruction records (the exact byte layout is
//! documented in `docs/trace-format.md`). [`TraceWriter`] produces one
//! stream file; [`TraceSource`] replays one with buffered reads (no mmap)
//! and loops back to the first record when the stream runs out, so a
//! finite capture can drive arbitrarily long simulations;
//! [`TraceSet`] loads a whole directory, validates every record once,
//! and computes the content hash that keys replay runs in the results
//! cache (editing any byte of any stream invalidates cached metrics).
//!
//! [`WorkloadClass`] is the run-spec-level union of the two workload
//! classes the simulator now supports: a synthetic CloudSuite-style
//! profile ([`Workload`]) or a captured trace (`trace:PATH` on every
//! experiment CLI).

use crate::openloop::OpenLoopSpec;
use crate::profile::{Workload, WorkloadProfile};
use nocout_cpu::source::{FetchedInstr, InstructionSource, Op};
use nocout_mem::addr::Addr;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every trace stream file.
pub const TRACE_MAGIC: [u8; 4] = *b"NCTR";
/// Current trace format version (checked on open; see
/// `docs/trace-format.md` for the versioning policy).
pub const TRACE_VERSION: u32 = 1;
/// File-name suffix of per-core stream files inside a trace directory.
pub const TRACE_SUFFIX: &str = ".nctrace";

/// Byte offset of the `instr_count`/`payload_len` pair the writer patches
/// on finish: magic(4) + version(4) + core(4) + name_len(2).
const COUNTS_OFFSET: u64 = 14;

fn invalid<T>(path: &Path, what: impl fmt::Display) -> io::Result<T> {
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {what}", path.display()),
    ))
}

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis (the initial hash state).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The per-stream header: identity and the warm-up sets a chip needs to
/// reproduce checkpoint-style cache warming without the originating
/// profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Physical core index the stream was captured for. Replay warms this
    /// core's private-data region and generates its addresses, so metrics
    /// reproduce exactly when the stream is mapped back onto it.
    pub core: u32,
    /// Seed of the originating run (provenance only).
    pub seed: u64,
    /// Instructions recorded in the stream.
    pub instr_count: u64,
    /// Bytes of the record section following the header.
    pub payload_len: u64,
    /// Hot instruction lines to warm into the L1-I.
    pub instr_hot_lines: u32,
    /// Local data lines to warm into the L1-D.
    pub local_data_lines: u32,
    /// Shared instruction footprint to warm into the LLC (lines).
    pub instr_footprint_lines: u32,
    /// LLC-resident data region to warm into the LLC (lines).
    pub llc_resident_lines: u32,
    /// Shared read-write region to warm into the LLC (lines).
    pub shared_rw_lines: u32,
    /// Human-readable origin (e.g. the profile name).
    pub name: String,
}

impl TraceHeader {
    /// A header for a stream captured from `profile` on physical core
    /// `core` under `seed` (counts are filled in by the writer).
    pub fn for_profile(profile: &WorkloadProfile, core: u32, seed: u64) -> Self {
        TraceHeader {
            core,
            seed,
            instr_count: 0,
            payload_len: 0,
            instr_hot_lines: profile.instr_hot_lines as u32,
            local_data_lines: profile.local_data_lines as u32,
            instr_footprint_lines: profile.instr_footprint_lines as u32,
            llc_resident_lines: profile.llc_resident_lines as u32,
            shared_rw_lines: profile.shared_rw_lines as u32,
            name: profile.name.to_string(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.name.len());
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.core.to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u16).to_le_bytes());
        debug_assert_eq!(out.len() as u64, COUNTS_OFFSET);
        out.extend_from_slice(&self.instr_count.to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.instr_hot_lines.to_le_bytes());
        out.extend_from_slice(&self.local_data_lines.to_le_bytes());
        out.extend_from_slice(&self.instr_footprint_lines.to_le_bytes());
        out.extend_from_slice(&self.llc_resident_lines.to_le_bytes());
        out.extend_from_slice(&self.shared_rw_lines.to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out
    }

    fn decode(r: &mut impl Read, path: &Path) -> io::Result<TraceHeader> {
        let mut fixed = [0u8; 58];
        r.read_exact(&mut fixed)?;
        if fixed[0..4] != TRACE_MAGIC {
            return invalid(path, "not a trace stream (bad magic)");
        }
        let version = u32::from_le_bytes(fixed[4..8].try_into().unwrap());
        if version != TRACE_VERSION {
            return invalid(
                path,
                format!("trace version {version} (this build reads {TRACE_VERSION})"),
            );
        }
        let u32_at = |o: usize| u32::from_le_bytes(fixed[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(fixed[o..o + 8].try_into().unwrap());
        let name_len = u16::from_le_bytes(fixed[12..14].try_into().unwrap()) as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let Ok(name) = String::from_utf8(name) else {
            return invalid(path, "header name is not UTF-8");
        };
        Ok(TraceHeader {
            core: u32_at(8),
            instr_count: u64_at(14),
            payload_len: u64_at(22),
            seed: u64_at(30),
            instr_hot_lines: u32_at(38),
            local_data_lines: u32_at(42),
            instr_footprint_lines: u32_at(46),
            llc_resident_lines: u32_at(50),
            shared_rw_lines: u32_at(54),
            name,
        })
    }

    fn encoded_len(&self) -> u64 {
        58 + self.name.len() as u64
    }
}

// Record tags (first body byte after the length prefix).
const TAG_ALU: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;

fn encode_record(out: &mut Vec<u8>, instr: &FetchedInstr) {
    let start = out.len();
    out.push(0); // length prefix, patched below
    match instr.op {
        Op::Alu { latency } => {
            out.push(TAG_ALU);
            out.extend_from_slice(&instr.fetch_line.0.to_le_bytes());
            out.push(latency);
        }
        Op::Load { addr, dependent } => {
            out.push(TAG_LOAD);
            out.extend_from_slice(&instr.fetch_line.0.to_le_bytes());
            out.extend_from_slice(&addr.0.to_le_bytes());
            out.push(dependent as u8);
        }
        Op::Store { addr } => {
            out.push(TAG_STORE);
            out.extend_from_slice(&instr.fetch_line.0.to_le_bytes());
            out.extend_from_slice(&addr.0.to_le_bytes());
        }
    }
    out[start] = (out.len() - start - 1) as u8;
}

fn decode_record(body: &[u8], path: &Path) -> io::Result<FetchedInstr> {
    let err = |what: &str| -> io::Result<FetchedInstr> { invalid(path, what) };
    let Some((&tag, rest)) = body.split_first() else {
        return err("empty record");
    };
    let u64_at = |o: usize| -> io::Result<u64> {
        match rest.get(o..o + 8) {
            Some(b) => Ok(u64::from_le_bytes(b.try_into().unwrap())),
            None => invalid(path, "truncated record"),
        }
    };
    let fetch_line = Addr(u64_at(0)?);
    let op = match tag {
        TAG_ALU => match rest.get(8) {
            Some(&latency) => Op::Alu { latency },
            None => return err("truncated ALU record"),
        },
        TAG_LOAD => {
            let addr = Addr(u64_at(8)?);
            match rest.get(16) {
                Some(&dep) => Op::Load {
                    addr,
                    dependent: dep != 0,
                },
                None => return err("truncated load record"),
            }
        }
        TAG_STORE => Op::Store {
            addr: Addr(u64_at(8)?),
        },
        other => return invalid(path, format!("unknown record tag {other}")),
    };
    Ok(FetchedInstr { fetch_line, op })
}

/// Writes one per-core stream file: header first, then each captured
/// instruction as a length-prefixed record; [`TraceWriter::finish`]
/// patches the final counts back into the header.
///
/// # Examples
///
/// ```no_run
/// use nocout_cpu::source::{FetchedInstr, Op, ScriptedSource};
/// use nocout_mem::addr::Addr;
/// use nocout_workloads::trace::{TraceHeader, TraceWriter};
/// use nocout_workloads::Workload;
///
/// let profile = Workload::WebSearch.profile();
/// let mut src = ScriptedSource::new(vec![FetchedInstr {
///     fetch_line: Addr(0),
///     op: Op::Alu { latency: 1 },
/// }]);
/// let header = TraceHeader::for_profile(&profile, 0, 1);
/// let mut w = TraceWriter::create("trace-dir/core-000.nctrace", header).unwrap();
/// w.capture(&mut src, 1_000_000).unwrap();
/// w.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    path: PathBuf,
    header: TraceHeader,
    buf: Vec<u8>,
}

impl TraceWriter {
    /// Creates (truncating) a stream file and writes its header with
    /// zeroed counts.
    pub fn create<P: Into<PathBuf>>(path: P, header: TraceHeader) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = BufWriter::new(File::create(&path)?);
        let mut header = header;
        header.instr_count = 0;
        header.payload_len = 0;
        out.write_all(&header.encode())?;
        Ok(TraceWriter {
            out,
            path,
            header,
            buf: Vec::with_capacity(32),
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one instruction.
    pub fn write(&mut self, instr: &FetchedInstr) -> io::Result<()> {
        self.buf.clear();
        encode_record(&mut self.buf, instr);
        self.out.write_all(&self.buf)?;
        self.header.instr_count += 1;
        self.header.payload_len += self.buf.len() as u64;
        Ok(())
    }

    /// Captures the next `n` instructions of any source's stream.
    pub fn capture(&mut self, source: &mut dyn InstructionSource, n: u64) -> io::Result<()> {
        for _ in 0..n {
            let i = source.next_instr();
            self.write(&i)?;
        }
        Ok(())
    }

    /// Flushes the records and patches the instruction/byte counts into
    /// the header, completing the file.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()?;
        let mut file = self.out.into_inner().map_err(|e| e.into_error())?;
        file.seek(SeekFrom::Start(COUNTS_OFFSET))?;
        file.write_all(&self.header.instr_count.to_le_bytes())?;
        file.write_all(&self.header.payload_len.to_le_bytes())?;
        file.sync_all()
    }
}

/// Buffered, looping replay of one stream file — an
/// [`InstructionSource`] whose stream is the recorded sequence repeated
/// forever (workload streams are infinite by contract).
///
/// Decoding trusts the file layout; [`TraceSet::load`] validates every
/// record up front, and a file mutated after that validation surfaces as
/// a panic naming the file rather than silent corruption.
#[derive(Debug)]
pub struct TraceSource {
    reader: BufReader<File>,
    path: PathBuf,
    header: TraceHeader,
    payload_start: u64,
    /// Bytes of payload consumed since the last rewind.
    consumed: u64,
}

impl TraceSource {
    /// Opens a stream file and validates its header. Empty streams are
    /// rejected: a source must always produce.
    pub fn open<P: Into<PathBuf>>(path: P) -> io::Result<Self> {
        let path = path.into();
        let mut reader = BufReader::new(File::open(&path)?);
        let header = TraceHeader::decode(&mut reader, &path)?;
        if header.instr_count == 0 || header.payload_len == 0 {
            return invalid(&path, "empty trace stream (sources must be infinite)");
        }
        let payload_start = header.encoded_len();
        Ok(TraceSource {
            reader,
            path,
            header,
            payload_start,
            consumed: 0,
        })
    }

    /// The stream's header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn read_one(&mut self) -> FetchedInstr {
        if self.consumed >= self.header.payload_len {
            // Loop: rewind to the first record.
            self.reader
                .seek(SeekFrom::Start(self.payload_start))
                .unwrap_or_else(|e| panic!("{}: rewind failed: {e}", self.path.display()));
            self.consumed = 0;
        }
        let mut len = [0u8; 1];
        let mut body = [0u8; 255];
        let instr = self
            .reader
            .read_exact(&mut len)
            .and_then(|()| {
                let n = len[0] as usize;
                self.reader.read_exact(&mut body[..n])?;
                decode_record(&body[..n], &self.path)
            })
            .unwrap_or_else(|e| panic!("{}: corrupt trace record: {e}", self.path.display()));
        self.consumed += 1 + len[0] as u64;
        instr
    }
}

// The trait's default `refill` already loops `next_instr` with static
// dispatch once monomorphized for this type, so no override is needed.
impl InstructionSource for TraceSource {
    fn next_instr(&mut self) -> FetchedInstr {
        self.read_one()
    }
}

/// LLC warm-up regions shared by every stream of a trace (validated
/// consistent at load time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceWarm {
    /// Shared instruction footprint in lines.
    pub instr_footprint_lines: u32,
    /// LLC-resident data region in lines.
    pub llc_resident_lines: u32,
    /// Shared read-write region in lines.
    pub shared_rw_lines: u32,
}

/// A loaded trace directory: one validated stream per core slot, plus the
/// content hash that keys replay runs in the results cache.
///
/// Stream files are ordered by file name; slot `i` of a replay run reads
/// the `i`-th file and is placed on the chip's `i`-th preferred core (the
/// same activation order the synthetic classes use), so a trace captured
/// from a chip configuration replays onto the identical core set.
#[derive(Debug)]
pub struct TraceSet {
    dir: PathBuf,
    files: Vec<PathBuf>,
    headers: Vec<TraceHeader>,
    warm: TraceWarm,
    content_hash: u64,
}

impl TraceSet {
    /// Loads and validates a trace directory: every stream's header and
    /// every record is checked once, and the content hash (FNV-1a 64 over
    /// each file's name and bytes, in file-name order) is computed here so
    /// cache-key construction never re-reads the files.
    pub fn load<P: Into<PathBuf>>(dir: P) -> io::Result<Arc<TraceSet>> {
        let dir = dir.into();
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(TRACE_SUFFIX))
            })
            .collect();
        files.sort();
        if files.is_empty() {
            return invalid(&dir, format!("no `*{TRACE_SUFFIX}` stream files"));
        }
        let mut headers = Vec::with_capacity(files.len());
        let mut hash = FNV_BASIS;
        for path in &files {
            let bytes = std::fs::read(path)?;
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .expect("suffix-matched name is UTF-8");
            hash = fnv1a(hash, name.as_bytes());
            hash = fnv1a(hash, &bytes);
            let mut cursor = io::Cursor::new(&bytes[..]);
            let header = TraceHeader::decode(&mut cursor, path)?;
            if header.instr_count == 0 {
                return invalid(path, "empty trace stream");
            }
            // Validate the whole record section once, so replay can trust
            // the layout.
            let payload_start = header.encoded_len() as usize;
            let payload_end = payload_start + header.payload_len as usize;
            if bytes.len() != payload_end {
                return invalid(
                    path,
                    format!(
                        "file is {} bytes but header promises {payload_end}",
                        bytes.len()
                    ),
                );
            }
            let mut off = payload_start;
            let mut records = 0u64;
            while off < payload_end {
                let len = bytes[off] as usize;
                let body_end = off + 1 + len;
                if body_end > payload_end {
                    return invalid(path, "record overruns the payload");
                }
                decode_record(&bytes[off + 1..body_end], path)?;
                off = body_end;
                records += 1;
            }
            if records != header.instr_count {
                return invalid(
                    path,
                    format!(
                        "header promises {} instructions, payload holds {records}",
                        header.instr_count
                    ),
                );
            }
            headers.push(header);
        }
        let first = &headers[0];
        let warm = TraceWarm {
            instr_footprint_lines: first.instr_footprint_lines,
            llc_resident_lines: first.llc_resident_lines,
            shared_rw_lines: first.shared_rw_lines,
        };
        for (path, h) in files.iter().zip(&headers) {
            if (h.instr_footprint_lines, h.llc_resident_lines, h.shared_rw_lines)
                != (
                    warm.instr_footprint_lines,
                    warm.llc_resident_lines,
                    warm.shared_rw_lines,
                )
            {
                return invalid(path, "streams disagree on LLC warm-up regions");
            }
        }
        Ok(Arc::new(TraceSet {
            dir,
            files,
            headers,
            warm,
            content_hash: hash,
        }))
    }

    /// The trace directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of per-core streams (the replay run's active core count).
    pub fn streams(&self) -> usize {
        self.files.len()
    }

    /// Header of the `slot`-th stream (file-name order).
    pub fn header(&self, slot: usize) -> &TraceHeader {
        &self.headers[slot]
    }

    /// The shared LLC warm-up regions.
    pub fn warm(&self) -> TraceWarm {
        self.warm
    }

    /// Opens the `slot`-th stream for replay.
    pub fn open_stream(&self, slot: usize) -> io::Result<TraceSource> {
        TraceSource::open(&self.files[slot])
    }

    /// The stream files, in file-name order — the same order the content
    /// hash folds them in, so an archiver that walks this list and
    /// re-hashes name + bytes reproduces [`TraceSet::content_hash`]
    /// exactly (the identity rule trace shipping relies on; see
    /// `docs/trace-format.md`).
    pub fn files(&self) -> &[PathBuf] {
        &self.files
    }

    /// FNV-1a 64 over every stream file's name and bytes — the token that
    /// represents this trace in `RunSpec` cache keys, so editing any byte
    /// of any stream invalidates cached replay results.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Total instructions recorded across all streams (part of the cache
    /// token alongside the content hash, so colliding hashes would also
    /// need identical shapes to alias).
    pub fn total_instructions(&self) -> u64 {
        self.headers.iter().map(|h| h.instr_count).sum()
    }
}

/// The workload classes a run spec can name: a synthetic CloudSuite-style
/// profile, or a captured trace replayed from disk.
///
/// Cloning is cheap (traces are shared through an [`Arc`]), and equality
/// follows cache-key semantics: two trace classes are equal exactly when
/// their content hashes are.
#[derive(Debug, Clone)]
pub enum WorkloadClass {
    /// A synthetic profile generated on the fly.
    Synthetic(Workload),
    /// A captured trace directory (`trace:PATH` on the experiment CLIs).
    Trace(Arc<TraceSet>),
    /// A synthetic profile driven by an open-loop arrival schedule
    /// (`openloop:WORKLOAD:INTERVAL:SERVICE` on the experiment CLIs).
    OpenLoop(OpenLoopSpec),
}

impl WorkloadClass {
    /// Whether runs of this class vary with the run spec's seed.
    /// Synthetic generators are seeded (open-loop service streams too);
    /// trace replay is literal — the seed changes nothing, so campaign
    /// layers collapse seed replication of trace points to a single run.
    pub fn is_seed_sensitive(&self) -> bool {
        matches!(
            self,
            WorkloadClass::Synthetic(_) | WorkloadClass::OpenLoop(_)
        )
    }

    /// Display name (profile name, or the trace directory).
    pub fn name(&self) -> String {
        match self {
            WorkloadClass::Synthetic(w) => w.name().to_string(),
            WorkloadClass::Trace(t) => format!("trace:{}", t.dir().display()),
            WorkloadClass::OpenLoop(s) => format!(
                "{} open-loop 1/{}c x{}",
                s.workload.name(),
                s.interval,
                s.service_instrs
            ),
        }
    }

    /// The canonical token this class contributes to a `RunSpec` cache
    /// key. Synthetic classes render as the workload's identifier; traces
    /// render as their content hash plus stream and instruction counts.
    /// Note the trace token is a *digest*, not the content itself: unlike
    /// synthetic keys, the cache's verify-on-load check can only be as
    /// strong as this token, so two traces aliasing requires a 64-bit
    /// FNV collision *and* identical stream/instruction counts —
    /// astronomically unlikely, but probabilistic rather than exact.
    pub fn cache_token(&self) -> String {
        match self {
            WorkloadClass::Synthetic(w) => format!("{w:?}"),
            WorkloadClass::Trace(t) => format!(
                "trace:{:016x}x{}i{}",
                t.content_hash(),
                t.streams(),
                t.total_instructions()
            ),
            WorkloadClass::OpenLoop(s) => s.token(),
        }
    }
}

impl From<OpenLoopSpec> for WorkloadClass {
    fn from(s: OpenLoopSpec) -> Self {
        WorkloadClass::OpenLoop(s)
    }
}

impl From<Workload> for WorkloadClass {
    fn from(w: Workload) -> Self {
        WorkloadClass::Synthetic(w)
    }
}

impl From<Arc<TraceSet>> for WorkloadClass {
    fn from(t: Arc<TraceSet>) -> Self {
        WorkloadClass::Trace(t)
    }
}

impl PartialEq for WorkloadClass {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (WorkloadClass::Synthetic(a), WorkloadClass::Synthetic(b)) => a == b,
            (WorkloadClass::Trace(a), WorkloadClass::Trace(b)) => {
                a.content_hash() == b.content_hash()
            }
            (WorkloadClass::OpenLoop(a), WorkloadClass::OpenLoop(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadGen;
    use nocout_cpu::source::InstrBlock;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "nocout-trace-test-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn capture_one(dir: &Path, core: u32, seed: u64, n: u64) -> PathBuf {
        let profile = Workload::MapReduceC.profile();
        let mut gen = WorkloadGen::new(profile, core as u16, seed);
        let path = dir.join(format!("core-{core:03}{TRACE_SUFFIX}"));
        let mut w = TraceWriter::create(&path, TraceHeader::for_profile(&profile, core, seed))
            .unwrap();
        w.capture(&mut gen, n).unwrap();
        w.finish().unwrap();
        path
    }

    #[test]
    fn capture_then_replay_reproduces_the_stream() {
        let dir = TempDir::new("roundtrip");
        let path = capture_one(&dir.0, 3, 7, 5_000);
        let mut replay = TraceSource::open(&path).unwrap();
        assert_eq!(replay.header().instr_count, 5_000);
        assert_eq!(replay.header().core, 3);
        let mut gen = WorkloadGen::new(Workload::MapReduceC.profile(), 3, 7);
        for n in 0..5_000 {
            assert_eq!(replay.next_instr(), gen.next_instr(), "instr {n}");
        }
    }

    #[test]
    fn replay_loops_past_the_end() {
        let dir = TempDir::new("looping");
        let path = capture_one(&dir.0, 0, 1, 100);
        let mut replay = TraceSource::open(&path).unwrap();
        let first: Vec<FetchedInstr> = (0..100).map(|_| replay.next_instr()).collect();
        let second: Vec<FetchedInstr> = (0..100).map(|_| replay.next_instr()).collect();
        assert_eq!(first, second, "stream must loop exactly");
    }

    #[test]
    fn block_refill_matches_per_instruction_replay() {
        let dir = TempDir::new("block");
        let path = capture_one(&dir.0, 1, 9, 777);
        let mut blocked = TraceSource::open(&path).unwrap();
        let mut direct = TraceSource::open(&path).unwrap();
        let mut block = InstrBlock::new();
        for n in 0..3_000 {
            assert_eq!(block.take(&mut blocked), direct.next_instr(), "instr {n}");
        }
    }

    #[test]
    fn trace_set_loads_streams_in_name_order() {
        let dir = TempDir::new("set");
        capture_one(&dir.0, 5, 2, 50);
        capture_one(&dir.0, 2, 2, 60);
        let set = TraceSet::load(&dir.0).unwrap();
        assert_eq!(set.streams(), 2);
        // File-name order: core-002 before core-005.
        assert_eq!(set.header(0).core, 2);
        assert_eq!(set.header(1).core, 5);
        assert_eq!(set.header(0).instr_count, 60);
        let warm = set.warm();
        assert_eq!(
            warm.instr_footprint_lines,
            Workload::MapReduceC.profile().instr_footprint_lines as u32
        );
    }

    #[test]
    fn content_hash_tracks_every_byte() {
        let dir = TempDir::new("hash");
        let path = capture_one(&dir.0, 0, 4, 200);
        let before = TraceSet::load(&dir.0).unwrap().content_hash();
        let again = TraceSet::load(&dir.0).unwrap().content_hash();
        assert_eq!(before, again, "hash is deterministic");
        // Flip one payload byte (keeping the record layout valid: patch an
        // address byte inside the first record).
        let mut bytes = std::fs::read(&path).unwrap();
        let off = bytes.len() - 2;
        bytes[off] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        let after = TraceSet::load(&dir.0).unwrap().content_hash();
        assert_ne!(before, after, "edits must change the hash");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let dir = TempDir::new("truncated");
        let path = capture_one(&dir.0, 0, 1, 100);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = TraceSet::load(&dir.0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = TempDir::new("version");
        let path = capture_one(&dir.0, 0, 1, 10);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99; // version field
        std::fs::write(&path, bytes).unwrap();
        let err = TraceSource::open(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn empty_directory_is_rejected() {
        let dir = TempDir::new("empty");
        let err = TraceSet::load(&dir.0).unwrap_err();
        assert!(err.to_string().contains(TRACE_SUFFIX), "{err}");
    }

    #[test]
    fn workload_class_equality_and_tokens() {
        let dir = TempDir::new("class");
        capture_one(&dir.0, 0, 1, 20);
        let a: WorkloadClass = Workload::WebSearch.into();
        let b: WorkloadClass = Workload::WebSearch.into();
        let c: WorkloadClass = Workload::DataServing.into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.cache_token(), "WebSearch");
        let t = WorkloadClass::from(TraceSet::load(&dir.0).unwrap());
        assert_ne!(t, a);
        assert!(t.cache_token().starts_with("trace:"));
        // One stream of 20 instructions.
        assert!(t.cache_token().ends_with("x1i20"), "{}", t.cache_token());
    }
}
