//! The six workload profiles and their calibrated parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The CloudSuite-derived workloads of the paper's evaluation (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Cassandra-style NoSQL serving: very low ILP/MLP, the most
    /// latency-sensitive workload (largest FBfly gain in Fig. 7).
    DataServing,
    /// Hadoop text classification (batch).
    MapReduceC,
    /// Hadoop word count (batch).
    MapReduceW,
    /// Cloud9-style SAT solving (batch, the highest snoop rate in Fig. 4).
    SatSolver,
    /// SPECweb2009 e-banking front end (16-core).
    WebFrontend,
    /// Nutch-style search (16-core; smallest FBfly gain — the 16 active
    /// tiles sit in the die centre, but NOC-Out places them adjacent to
    /// the LLC and wins).
    WebSearch,
}

impl Workload {
    /// All six workloads in the paper's figure order.
    pub const ALL: [Workload; 6] = [
        Workload::DataServing,
        Workload::MapReduceC,
        Workload::MapReduceW,
        Workload::SatSolver,
        Workload::WebFrontend,
        Workload::WebSearch,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::DataServing => "Data Serving",
            Workload::MapReduceC => "MapReduce-C",
            Workload::MapReduceW => "MapReduce-W",
            Workload::SatSolver => "SAT Solver",
            Workload::WebFrontend => "Web Frontend",
            Workload::WebSearch => "Web Search",
        }
    }

    /// The stable identifier used in cache keys and on the shard-request
    /// wire (`nocout::distribute`): the enum variant name.
    pub fn key(self) -> &'static str {
        match self {
            Workload::DataServing => "DataServing",
            Workload::MapReduceC => "MapReduceC",
            Workload::MapReduceW => "MapReduceW",
            Workload::SatSolver => "SatSolver",
            Workload::WebFrontend => "WebFrontend",
            Workload::WebSearch => "WebSearch",
        }
    }

    /// Inverse of [`Workload::key`], for decoding wire/journal records.
    pub fn from_key(key: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.key() == key)
    }

    /// The calibrated profile.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            Workload::DataServing => WorkloadProfile {
                name: "Data Serving",
                instr_footprint_lines: 96 * 1024,
                instr_hot_lines: 384,
                instr_hot_fraction: 0.80,
                instr_zipf_theta: 0.6,
                mean_run_length: 5.0,
                mem_op_fraction: 0.3,
                store_fraction: 0.12,
                dependent_load_fraction: 0.9,
                local_data_fraction: 0.92,
                local_data_lines: 192,
                llc_resident_data_fraction: 0.05,
                llc_resident_lines: 16 * 1024,
                shared_rw_fraction: 0.0025,
                shared_rw_lines: 512,
                private_data_lines: 1 << 22,
                alu_long_fraction: 0.25,
                max_cores: 64,
            },
            Workload::MapReduceC => WorkloadProfile {
                name: "MapReduce-C",
                instr_footprint_lines: 48 * 1024,
                instr_hot_lines: 384,
                instr_hot_fraction: 0.87,
                instr_zipf_theta: 0.6,
                mean_run_length: 6.0,
                mem_op_fraction: 0.32,
                store_fraction: 0.15,
                dependent_load_fraction: 0.6,
                local_data_fraction: 0.86,
                local_data_lines: 192,
                llc_resident_data_fraction: 0.035,
                llc_resident_lines: 16 * 1024,
                shared_rw_fraction: 0.010,
                shared_rw_lines: 512,
                private_data_lines: 1 << 22,
                alu_long_fraction: 0.15,
                max_cores: 64,
            },
            Workload::MapReduceW => WorkloadProfile {
                name: "MapReduce-W",
                instr_footprint_lines: 64 * 1024,
                instr_hot_lines: 384,
                instr_hot_fraction: 0.84,
                instr_zipf_theta: 0.6,
                mean_run_length: 5.5,
                mem_op_fraction: 0.3,
                store_fraction: 0.15,
                dependent_load_fraction: 0.7,
                local_data_fraction: 0.855,
                local_data_lines: 192,
                llc_resident_data_fraction: 0.035,
                llc_resident_lines: 16 * 1024,
                shared_rw_fraction: 0.0155,
                shared_rw_lines: 512,
                private_data_lines: 1 << 22,
                alu_long_fraction: 0.18,
                max_cores: 64,
            },
            Workload::SatSolver => WorkloadProfile {
                name: "SAT Solver",
                instr_footprint_lines: 24 * 1024,
                instr_hot_lines: 384,
                instr_hot_fraction: 0.93,
                instr_zipf_theta: 0.7,
                mean_run_length: 8.0,
                mem_op_fraction: 0.35,
                store_fraction: 0.18,
                dependent_load_fraction: 0.4,
                local_data_fraction: 0.905,
                local_data_lines: 192,
                llc_resident_data_fraction: 0.02,
                llc_resident_lines: 32 * 1024,
                shared_rw_fraction: 0.0125,
                shared_rw_lines: 1024,
                private_data_lines: 1 << 21,
                alu_long_fraction: 0.1,
                max_cores: 64,
            },
            Workload::WebFrontend => WorkloadProfile {
                name: "Web Frontend",
                instr_footprint_lines: 56 * 1024,
                instr_hot_lines: 384,
                instr_hot_fraction: 0.90,
                instr_zipf_theta: 0.6,
                mean_run_length: 5.0,
                mem_op_fraction: 0.3,
                store_fraction: 0.14,
                dependent_load_fraction: 0.65,
                local_data_fraction: 0.87,
                local_data_lines: 192,
                llc_resident_data_fraction: 0.035,
                llc_resident_lines: 16 * 1024,
                shared_rw_fraction: 0.015,
                shared_rw_lines: 512,
                private_data_lines: 1 << 21,
                alu_long_fraction: 0.15,
                max_cores: 16,
            },
            Workload::WebSearch => WorkloadProfile {
                name: "Web Search",
                instr_footprint_lines: 80 * 1024,
                instr_hot_lines: 384,
                instr_hot_fraction: 0.92,
                instr_zipf_theta: 0.65,
                mean_run_length: 6.0,
                mem_op_fraction: 0.28,
                store_fraction: 0.1,
                dependent_load_fraction: 0.6,
                local_data_fraction: 0.92,
                local_data_lines: 192,
                llc_resident_data_fraction: 0.025,
                llc_resident_lines: 24 * 1024,
                shared_rw_fraction: 0.0065,
                shared_rw_lines: 512,
                private_data_lines: 1 << 21,
                alu_long_fraction: 0.15,
                max_cores: 16,
            },
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable parameters of one workload model. See the crate docs for how
/// each knob maps to a CloudSuite trait.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Display name.
    pub name: &'static str,
    /// Total instruction footprint in cache lines (shared by all cores;
    /// resident in the LLC, far exceeding the L1-I).
    pub instr_footprint_lines: usize,
    /// Hot instruction lines that fit in the L1-I (inner loops of the
    /// request-processing paths).
    pub instr_hot_lines: usize,
    /// Probability a fetch-line transition stays within the hot set; the
    /// complement is the cold-tail fetch rate that produces L1-I misses
    /// serviced by the LLC — the paper's central traffic.
    pub instr_hot_fraction: f64,
    /// Zipf skew of re-reference *within* the hot set.
    pub instr_zipf_theta: f64,
    /// Mean instructions executed per fetch line before jumping (complex
    /// control flow = short runs).
    pub mean_run_length: f64,
    /// Fraction of instructions that are loads/stores.
    pub mem_op_fraction: f64,
    /// Of memory ops, the fraction that are stores.
    pub store_fraction: f64,
    /// Of loads, the fraction that depend on an outstanding miss (bounds
    /// MLP).
    pub dependent_load_fraction: f64,
    /// Fraction of data accesses to the core's small L1-resident working
    /// set (stack, hot locals).
    pub local_data_fraction: f64,
    /// Size of that local region in lines (per core, fits the L1-D).
    pub local_data_lines: usize,
    /// Fraction of data accesses hitting a modest LLC-resident region (OS
    /// and working structures).
    pub llc_resident_data_fraction: f64,
    /// Size of that LLC-resident region in lines.
    pub llc_resident_lines: usize,
    /// Fraction of data accesses touching the shared read-write region
    /// (the knob behind Fig. 4's snoop rates).
    pub shared_rw_fraction: f64,
    /// Size of the shared read-write region in lines.
    pub shared_rw_lines: usize,
    /// Per-core private dataset size in lines (uniform, no reuse — the
    /// "vast dataset" trait); accessed by the remaining data fraction and
    /// missing all on-die caches.
    pub private_data_lines: u64,
    /// Fraction of ALU ops with a 3-cycle dependent latency (bounds ILP).
    pub alu_long_fraction: f64,
    /// How many cores the workload scales to (16 for Web Frontend and Web
    /// Search, §5.3).
    pub max_cores: usize,
}

impl WorkloadProfile {
    /// Number of cores to activate given a chip with `available` cores.
    pub fn active_cores(&self, available: usize) -> usize {
        available.min(self.max_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads_in_paper_order() {
        assert_eq!(Workload::ALL.len(), 6);
        assert_eq!(Workload::ALL[0].name(), "Data Serving");
        assert_eq!(Workload::ALL[5].name(), "Web Search");
    }

    #[test]
    fn profiles_respect_scaling_limits() {
        assert_eq!(Workload::WebSearch.profile().max_cores, 16);
        assert_eq!(Workload::WebFrontend.profile().max_cores, 16);
        for w in [
            Workload::DataServing,
            Workload::MapReduceC,
            Workload::MapReduceW,
            Workload::SatSolver,
        ] {
            assert_eq!(w.profile().max_cores, 64, "{w}");
        }
    }

    #[test]
    fn active_cores_clamps() {
        let p = Workload::WebSearch.profile();
        assert_eq!(p.active_cores(64), 16);
        assert_eq!(p.active_cores(8), 8);
    }

    #[test]
    fn footprints_exceed_l1_but_fit_llc() {
        for w in Workload::ALL {
            let p = w.profile();
            let bytes = p.instr_footprint_lines as u64 * 64;
            assert!(bytes > 32 * 1024, "{w}: footprint must exceed L1-I");
            assert!(bytes <= 8 * 1024 * 1024, "{w}: footprint must fit the LLC");
        }
    }

    #[test]
    fn datasets_dwarf_llc() {
        for w in Workload::ALL {
            let p = w.profile();
            assert!(
                p.private_data_lines * 64 > 8 * 1024 * 1024,
                "{w}: dataset must dwarf the LLC"
            );
        }
    }

    #[test]
    fn sharing_fractions_are_small() {
        for w in Workload::ALL {
            let p = w.profile();
            assert!(
                p.shared_rw_fraction < 0.05,
                "{w}: request independence requires little sharing"
            );
        }
    }

    #[test]
    fn data_serving_is_most_latency_sensitive() {
        let ds = Workload::DataServing.profile();
        for w in Workload::ALL.iter().skip(1) {
            assert!(ds.dependent_load_fraction >= w.profile().dependent_load_fraction);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Workload::MapReduceC.to_string(), "MapReduce-C");
    }
}
