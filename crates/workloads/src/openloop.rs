//! Open-loop request arrivals: offered load decoupled from completion.
//!
//! The closed-loop synthetic streams ([`crate::gen::WorkloadGen`]) always
//! have work: a slow chip simply retires fewer instructions, so load and
//! latency cannot be varied independently. Scale-out services are not
//! like that — requests arrive on a schedule the server does not control,
//! and when service falls behind, queueing delay (not throughput) is what
//! users see. [`OpenLoopSource`] models that: a deterministic per-core
//! arrival schedule (one request every `interval` cycles), each request
//! costing `service_instrs` instructions drawn from the underlying
//! workload's generator, with per-request latency (arrival to completion,
//! *including* time spent queued behind earlier requests) recorded into a
//! [`LatencyHist`]. This is the prerequisite for the classic
//! load-vs-tail-latency serving curve (the `loadlat` experiment binary).
//!
//! ## Semantics
//!
//! * Arrivals are a fixed schedule: request `k` arrives at cycle
//!   `(k+1)·interval`, independent of simulation progress. The chip calls
//!   [`OpenLoopSource::advance_to`] each cycle to deliver arrivals.
//! * The core serves requests in order. While a request is in service its
//!   `service_instrs` instructions come from the seeded [`WorkloadGen`]
//!   (same footprints, op mix, and sharing behaviour as the closed-loop
//!   stream). A request *completes* when the core asks for the first
//!   instruction past its last service instruction — a fetch-side
//!   approximation of retirement, accurate to a pipeline depth, which is
//!   negligible against the queueing delays the curve is about.
//! * With no request in service and none queued, the source emits
//!   single-instruction fillers (a 1-cycle ALU op on the hottest, warmed
//!   instruction line) so the core stays responsive: each idle cycle the
//!   arrival schedule is re-checked. Cores therefore never quiesce under
//!   open-loop load, which also keeps the chip's idle fast-forward out of
//!   the picture.
//!
//! Unlike the closed-loop sources, the instruction *sequence* is
//! timing-dependent (how many fillers separate two requests depends on
//! when the second one arrives), so block delivery and the
//! per-instruction reference path may consume different filler counts.
//! Determinism still holds: the same `(spec, core, seed, config)` always
//! produces the same run. The determinism test-suite pins the closed-loop
//! classes; open-loop runs are pinned end-to-end by the `loadlat` golden
//! CSV instead.

use crate::gen::{WorkloadGen, INSTR_BASE};
use crate::profile::Workload;
use nocout_cpu::source::{FetchedInstr, InstrBlock, InstructionSource, Op};
use nocout_mem::addr::Addr;
use nocout_sim::stats::LatencyHist;

/// Parameters of an open-loop arrival process layered over a synthetic
/// workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpenLoopSpec {
    /// The workload whose generator supplies service instructions (and
    /// whose footprints are warmed).
    pub workload: Workload,
    /// Cycles between request arrivals at each core (per-core offered
    /// load = 1 request per `interval` cycles). Must be ≥ 1.
    pub interval: u64,
    /// Instructions of service per request. Must be ≥ 1.
    pub service_instrs: u32,
}

impl OpenLoopSpec {
    /// Canonical token used by cache keys and the wire protocol:
    /// `openloop:<WorkloadKey>:<interval>:<service_instrs>`.
    pub fn token(&self) -> String {
        format!(
            "openloop:{}:{}:{}",
            self.workload.key(),
            self.interval,
            self.service_instrs
        )
    }

    /// Parses the [`OpenLoopSpec::token`] form (without assuming the
    /// `openloop:` prefix was stripped).
    pub fn parse_token(s: &str) -> Option<Self> {
        let rest = s.strip_prefix("openloop:")?;
        let mut parts = rest.split(':');
        let workload = Workload::from_key(parts.next()?)?;
        let interval: u64 = parts.next()?.parse().ok()?;
        let service_instrs: u32 = parts.next()?.parse().ok()?;
        if parts.next().is_some() || interval == 0 || service_instrs == 0 {
            return None;
        }
        Some(OpenLoopSpec {
            workload,
            interval,
            service_instrs,
        })
    }
}

/// The per-core open-loop instruction source: a [`WorkloadGen`] service
/// stream gated by a deterministic arrival schedule.
#[derive(Debug)]
pub struct OpenLoopSource {
    spec: OpenLoopSpec,
    gen: WorkloadGen,
    /// Current cycle, maintained by [`OpenLoopSource::advance_to`].
    now: u64,
    /// Arrival time of the next not-yet-arrived request.
    next_arrival: u64,
    /// Requests arrived so far.
    arrived: u64,
    /// Requests completed so far.
    completed: u64,
    /// Whether a request is currently in service.
    in_flight: bool,
    /// Service instructions left in the in-flight request.
    remaining: u32,
    /// Per-request latency (arrival to completion) distribution.
    hist: LatencyHist,
}

impl OpenLoopSource {
    /// Creates the source for `core` with the given seed; the service
    /// stream is exactly the closed-loop stream of the same
    /// `(workload, core, seed)`.
    pub fn new(spec: OpenLoopSpec, core: u16, seed: u64) -> Self {
        assert!(spec.interval >= 1, "interval must be >= 1");
        assert!(spec.service_instrs >= 1, "service_instrs must be >= 1");
        OpenLoopSource {
            spec,
            gen: WorkloadGen::new(spec.workload.profile(), core, seed),
            now: 0,
            next_arrival: spec.interval,
            arrived: 0,
            completed: 0,
            in_flight: false,
            remaining: 0,
            hist: LatencyHist::new(),
        }
    }

    /// The spec.
    pub fn spec(&self) -> OpenLoopSpec {
        self.spec
    }

    /// The underlying generator (the chip warms its footprints exactly as
    /// for the closed-loop class).
    pub fn gen(&self) -> &WorkloadGen {
        &self.gen
    }

    /// Delivers every arrival scheduled at or before `now`. Called by the
    /// chip once per cycle before the core consumes instructions; a
    /// fast-forwarded gap is caught up in one call.
    #[inline]
    pub fn advance_to(&mut self, now: u64) {
        self.now = now;
        while self.next_arrival <= now {
            self.arrived += 1;
            self.next_arrival += self.spec.interval;
        }
    }

    /// The per-request latency distribution recorded so far.
    pub fn hist(&self) -> &LatencyHist {
        &self.hist
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests arrived but not yet completed (queued + in service).
    pub fn backlog(&self) -> u64 {
        self.arrived - self.completed
    }

    /// Resets the latency distribution (warmup boundary). The arrival
    /// schedule and in-flight request are untouched: open-loop state is
    /// workload progress, not statistics.
    pub fn reset_stats(&mut self) {
        self.hist.reset();
    }

    /// Arrival cycle of request `k` (0-based).
    #[inline]
    fn arrival_of(&self, k: u64) -> u64 {
        (k + 1) * self.spec.interval
    }

    /// The full source state machine, one instruction per call: finish a
    /// just-drained request, start the next queued one, serve it, or
    /// emit an idle filler.
    fn next_one(&mut self) -> FetchedInstr {
        if self.in_flight && self.remaining == 0 {
            // The previous request's last service instruction has been
            // consumed: it completes now, queueing delay included.
            let latency = self.now.saturating_sub(self.arrival_of(self.completed));
            self.hist.record(latency);
            self.completed += 1;
            self.in_flight = false;
        }
        if !self.in_flight && self.arrived > self.completed {
            self.in_flight = true;
            self.remaining = self.spec.service_instrs;
        }
        if self.in_flight {
            self.remaining -= 1;
            return self.gen.next_instr();
        }
        // Idle: a 1-cycle ALU op on the hottest (warmed) instruction line
        // keeps the core live without touching memory.
        FetchedInstr {
            fetch_line: Addr(INSTR_BASE),
            op: Op::Alu { latency: 1 },
        }
    }
}

impl InstructionSource for OpenLoopSource {
    fn next_instr(&mut self) -> FetchedInstr {
        self.next_one()
    }

    /// Batches only within the current request: completion recording and
    /// the serve-or-idle decision depend on the clock, so they are made
    /// at most once per refill, at consumption time. A refill that
    /// completes or starts a request batches the started request's
    /// remaining service burst (the burst is drawn unconditionally from
    /// the generator, so pre-drawing it is consumption-order identical);
    /// an idle filler stays a single-instruction block so the arrival
    /// schedule is re-checked every cycle.
    fn refill(&mut self, block: &mut InstrBlock) {
        block.clear();
        if !self.in_flight || self.remaining == 0 {
            block.push(self.next_one());
            if !self.in_flight {
                return;
            }
        }
        while self.remaining > 0 && !block.is_full() {
            self.remaining -= 1;
            block.push(self.gen.next_instr());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpenLoopSpec {
        OpenLoopSpec {
            workload: Workload::DataServing,
            interval: 100,
            service_instrs: 8,
        }
    }

    #[test]
    fn token_round_trips() {
        let s = spec();
        assert_eq!(OpenLoopSpec::parse_token(&s.token()), Some(s));
        assert_eq!(OpenLoopSpec::parse_token("openloop:DataServing:0:8"), None);
        assert_eq!(OpenLoopSpec::parse_token("openloop:Nope:100:8"), None);
        assert_eq!(
            OpenLoopSpec::parse_token("openloop:DataServing:100:8:extra"),
            None
        );
    }

    #[test]
    fn idles_until_first_arrival() {
        let mut s = OpenLoopSource::new(spec(), 0, 1);
        s.advance_to(50);
        for _ in 0..10 {
            let i = s.next_instr();
            assert_eq!(i.fetch_line, Addr(INSTR_BASE));
            assert_eq!(i.op, Op::Alu { latency: 1 });
        }
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn serves_exactly_service_instrs_per_request() {
        let mut s = OpenLoopSource::new(spec(), 0, 1);
        s.advance_to(100);
        assert_eq!(s.backlog(), 1);
        // A parallel closed-loop generator must match the service stream.
        let mut oracle = WorkloadGen::new(spec().workload.profile(), 0, 1);
        for k in 0..8 {
            assert_eq!(s.next_instr(), oracle.next_instr(), "service instr {k}");
        }
        // Ninth pull completes the request and idles.
        s.advance_to(150);
        let i = s.next_instr();
        assert_eq!(i.fetch_line, Addr(INSTR_BASE));
        assert_eq!(s.completed(), 1);
        assert_eq!(s.hist().total(), 1);
        // Arrived at 100, completed at 150.
        assert_eq!(s.hist().percentile(1.0), 50);
    }

    #[test]
    fn queueing_delay_is_charged_to_later_requests() {
        let mut s = OpenLoopSource::new(spec(), 0, 1);
        // Three arrivals pile up before the core consumes anything.
        s.advance_to(300);
        assert_eq!(s.backlog(), 3);
        for _ in 0..8 {
            s.next_instr();
        }
        s.advance_to(301);
        s.next_instr(); // completes request 0 (arrived 100) at 301
        for _ in 0..7 {
            s.next_instr();
        }
        s.advance_to(302);
        s.next_instr(); // completes request 1 (arrived 200) at 302
        assert_eq!(s.completed(), 2);
        assert_eq!(s.hist().total(), 2);
        // p50 covers the second completion: 302 - 200 = 102, reported as
        // its bucket's upper bound (sub-bucket [102, 104) → 103).
        let p50 = s.hist().percentile(0.5);
        assert!((102..=105).contains(&p50), "{p50}");
        // p100 covers the first completion: 301 - 100 = 201, within one
        // sub-bucket above.
        let p100 = s.hist().percentile(1.0);
        assert!((201..=208).contains(&p100), "{p100}");
    }

    #[test]
    fn refill_stops_at_request_boundary() {
        let mut s = OpenLoopSource::new(spec(), 0, 1);
        s.advance_to(100);
        let mut block = InstrBlock::new();
        s.refill(&mut block);
        // Exactly the request's 8 service instructions, not a full block.
        assert_eq!(block.remaining(), 8);
        while block.pop().is_some() {}
        s.refill(&mut block);
        // Next refill is the completion + idle filler, one instruction.
        assert_eq!(block.remaining(), 1);
        assert_eq!(s.completed(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let drive = || {
            let mut s = OpenLoopSource::new(spec(), 2, 9);
            let mut out = Vec::new();
            for t in 0..2000u64 {
                s.advance_to(t);
                out.push(s.next_instr());
            }
            (out, s.completed())
        };
        let (a, ca) = drive();
        let (b, cb) = drive();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca > 0);
    }

    #[test]
    fn overload_grows_backlog() {
        // One arrival per cycle, one instruction consumed per cycle,
        // 8 instructions of service: the queue must grow without bound
        // and recorded latencies must rise.
        let mut s = OpenLoopSource::new(
            OpenLoopSpec {
                workload: Workload::DataServing,
                interval: 1,
                service_instrs: 8,
            },
            0,
            1,
        );
        for t in 0..4000u64 {
            s.advance_to(t);
            s.next_instr();
        }
        assert!(s.backlog() > 3000, "backlog {}", s.backlog());
        let h = s.hist();
        assert!(h.percentile(0.99) > h.percentile(0.5));
    }
}
