//! Synthetic scale-out workload models calibrated to CloudSuite.
//!
//! The paper evaluates six CloudSuite scale-out workloads under Flexus
//! full-system simulation. We cannot run the real software stack, so this
//! crate substitutes statistical workload models that reproduce the traits
//! the paper's analysis rests on (§2.1):
//!
//! * **request independence** — each core runs its own stream with almost
//!   no inter-core data sharing,
//! * **large instruction footprints** — a multi-megabyte shared
//!   instruction region with short straight-line runs and skewed
//!   re-reference, producing frequent L1-I misses that hit in the LLC,
//! * **vast datasets** — per-core private data spread over a region far
//!   larger than the LLC with no temporal reuse, so data misses go to
//!   memory,
//! * **negligible coherence** — a small shared read-write region touched
//!   by a tunable few percent of data accesses generates the ~2% snoop
//!   rate of Fig. 4,
//! * **low ILP/MLP** — dependent-load fractions and occasional long-latency
//!   ALU chains bound how much latency the core can hide.
//!
//! Each [`Workload`] carries a [`WorkloadProfile`] whose knobs were
//! calibrated so the relative behaviour across interconnects matches the
//! paper's evaluation (see EXPERIMENTS.md for the paper-vs-measured
//! record).

pub mod characterize;
pub mod gen;
pub mod openloop;
pub mod profile;
pub mod trace;

pub use characterize::{characterize, Characterization};
pub use gen::WorkloadGen;
pub use openloop::{OpenLoopSource, OpenLoopSpec};
pub use profile::{Workload, WorkloadProfile};
pub use trace::{TraceSet, TraceSource, TraceWriter, WorkloadClass};
