//! The per-core instruction-stream generator.

use crate::profile::WorkloadProfile;
use nocout_cpu::source::{FetchedInstr, InstructionSource, Op};
use nocout_mem::addr::{Addr, LINE_BYTES};
use nocout_sim::rng::{SimRng, Zipf};

/// Base of the shared instruction region.
pub const INSTR_BASE: u64 = 0x0100_0000_0000;
/// Base of the small shared read-write region.
pub const SHARED_RW_BASE: u64 = 0x0200_0000_0000;
/// Base of the modest LLC-resident data region (shared read-mostly).
pub const LLC_DATA_BASE: u64 = 0x0300_0000_0000;
/// Base of the per-core private data regions (strided by core).
pub const PRIVATE_BASE: u64 = 0x1000_0000_0000;

/// A per-core synthetic instruction stream implementing
/// [`InstructionSource`].
///
/// All cores running the same workload share the instruction region, the
/// shared read-write region and the LLC-resident region; private data is
/// disjoint per core. The stream is fully determined by `(profile, core,
/// seed)`.
///
/// # Examples
///
/// ```
/// use nocout_cpu::source::InstructionSource;
/// use nocout_workloads::{Workload, WorkloadGen};
///
/// let mut gen = WorkloadGen::new(Workload::WebSearch.profile(), 0, 42);
/// let i = gen.next_instr();
/// assert!(i.fetch_line.0 >= nocout_workloads::gen::INSTR_BASE);
/// ```
#[derive(Debug)]
pub struct WorkloadGen {
    profile: WorkloadProfile,
    core: u16,
    rng: SimRng,
    hot_zipf: Zipf,
    current_line: u64,
    remaining_in_run: u32,
    /// Cumulative op-mix thresholds: one uniform draw against this table
    /// classifies an instruction as memory op / long ALU / short ALU,
    /// replacing the per-field Bernoulli draws of the original generator.
    mix_mem: f64,
    mix_alu_long: f64,
}

impl WorkloadGen {
    /// Creates the stream for `core` with the given seed. Different cores
    /// should use different `(core, seed)` pairs; the same pair reproduces
    /// the same stream exactly.
    pub fn new(profile: WorkloadProfile, core: u16, seed: u64) -> Self {
        assert!(
            profile.instr_hot_lines < profile.instr_footprint_lines,
            "hot set must be a subset of the footprint"
        );
        let mut rng = SimRng::new(seed ^ ((core as u64) << 32) ^ 0x9E37_79B9);
        let hot_zipf = Zipf::new(profile.instr_hot_lines, profile.instr_zipf_theta);
        let current_line = hot_zipf.sample(&mut rng) as u64;
        // Cumulative op-mix table: P(mem), then P(long ALU) carved out of
        // the non-memory remainder, so the marginal op distribution
        // matches the profile's per-field fractions exactly.
        let mix_mem = profile.mem_op_fraction;
        let mix_alu_long = mix_mem + (1.0 - mix_mem) * profile.alu_long_fraction;
        WorkloadGen {
            profile,
            core,
            rng,
            hot_zipf,
            current_line,
            remaining_in_run: 1,
            mix_mem,
            mix_alu_long,
        }
    }

    /// The instruction lines a warmed L1-I would hold (the hot set).
    pub fn hot_instr_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        (0..self.profile.instr_hot_lines as u64)
            .map(|i| Addr(INSTR_BASE + i * LINE_BYTES))
    }

    /// The data lines a warmed L1-D would hold (the core's local set).
    pub fn local_data_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        let base = PRIVATE_BASE + ((self.core as u64) << 40);
        (0..self.profile.local_data_lines as u64).map(move |i| Addr(base + i * LINE_BYTES))
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn data_address(&mut self) -> (Addr, bool) {
        // Returns (address, in_shared_rw_region). Region probabilities:
        // local L1-resident set, shared read-write set, LLC-resident set,
        // then the vast private dataset for the remainder.
        let p = &self.profile;
        let base = PRIVATE_BASE + ((self.core as u64) << 40);
        let r = self.rng.next_f64();
        if r < p.local_data_fraction {
            let line = self.rng.next_below(p.local_data_lines as u64);
            (Addr(base + line * LINE_BYTES), false)
        } else if r < p.local_data_fraction + p.shared_rw_fraction {
            let line = self.rng.next_below(p.shared_rw_lines as u64);
            (Addr(SHARED_RW_BASE + line * LINE_BYTES), true)
        } else if r < p.local_data_fraction + p.shared_rw_fraction + p.llc_resident_data_fraction
        {
            let line = self.rng.next_below(p.llc_resident_lines as u64);
            (Addr(LLC_DATA_BASE + line * LINE_BYTES), false)
        } else {
            // Vast dataset: beyond the local set, no temporal reuse.
            let line = p.local_data_lines as u64
                + self.rng.next_below(p.private_data_lines);
            (Addr(base + line * LINE_BYTES), false)
        }
    }

    /// Generates the next instruction of the stream. Both trait entry
    /// points ([`InstructionSource::next_instr`] and the batched
    /// [`InstructionSource::refill`]) route through this one function, so
    /// the block-dispatch path and the per-instruction oracle consume the
    /// identical sequence by construction.
    #[inline]
    fn gen_one(&mut self) -> FetchedInstr {
        let p = self.profile;
        if self.remaining_in_run == 0 {
            // Hot-set transitions stay L1-I resident; cold-tail jumps reach
            // lines only the LLC holds.
            self.current_line = if self.rng.chance(p.instr_hot_fraction) {
                self.hot_zipf.sample(&mut self.rng) as u64
            } else {
                p.instr_hot_lines as u64
                    + self
                        .rng
                        .next_below((p.instr_footprint_lines - p.instr_hot_lines) as u64)
            };
            // Geometric run length with the configured mean (≥ 1).
            let cont = 1.0 - 1.0 / p.mean_run_length.max(1.0);
            self.remaining_in_run = 1 + self.rng.geometric(1.0 - cont) as u32;
        }
        self.remaining_in_run -= 1;
        let fetch_line = Addr(INSTR_BASE + self.current_line * LINE_BYTES);

        // One draw against the cumulative op-mix table classifies the op;
        // only memory ops pay for further draws (address, store/load,
        // dependence).
        let r = self.rng.next_f64();
        let op = if r < self.mix_mem {
            let (addr, shared) = self.data_address();
            // Shared-region stores are what generate invalidations and
            // forwards; they get at least a healthy store ratio so the
            // ping-pong the directory must handle actually occurs.
            let store_p = if shared {
                p.store_fraction.max(0.25)
            } else {
                p.store_fraction
            };
            let is_store = self.rng.chance(store_p);
            if is_store {
                Op::Store { addr }
            } else {
                Op::Load {
                    addr,
                    dependent: self.rng.chance(p.dependent_load_fraction),
                }
            }
        } else if r < self.mix_alu_long {
            Op::Alu { latency: 3 }
        } else {
            Op::Alu { latency: 1 }
        };
        FetchedInstr { fetch_line, op }
    }
}

// Block delivery: a core crosses the trait object once per
// [`nocout_cpu::source::BLOCK_CAP`] instructions via the trait's default
// `refill`, whose `next_instr` calls dispatch statically once
// monomorphized for this type — no override needed.
impl InstructionSource for WorkloadGen {
    fn next_instr(&mut self) -> FetchedInstr {
        self.gen_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Workload;

    fn collect(gen: &mut WorkloadGen, n: usize) -> Vec<FetchedInstr> {
        (0..n).map(|_| gen.next_instr()).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Workload::DataServing.profile();
        let mut a = WorkloadGen::new(p, 3, 7);
        let mut b = WorkloadGen::new(p, 3, 7);
        assert_eq!(collect(&mut a, 1000), collect(&mut b, 1000));
    }

    #[test]
    fn refill_matches_per_instruction_stream() {
        // The batched block path must produce exactly the sequence the
        // per-instruction path does — the contract behind the core-level
        // block-dispatch differential tests.
        use nocout_cpu::source::InstrBlock;
        let p = Workload::WebSearch.profile();
        let mut blocked = WorkloadGen::new(p, 2, 11);
        let mut direct = WorkloadGen::new(p, 2, 11);
        let mut block = InstrBlock::new();
        for n in 0..10_000 {
            assert_eq!(block.take(&mut blocked), direct.next_instr(), "instr {n}");
        }
    }

    #[test]
    fn different_cores_different_streams() {
        let p = Workload::DataServing.profile();
        let mut a = WorkloadGen::new(p, 0, 7);
        let mut b = WorkloadGen::new(p, 1, 7);
        assert_ne!(collect(&mut a, 100), collect(&mut b, 100));
    }

    #[test]
    fn instruction_addresses_in_region() {
        let p = Workload::MapReduceW.profile();
        let mut g = WorkloadGen::new(p, 0, 1);
        for i in collect(&mut g, 10_000) {
            let off = i.fetch_line.0 - INSTR_BASE;
            assert!(off < p.instr_footprint_lines as u64 * LINE_BYTES);
            assert_eq!(i.fetch_line.0 % LINE_BYTES, 0);
        }
    }

    #[test]
    fn private_data_is_disjoint_across_cores() {
        let p = Workload::MapReduceC.profile();
        let mut a = WorkloadGen::new(p, 0, 1);
        let mut b = WorkloadGen::new(p, 1, 1);
        let private = |is: Vec<FetchedInstr>| -> Vec<u64> {
            is.iter()
                .filter_map(|i| match i.op {
                    Op::Load { addr, .. } | Op::Store { addr } if addr.0 >= PRIVATE_BASE => {
                        Some(addr.0)
                    }
                    _ => None,
                })
                .collect()
        };
        let pa = private(collect(&mut a, 5_000));
        let pb = private(collect(&mut b, 5_000));
        assert!(!pa.is_empty() && !pb.is_empty());
        for x in &pa {
            assert!(!pb.contains(x), "private regions must not overlap");
        }
    }

    #[test]
    fn mem_op_fraction_close_to_profile() {
        let p = Workload::SatSolver.profile();
        let mut g = WorkloadGen::new(p, 0, 9);
        let n = 50_000;
        let mem = collect(&mut g, n)
            .iter()
            .filter(|i| matches!(i.op, Op::Load { .. } | Op::Store { .. }))
            .count();
        let frac = mem as f64 / n as f64;
        assert!(
            (frac - p.mem_op_fraction).abs() < 0.02,
            "measured {frac}, profile {}",
            p.mem_op_fraction
        );
    }

    #[test]
    fn shared_accesses_are_rare() {
        let p = Workload::DataServing.profile();
        let mut g = WorkloadGen::new(p, 0, 5);
        let instrs = collect(&mut g, 100_000);
        let (mut shared, mut data) = (0usize, 0usize);
        for i in &instrs {
            if let Op::Load { addr, .. } | Op::Store { addr } = i.op {
                data += 1;
                if addr.0 >= SHARED_RW_BASE && addr.0 < LLC_DATA_BASE {
                    shared += 1;
                }
            }
        }
        let frac = shared as f64 / data as f64;
        assert!(
            (frac - p.shared_rw_fraction).abs() < 0.005,
            "measured {frac} vs profile {}",
            p.shared_rw_fraction
        );
    }

    #[test]
    fn run_lengths_have_configured_mean() {
        let p = Workload::WebSearch.profile();
        let mut g = WorkloadGen::new(p, 0, 11);
        let instrs = collect(&mut g, 200_000);
        let mut transitions = 0usize;
        for w in instrs.windows(2) {
            if w[0].fetch_line != w[1].fetch_line {
                transitions += 1;
            }
        }
        let mean_run = instrs.len() as f64 / transitions.max(1) as f64;
        assert!(
            (mean_run - p.mean_run_length).abs() < 1.5,
            "mean run {mean_run}, profile {}",
            p.mean_run_length
        );
    }

    #[test]
    fn instruction_reuse_is_skewed() {
        // The hottest instruction line must be referenced far more often
        // than the median — that's what makes part of the footprint stick
        // in the L1-I.
        let p = Workload::WebSearch.profile();
        let mut g = WorkloadGen::new(p, 0, 3);
        let mut counts = std::collections::HashMap::new();
        for i in collect(&mut g, 100_000) {
            *counts.entry(i.fetch_line.0).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let mean = 100_000 / counts.len();
        assert!(max > mean * 10, "max {max}, mean {mean}");
    }
}
