//! Simulation kernel for the NOC-Out reproduction.
//!
//! This crate provides the substrate shared by every timing model in the
//! workspace:
//!
//! * [`Cycle`] — a strongly-typed cycle count and the [`SimClock`] that
//!   advances it,
//! * [`rng::SimRng`] — a deterministic, splittable pseudo-random number
//!   generator so that every experiment is exactly reproducible from a seed,
//! * [`stats`] — counters, histograms and running statistics used by the
//!   network, memory-system and core models,
//! * [`ring::Ring`] — the fixed-capacity ring buffer behind the uncore
//!   hot-path FIFO queues,
//! * [`config`] — small helpers for experiment configuration.
//!
//! The original paper used the Flexus full-system simulation framework; this
//! crate is the equivalent foundation for our from-scratch cycle-driven
//! models.
//!
//! # Examples
//!
//! ```
//! use nocout_sim::{Cycle, SimClock};
//!
//! let mut clock = SimClock::new();
//! assert_eq!(clock.now(), Cycle(0));
//! clock.advance();
//! assert_eq!(clock.now(), Cycle(1));
//! ```

pub mod config;
pub mod ring;
pub mod rng;
pub mod stats;

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulated clock cycle.
///
/// All timing models in the workspace run at the chip clock (2 GHz in the
/// paper's 32nm configuration). Using a newtype keeps cycle arithmetic from
/// being confused with other integer quantities such as flit counts or
/// addresses.
///
/// # Examples
///
/// ```
/// use nocout_sim::Cycle;
///
/// let start = Cycle(10);
/// let end = Cycle(25);
/// assert_eq!(end - start, 15);
/// assert_eq!(start + 5, Cycle(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle (simulation start).
    pub const ZERO: Cycle = Cycle(0);

    /// A cycle value beyond any realistic simulation length, used as the
    /// "not yet scheduled" sentinel.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction between two cycle stamps, returning the
    /// elapsed number of cycles.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Converts a cycle count into seconds given a clock frequency in Hz.
    ///
    /// # Examples
    ///
    /// ```
    /// use nocout_sim::Cycle;
    /// let c = Cycle(2_000_000_000);
    /// assert!((c.to_seconds(2.0e9) - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn to_seconds(self, frequency_hz: f64) -> f64 {
        self.0 as f64 / frequency_hz
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

/// The global simulation clock.
///
/// Components never advance the clock themselves; the top-level system
/// driver ticks every component once per cycle and then advances the clock,
/// which keeps the whole chip model synchronous and deterministic.
///
/// # Examples
///
/// ```
/// use nocout_sim::SimClock;
///
/// let mut clock = SimClock::new();
/// for _ in 0..100 {
///     clock.advance();
/// }
/// assert_eq!(clock.now().raw(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Cycle,
}

impl SimClock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Self {
        SimClock { now: Cycle::ZERO }
    }

    /// The current cycle.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the clock by one cycle.
    #[inline]
    pub fn advance(&mut self) {
        self.now.0 += 1;
    }

    /// Advances the clock by `n` cycles.
    #[inline]
    pub fn advance_by(&mut self, n: u64) {
        self.now.0 += n;
    }
}

/// Frequency of the simulated chip in Hz (2 GHz per Table 1 of the paper).
pub const CHIP_FREQUENCY_HZ: f64 = 2.0e9;

/// Duration of one clock cycle in picoseconds at [`CHIP_FREQUENCY_HZ`].
pub const CYCLE_TIME_PS: f64 = 1.0e12 / CHIP_FREQUENCY_HZ;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(5);
        let b = a + 10;
        assert_eq!(b, Cycle(15));
        assert_eq!(b - a, 10);
        let mut c = Cycle(0);
        c += 7;
        assert_eq!(c.raw(), 7);
    }

    #[test]
    fn cycle_saturating_since() {
        assert_eq!(Cycle(5).saturating_since(Cycle(10)), 0);
        assert_eq!(Cycle(10).saturating_since(Cycle(4)), 6);
    }

    #[test]
    fn cycle_ordering_and_sentinel() {
        assert!(Cycle::ZERO < Cycle(1));
        assert!(Cycle(1_000_000) < Cycle::NEVER);
    }

    #[test]
    fn clock_advances() {
        let mut clk = SimClock::new();
        clk.advance();
        clk.advance_by(9);
        assert_eq!(clk.now(), Cycle(10));
    }

    #[test]
    fn cycle_display_and_from() {
        assert_eq!(Cycle::from(42).to_string(), "42");
    }

    #[test]
    fn cycle_seconds_at_two_ghz() {
        let c = Cycle(2);
        let s = c.to_seconds(CHIP_FREQUENCY_HZ);
        assert!((s - 1.0e-9).abs() < 1e-15);
        assert!((CYCLE_TIME_PS - 500.0).abs() < 1e-9);
    }
}
