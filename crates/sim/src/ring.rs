//! A fixed-capacity ring buffer for hot-path FIFO queues.
//!
//! The uncore hot paths (LLC input queue, memory-channel request and
//! completion queues, router virtual-channel buffers) all hold FIFO
//! populations with a hardware bound: a tile's in-flight limit, a channel's
//! queue depth, a VC's buffer depth. At those populations a flat ring with
//! head/length indices beats `VecDeque`: no capacity/wraparound bookkeeping
//! split across push *and* pop, no pointer-chasing through the deque's
//! layout, and the storage never moves, so indexed scans are a mask and an
//! array read.
//!
//! The ring grows physical storage lazily (entries are written once, on
//! first use of each slot) and doubles its capacity if a caller exceeds the
//! sizing hint — growth is allowed so that a mis-sized hint degrades to a
//! rare `memcpy` instead of a protocol change, keeping behaviour identical
//! to the unbounded `VecDeque` it replaces. In steady state no allocation
//! occurs.
//!
//! # Examples
//!
//! ```
//! use nocout_sim::ring::Ring;
//!
//! let mut r: Ring<u32> = Ring::with_capacity(4);
//! r.push_back(1);
//! r.push_back(2);
//! assert_eq!(r.pop_front(), Some(1));
//! assert_eq!(r.len(), 1);
//! assert_eq!(r.get(0), 2);
//! ```

/// A growable ring buffer over `Copy` elements with indexed access.
///
/// Capacity is always a power of two so the wrap is a mask. See the module
/// docs for the sizing/growth contract.
#[derive(Debug, Clone)]
pub struct Ring<T: Copy> {
    buf: Vec<T>,
    cap: usize,
    head: usize,
    len: usize,
}

impl<T: Copy> Ring<T> {
    /// Creates a ring sized for `capacity_hint` elements (rounded up to a
    /// power of two). No storage is allocated until the first push.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        let cap = capacity_hint.max(2).next_power_of_two();
        Ring {
            buf: Vec::new(),
            cap,
            head: 0,
            len: 0,
        }
    }

    /// Number of queued elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends an element at the back, doubling capacity if full.
    #[inline]
    pub fn push_back(&mut self, v: T) {
        if self.len == self.cap {
            self.grow();
        }
        let tail = (self.head + self.len) & (self.cap - 1);
        debug_assert!(tail <= self.buf.len());
        if tail == self.buf.len() {
            // First use of this physical slot: the unwrapped region extends
            // one past the current storage exactly until every slot has been
            // written once.
            self.buf.push(v);
        } else {
            self.buf[tail] = v;
        }
        self.len += 1;
    }

    /// Removes and returns the front element.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.head];
        self.head = (self.head + 1) & (self.cap - 1);
        self.len -= 1;
        Some(v)
    }

    /// The front element without removing it.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            Some(&self.buf[self.head])
        }
    }

    /// The `i`-th element from the front.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        self.buf[(self.head + i) & (self.cap - 1)]
    }

    /// Overwrites the `i`-th element from the front.
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        debug_assert!(i < self.len);
        let idx = (self.head + i) & (self.cap - 1);
        self.buf[idx] = v;
    }

    /// Shortens the ring to `new_len` elements, dropping from the back.
    #[inline]
    pub fn truncate(&mut self, new_len: usize) {
        debug_assert!(new_len <= self.len);
        self.len = new_len;
    }

    /// Removes all elements (storage is retained).
    #[inline]
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Iterates the queued elements front to back.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.cap * 2).max(2);
        let mut nb = Vec::with_capacity(new_cap);
        for i in 0..self.len {
            nb.push(self.buf[(self.head + i) & (self.cap - 1)]);
        }
        self.buf = nb;
        self.head = 0;
        self.cap = new_cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_wraparound() {
        let mut r: Ring<u64> = Ring::with_capacity(4);
        for i in 0..3 {
            r.push_back(i);
        }
        assert_eq!(r.pop_front(), Some(0));
        assert_eq!(r.pop_front(), Some(1));
        for i in 3..7 {
            r.push_back(i);
        }
        let drained: Vec<u64> = std::iter::from_fn(|| r.pop_front()).collect();
        assert_eq!(drained, vec![2, 3, 4, 5, 6]);
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn growth_preserves_order() {
        let mut r: Ring<u32> = Ring::with_capacity(2);
        r.push_back(1);
        r.push_back(2);
        assert_eq!(r.pop_front(), Some(1));
        r.push_back(3);
        r.push_back(4);
        r.push_back(5); // exceeds the hint of 2: forces growth mid-wrap
        assert!(r.capacity() >= 4);
        let drained: Vec<u32> = std::iter::from_fn(|| r.pop_front()).collect();
        assert_eq!(drained, vec![2, 3, 4, 5]);
    }

    #[test]
    fn indexed_access_and_truncate() {
        let mut r: Ring<u8> = Ring::with_capacity(4);
        for i in 0..4 {
            r.push_back(i);
        }
        r.pop_front();
        r.push_back(4); // wrapped
        assert_eq!(r.get(0), 1);
        assert_eq!(r.get(3), 4);
        r.set(1, 9);
        assert_eq!(r.get(1), 9);
        let all: Vec<u8> = r.iter().collect();
        assert_eq!(all, vec![1, 9, 3, 4]);
        r.truncate(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop_front(), Some(1));
        assert_eq!(r.pop_front(), Some(9));
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn clear_resets() {
        let mut r: Ring<u8> = Ring::with_capacity(2);
        r.push_back(1);
        r.clear();
        assert!(r.is_empty());
        r.push_back(7);
        assert_eq!(r.front(), Some(&7));
    }
}
