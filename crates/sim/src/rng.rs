//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the simulator (workload address streams,
//! dependency draws, bank selection, ...) flows through [`SimRng`], a
//! xoshiro256\*\* generator with SplitMix64 seeding. Keeping the generator
//! in-tree (rather than relying on `rand`'s default engines) pins the random
//! streams across toolchain and dependency upgrades, which is what makes the
//! experiment harness exactly reproducible from a seed.

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// The generator is seeded through SplitMix64 so that any `u64` (including
/// zero) produces a well-mixed initial state. It can be [split](SimRng::split)
/// into independent child generators, which the system driver uses to hand
/// each core its own stream without inter-component coupling.
///
/// # Examples
///
/// ```
/// use nocout_sim::rng::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed. Any seed value, including zero,
    /// yields a usable, well-distributed stream.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child generator. The child stream is decoupled
    /// from the parent's future output: each call consumes one value from
    /// the parent and seeds the child through SplitMix64 with distinct
    /// mixing.
    pub fn split(&mut self) -> SimRng {
        let seed = self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF;
        SimRng::new(seed)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free variant is unnecessary for
        // simulation purposes; 128-bit multiply-high gives a negligible and
        // uniform-enough bias for bounds far below 2^64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Geometric draw: number of failures before the first success of a
    /// Bernoulli(p) process. Returns 0 when `p >= 1`. Used for inter-arrival
    /// style sampling in the workload models.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-12);
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Selects an index in `[0, weights.len())` with probability
    /// proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= *w;
        }
        weights.len() - 1
    }
}

/// A Zipf-distributed sampler over ranks `0..n`.
///
/// Scale-out workloads re-reference a skewed subset of their instruction
/// footprint (hot request-handling paths); the workload models use this
/// sampler to produce that skew. Sampling uses the rejection-inversion
/// method's cheap cousin: a precomputed cumulative table, acceptable because
/// footprints are sampled at cache-line granularity over at most a few
/// hundred thousand ranks and tables are built once per run.
///
/// # Examples
///
/// ```
/// use nocout_sim::rng::{SimRng, Zipf};
///
/// let zipf = Zipf::new(1000, 0.8);
/// let mut rng = SimRng::new(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta` (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(theta);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the support is empty (never true: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SimRng::new(12345);
        let mut b = SimRng::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn split_is_independent() {
        let mut parent = SimRng::new(99);
        let mut child = parent.split();
        let child_vals: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        let parent_vals: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        assert_ne!(child_vals, parent_vals);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_rate_close_to_p() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.02)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.02).abs() < 0.004, "rate was {rate}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut rng = SimRng::new(5);
        let w = [0.01, 0.98, 0.01];
        let picks = (0..10_000)
            .filter(|_| rng.weighted_index(&w) == 1)
            .count();
        assert!(picks > 9_000);
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = SimRng::new(21);
        let p: f64 = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p;
        assert!((mean - expect).abs() < 0.15, "mean was {mean}, want {expect}");
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let zipf = Zipf::new(100, 0.99);
        let mut rng = SimRng::new(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 should be far hotter");
        assert_eq!(counts.iter().sum::<usize>(), 50_000);
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = SimRng::new(4);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0);
        }
    }
}
