//! Experiment configuration helpers.
//!
//! The harness describes every run with small serde-serializable structs so
//! a run can be archived next to its results. This module holds the pieces
//! shared by all experiments: the measurement window and the seed set.

use serde::{Deserialize, Serialize};

/// Warmup/measurement window for a simulation run.
///
/// Mirrors the paper's SimFlex-style methodology: run the detailed model for
/// a warmup period (100K cycles; 2M for Data Serving in the paper), then
/// measure over a fixed window (50K cycles in the paper). Our synthetic
/// workloads reach steady state quickly, so the defaults are of the same
/// order.
///
/// # Examples
///
/// ```
/// use nocout_sim::config::MeasurementWindow;
///
/// let w = MeasurementWindow::default();
/// assert!(w.measure_cycles > 0);
/// assert_eq!(w.total_cycles(), w.warmup_cycles + w.measure_cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementWindow {
    /// Cycles simulated before statistics are reset.
    pub warmup_cycles: u64,
    /// Cycles over which statistics are collected.
    pub measure_cycles: u64,
}

impl MeasurementWindow {
    /// Creates a window with explicit warmup and measurement lengths.
    pub fn new(warmup_cycles: u64, measure_cycles: u64) -> Self {
        MeasurementWindow {
            warmup_cycles,
            measure_cycles,
        }
    }

    /// A shortened window for unit/integration tests.
    pub fn fast() -> Self {
        MeasurementWindow::new(2_000, 10_000)
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }
}

impl Default for MeasurementWindow {
    /// Paper-like window: 100K warmup + 50K measurement cycles.
    fn default() -> Self {
        MeasurementWindow::new(100_000, 50_000)
    }
}

/// A set of seeds over which an experiment point is replicated.
///
/// # Examples
///
/// ```
/// use nocout_sim::config::SeedSet;
///
/// let seeds = SeedSet::consecutive(100, 3);
/// assert_eq!(seeds.iter().collect::<Vec<_>>(), vec![100, 101, 102]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedSet {
    seeds: Vec<u64>,
}

impl SeedSet {
    /// A single-seed set.
    pub fn single(seed: u64) -> Self {
        SeedSet { seeds: vec![seed] }
    }

    /// `count` consecutive seeds starting at `first`.
    pub fn consecutive(first: u64, count: usize) -> Self {
        SeedSet {
            seeds: (0..count as u64).map(|i| first + i).collect(),
        }
    }

    /// Number of seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Iterates over seed values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.seeds.iter().copied()
    }

    /// The first seed, or `None` for an empty set. Callers that require a
    /// non-empty set should surface `nocout::runner::EmptySeedSetError`
    /// rather than unwrapping.
    pub fn first(&self) -> Option<u64> {
        self.seeds.first().copied()
    }
}

impl<'a> IntoIterator for &'a SeedSet {
    type Item = u64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.seeds.iter().copied()
    }
}

impl FromIterator<u64> for SeedSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        SeedSet {
            seeds: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_window_is_paper_like() {
        let w = MeasurementWindow::default();
        assert_eq!(w.warmup_cycles, 100_000);
        assert_eq!(w.measure_cycles, 50_000);
        assert_eq!(w.total_cycles(), 150_000);
    }

    #[test]
    fn fast_window_is_short() {
        assert!(MeasurementWindow::fast().total_cycles() < 20_000);
    }

    #[test]
    fn seed_set_construction() {
        let s = SeedSet::single(9);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        let s: SeedSet = [1u64, 5, 9].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }
}
