//! Statistics primitives used across the simulator.
//!
//! The NoC, memory-system and core models record events through these types;
//! the experiment harness reads them back to produce the paper's tables and
//! figures. Everything is plain-old-data and cheap to update on the
//! simulation fast path.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds a single event.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Resets to zero (used at the warmup/measurement boundary).
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean/variance/min/max over `f64` samples (Welford's method).
///
/// Used for end-to-end packet latencies, queue depths, and the per-seed
/// aggregation in the harness.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the ~95% confidence interval of the mean, using the
    /// normal approximation (the paper reports 95% confidence with <4%
    /// error; the harness reports the same interval).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        *self = RunningStats::new();
    }

    /// Merges another accumulator into this one (parallel Welford update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` except bucket 0 which holds
/// zero/one. Used for latency distributions where tail shape matters (the
/// paper's serialization-latency argument in Fig. 9 shows up as tail
/// movement here).
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(1);
/// h.record(10);
/// h.record(1000);
/// assert_eq!(h.total(), 3);
/// assert!(h.percentile(0.5) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    total: u64,
    sum: u128,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; 64],
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: u64) {
        let idx = (64 - x.leading_zeros()) as usize;
        self.buckets[idx.min(63)] += 1;
        self.total += 1;
        self.sum += x as u128;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate percentile (`q` in `[0,1]`): upper bound of the bucket
    /// containing the q-quantile sample. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank.max(1) {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Iterates over `(bucket_upper_bound, count)` pairs for non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 1 } else { 1u64 << i }, c))
    }

    /// Resets the histogram.
    pub fn reset(&mut self) {
        *self = Log2Histogram::new();
    }
}

/// Tracks the utilization of a resource: the fraction of observed cycles in
/// which the resource was busy.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::Utilization;
///
/// let mut u = Utilization::new();
/// u.observe(true);
/// u.observe(false);
/// assert!((u.fraction() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Utilization {
    busy: u64,
    observed: u64,
}

impl Utilization {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Utilization::default()
    }

    /// Records one cycle of observation.
    #[inline]
    pub fn observe(&mut self, busy: bool) {
        self.observed += 1;
        if busy {
            self.busy += 1;
        }
    }

    /// Busy fraction in `[0,1]` (0 when nothing observed).
    pub fn fraction(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.busy as f64 / self.observed as f64
        }
    }

    /// Number of busy cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Number of observed cycles.
    pub fn observed_cycles(&self) -> u64 {
        self.observed
    }

    /// Resets the tracker.
    pub fn reset(&mut self) {
        *self = Utilization::default();
    }
}

/// Geometric mean of a slice of positive values, the aggregation the paper
/// uses for Fig. 7 and Fig. 9 ("GMean") and the one
/// `nocout::campaign::NormalizedFrame::geomean` relies on.
///
/// Edge cases (pinned by `geometric_mean_edge_cases`): an empty slice
/// yields 0; a single element yields itself; non-positive elements are
/// clamped to 1e-300 before the log — the result stays finite and
/// non-negative (collapsing toward 0) instead of going NaN, so a
/// degenerate normalization (a zero-IPC point) poisons a GMean visibly
/// but never propagates NaN into a table.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn running_stats_mean_variance() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Log2Histogram::new();
        for x in [0, 1, 2, 3, 4, 8, 16, 1024] {
            h.record(x);
        }
        assert_eq!(h.total(), 8);
        assert!((h.mean() - 1058.0 / 8.0).abs() < 1e-12);
        assert!(h.iter().count() > 3);
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = Log2Histogram::new();
        for x in 1..=1000u64 {
            h.record(x);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!((256..=1024).contains(&p50));
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        for i in 0..10 {
            u.observe(i % 4 == 0);
        }
        assert!((u.fraction() - 0.3).abs() < 1e-12);
        assert_eq!(u.busy_cycles(), 3);
        assert_eq!(u.observed_cycles(), 10);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_edge_cases() {
        // The contract ResultFrame's normalization helpers rely on:
        // empty slice → exactly 0 (not NaN).
        let empty = geometric_mean(&[]);
        assert_eq!(empty, 0.0);
        assert!(!empty.is_nan());
        // Single element → itself, bit-for-bit (ln/exp round-trip must
        // not wobble the figures' single-workload GMeans).
        for v in [1.0, 0.734, 42.5] {
            assert!((geometric_mean(&[v]) - v).abs() < 1e-12, "{v}");
        }
        // A zero element: clamped to 1e-300, so the mean collapses
        // toward zero but stays finite and non-negative — never NaN,
        // never negative, and strictly below every honest value.
        let g = geometric_mean(&[0.0, 2.0]);
        assert!(g.is_finite() && g >= 0.0, "{g}");
        assert!(g < 1e-100, "{g}");
        // Same guarantee for a negative outlier (clamped identically).
        let n = geometric_mean(&[-1.0, 2.0]);
        assert!(n.is_finite() && n >= 0.0, "{n}");
    }
}
