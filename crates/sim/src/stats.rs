//! Statistics primitives used across the simulator.
//!
//! The NoC, memory-system and core models record events through these types;
//! the experiment harness reads them back to produce the paper's tables and
//! figures. Everything is plain-old-data and cheap to update on the
//! simulation fast path.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds a single event.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Resets to zero (used at the warmup/measurement boundary).
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean/variance/min/max over `f64` samples (Welford's method).
///
/// Used for end-to-end packet latencies, queue depths, and the per-seed
/// aggregation in the harness.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the ~95% confidence interval of the mean, using the
    /// normal approximation (the paper reports 95% confidence with <4%
    /// error; the harness reports the same interval).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        *self = RunningStats::new();
    }

    /// Merges another accumulator into this one (parallel Welford update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` except bucket 0 which holds
/// zero/one. Used for latency distributions where tail shape matters (the
/// paper's serialization-latency argument in Fig. 9 shows up as tail
/// movement here).
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(1);
/// h.record(10);
/// h.record(1000);
/// assert_eq!(h.total(), 3);
/// assert!(h.percentile(0.5) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    total: u64,
    sum: u128,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; 64],
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: u64) {
        let idx = (64 - x.leading_zeros()) as usize;
        self.buckets[idx.min(63)] += 1;
        self.total += 1;
        self.sum += x as u128;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate percentile (`q` in `[0,1]`): upper bound of the bucket
    /// containing the q-quantile sample. Returns 0 when empty.
    ///
    /// # Error bound
    ///
    /// Buckets are whole powers of two, so the returned value can exceed
    /// the exact q-quantile sample by up to **2×** (the true sample may sit
    /// anywhere in `[2^(i-1), 2^i)` while this returns `2^i`). That is fine
    /// for order-of-magnitude tail shape but far too coarse for p99/p999
    /// reporting — new callers that publish percentiles should record into
    /// [`LatencyHist`] instead, whose log-linear buckets bound the relative
    /// error at 1/32 (~3%).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank.max(1) {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Iterates over `(bucket_upper_bound, count)` pairs for non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 1 } else { 1u64 << i }, c))
    }

    /// Resets the histogram.
    pub fn reset(&mut self) {
        *self = Log2Histogram::new();
    }
}

/// Number of linear sub-buckets per power-of-two major bucket in
/// [`LatencyHist`] (as a shift): 2^5 = 32 sub-buckets.
const SUB_BITS: usize = 5;
/// Sub-buckets per major bucket.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: values below `SUBS` get an exact bucket each, and
/// every wider power-of-two range `[2^m, 2^(m+1))` for `m in SUB_BITS..64`
/// is split into `SUBS` equal-width sub-buckets.
const LAT_BUCKETS: usize = SUBS * (64 - SUB_BITS + 1);

/// A fixed-capacity log-linear latency histogram: power-of-two major
/// buckets, each split into 32 linear sub-buckets.
///
/// This is the service-level companion to [`Log2Histogram`]: same
/// recording cost (a handful of ALU ops and one array increment, zero
/// steady-state allocation), but the relative quantile error is bounded
/// at **1/32 (~3%)** instead of 2×, tight enough to report p99/p999.
/// Values below 32 are recorded exactly. Histograms merge by bucket-wise
/// addition, so per-core/per-tile histograms compose into chip-wide
/// distributions without losing tail resolution.
///
/// [`percentile`](LatencyHist::percentile) returns the *upper bound* of
/// the bucket holding the q-quantile sample (rank `ceil(q·total)`,
/// minimum 1), so the result never under-reports the true quantile and
/// over-reports it by at most a factor of 33/32.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::LatencyHist;
///
/// let mut h = LatencyHist::new();
/// for x in 1..=1000u64 {
///     h.record(x);
/// }
/// let p99 = h.percentile(0.99);
/// assert!(p99 >= 990 && p99 <= 990 * 33 / 32);
/// ```
#[derive(Clone)]
pub struct LatencyHist {
    buckets: Box<[u64; LAT_BUCKETS]>,
    total: u64,
    sum: u128,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist::new()
    }
}

impl LatencyHist {
    /// Creates an empty histogram. This is the only allocation the
    /// histogram ever performs; `record`/`merge`/`reset` are in-place.
    pub fn new() -> Self {
        LatencyHist {
            buckets: Box::new([0; LAT_BUCKETS]),
            total: 0,
            sum: 0,
        }
    }

    /// Bucket index of `v`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v < SUBS as u64 {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros() as usize;
            let shift = msb - SUB_BITS;
            SUBS + (shift << SUB_BITS) + ((v >> shift) as usize & (SUBS - 1))
        }
    }

    /// Largest value that falls into bucket `i` (saturating at
    /// `u64::MAX` for the final bucket).
    fn bucket_upper(i: usize) -> u64 {
        if i < SUBS {
            i as u64
        } else {
            let m = (i - SUBS) >> SUB_BITS;
            let sub = (i - SUBS) & (SUBS - 1);
            let upper = (((SUBS + sub + 1) as u128) << m) - 1;
            upper.min(u64::MAX as u128) as u64
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate percentile (`q` in `[0,1]`): the upper bound of the
    /// bucket containing the sample of rank `ceil(q·total)` (minimum
    /// rank 1). Returns 0 when empty. Never below the exact quantile,
    /// above it by at most a factor of 33/32.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if b > 0 && seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Merges another histogram into this one: bucket-wise addition, so
    /// the result is exactly the histogram of the concatenated sample
    /// streams.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Iterates over `(bucket_upper_bound, count)` pairs for non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
    }

    /// Resets the histogram in place (no reallocation).
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.total = 0;
        self.sum = 0;
    }
}

impl fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHist")
            .field("total", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(0.5))
            .field("p99", &self.percentile(0.99))
            .field("p999", &self.percentile(0.999))
            .finish()
    }
}

/// Tracks the utilization of a resource: the fraction of observed cycles in
/// which the resource was busy.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::Utilization;
///
/// let mut u = Utilization::new();
/// u.observe(true);
/// u.observe(false);
/// assert!((u.fraction() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Utilization {
    busy: u64,
    observed: u64,
}

impl Utilization {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Utilization::default()
    }

    /// Records one cycle of observation.
    #[inline]
    pub fn observe(&mut self, busy: bool) {
        self.observed += 1;
        if busy {
            self.busy += 1;
        }
    }

    /// Busy fraction in `[0,1]` (0 when nothing observed).
    pub fn fraction(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.busy as f64 / self.observed as f64
        }
    }

    /// Number of busy cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Number of observed cycles.
    pub fn observed_cycles(&self) -> u64 {
        self.observed
    }

    /// Resets the tracker.
    pub fn reset(&mut self) {
        *self = Utilization::default();
    }
}

/// Geometric mean of a slice of positive values, the aggregation the paper
/// uses for Fig. 7 and Fig. 9 ("GMean") and the one
/// `nocout::campaign::NormalizedFrame::geomean` relies on.
///
/// Edge cases (pinned by `geometric_mean_edge_cases`): an empty slice
/// yields 0; a single element yields itself; non-positive elements are
/// clamped to 1e-300 before the log — the result stays finite and
/// non-negative (collapsing toward 0) instead of going NaN, so a
/// degenerate normalization (a zero-IPC point) poisons a GMean visibly
/// but never propagates NaN into a table.
///
/// # Examples
///
/// ```
/// use nocout_sim::stats::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn running_stats_mean_variance() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Log2Histogram::new();
        for x in [0, 1, 2, 3, 4, 8, 16, 1024] {
            h.record(x);
        }
        assert_eq!(h.total(), 8);
        assert!((h.mean() - 1058.0 / 8.0).abs() < 1e-12);
        assert!(h.iter().count() > 3);
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = Log2Histogram::new();
        for x in 1..=1000u64 {
            h.record(x);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!((256..=1024).contains(&p50));
    }

    #[test]
    fn latency_hist_small_values_are_exact() {
        let mut h = LatencyHist::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 32);
        // Every value below 32 has its own bucket: quantiles are exact.
        for v in 0..32u64 {
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(h.percentile(q), v, "q={q}");
        }
    }

    #[test]
    fn latency_hist_percentile_brackets_exact_quantile() {
        let mut h = LatencyHist::new();
        let samples: Vec<u64> = (0..5000u64).map(|i| i * i % 1_000_003).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let approx = h.percentile(q);
            assert!(approx >= exact, "q={q}: {approx} < {exact}");
            assert!(
                approx as f64 <= exact as f64 * 33.0 / 32.0,
                "q={q}: {approx} too far above {exact}"
            );
        }
    }

    #[test]
    fn latency_hist_merge_is_concat() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut whole = LatencyHist::new();
        for v in 0..2000u64 {
            let x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.25, 0.5, 0.99, 0.999] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn latency_hist_reset_and_extremes() {
        let mut h = LatencyHist::new();
        assert_eq!(h.percentile(0.5), 0);
        h.record(u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentile(0.999), 0);
        // Bucket boundaries round-trip: the upper bound of the bucket a
        // value lands in is never below the value.
        for v in [31, 32, 33, 63, 64, 65, 1 << 20, (1 << 40) + 12345] {
            h.record(v);
            assert!(h.percentile(1.0) >= v);
            h.reset();
        }
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        for i in 0..10 {
            u.observe(i % 4 == 0);
        }
        assert!((u.fraction() - 0.3).abs() < 1e-12);
        assert_eq!(u.busy_cycles(), 3);
        assert_eq!(u.observed_cycles(), 10);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_edge_cases() {
        // The contract ResultFrame's normalization helpers rely on:
        // empty slice → exactly 0 (not NaN).
        let empty = geometric_mean(&[]);
        assert_eq!(empty, 0.0);
        assert!(!empty.is_nan());
        // Single element → itself, bit-for-bit (ln/exp round-trip must
        // not wobble the figures' single-workload GMeans).
        for v in [1.0, 0.734, 42.5] {
            assert!((geometric_mean(&[v]) - v).abs() < 1e-12, "{v}");
        }
        // A zero element: clamped to 1e-300, so the mean collapses
        // toward zero but stays finite and non-negative — never NaN,
        // never negative, and strictly below every honest value.
        let g = geometric_mean(&[0.0, 2.0]);
        assert!(g.is_finite() && g >= 0.0, "{g}");
        assert!(g < 1e-100, "{g}");
        // Same guarantee for a negative outlier (clamped identically).
        let n = geometric_mean(&[-1.0, 2.0]);
        assert!(n.is_finite() && n >= 0.0, "{n}");
    }
}
