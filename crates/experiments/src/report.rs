//! Run-point helpers shared by the experiment binaries.

use nocout::prelude::*;
use nocout_sim::config::{MeasurementWindow, SeedSet};

/// A [`Campaign`] pre-configured with the binaries' standard measurement
/// window and seed set (both honouring `NOCOUT_FAST=1`). Every
/// figure/sweep binary starts here, declares its axes, and runs the grid
/// through the shared `--jobs`/`--cache` runner:
///
/// ```no_run
/// use nocout::prelude::*;
/// use nocout::runner::BatchRunner;
/// use nocout_experiments::campaign;
///
/// let frame = campaign()
///     .orgs(Organization::EVALUATED)
///     .workloads(Workload::ALL)
///     .run(&BatchRunner::from_env());
/// let norm = frame.normalize_to(Organization::Mesh);
/// println!("NOC-Out gmean: {:.3}", norm.geomean(Organization::NocOut));
/// ```
pub fn campaign() -> Campaign {
    Campaign::new().window(measurement_window()).seeds(&seeds())
}

/// The measurement window the binaries use: paper-like by default,
/// shortened when `NOCOUT_FAST=1` is set (CI smoke runs).
pub fn measurement_window() -> MeasurementWindow {
    if std::env::var("NOCOUT_FAST").as_deref() == Ok("1") {
        MeasurementWindow::new(4_000, 8_000)
    } else {
        MeasurementWindow::new(30_000, 30_000)
    }
}

/// Seeds per experiment point (fewer in fast mode).
pub fn seeds() -> SeedSet {
    if std::env::var("NOCOUT_FAST").as_deref() == Ok("1") {
        SeedSet::single(1)
    } else {
        SeedSet::consecutive(1, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocout::runner::BatchRunner;

    #[test]
    fn window_respects_fast_env() {
        // Can't mutate the environment safely in parallel tests; just check
        // the default shape.
        let w = measurement_window();
        assert!(w.measure_cycles >= 8_000);
    }

    #[test]
    fn campaign_helper_runs_a_point() {
        std::env::set_var("NOCOUT_FAST", "1");
        let frame = campaign()
            .fixed(ChipConfig::with_cores(Organization::Mesh, 16))
            .workloads([Workload::MapReduceC])
            .run(&BatchRunner::serial());
        assert!(frame.results()[0].ipc > 0.0);
        std::env::remove_var("NOCOUT_FAST");
    }
}
