//! Run-point helpers shared by the experiment binaries.

use nocout::prelude::*;
use nocout::runner::BatchRunner;
use nocout_sim::config::{MeasurementWindow, SeedSet};
use nocout_sim::stats::RunningStats;

/// The measurement window the binaries use: paper-like by default,
/// shortened when `NOCOUT_FAST=1` is set (CI smoke runs).
pub fn measurement_window() -> MeasurementWindow {
    if std::env::var("NOCOUT_FAST").as_deref() == Ok("1") {
        MeasurementWindow::new(4_000, 8_000)
    } else {
        MeasurementWindow::new(30_000, 30_000)
    }
}

/// Seeds per experiment point (fewer in fast mode).
pub fn seeds() -> SeedSet {
    if std::env::var("NOCOUT_FAST").as_deref() == Ok("1") {
        SeedSet::single(1)
    } else {
        SeedSet::consecutive(1, 3)
    }
}

/// One measured performance point.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Mean aggregate IPC across seeds.
    pub ipc: f64,
    /// 95% confidence half-width.
    pub ci95: f64,
    /// Full metrics of the last seed (activity, latencies, LLC stats).
    pub metrics: SystemMetrics,
}

/// Runs `workload` (a synthetic [`Workload`] or any [`WorkloadClass`])
/// on `chip` over the standard window and seed set.
pub fn perf_point(chip: ChipConfig, workload: impl Into<WorkloadClass>) -> PerfPoint {
    let spec = RunSpec {
        chip,
        workload: workload.into(),
        window: measurement_window(),
        seed: 1,
    };
    let r = nocout::run_replicated(&spec, &seeds());
    PerfPoint {
        ipc: r.mean_ipc,
        ci95: r.ci95,
        metrics: r.last,
    }
}

/// Runs every `(chip, workload)` point over the standard window and seed
/// set on `runner`'s worker pool, returning results keyed by point index.
///
/// The whole point × seed grid is flattened into one batch, so a
/// multi-point figure parallelizes across *all* its runs, not just the
/// seeds of one point. Per point the replication statistics accumulate in
/// seed order — results are bit-identical to calling [`perf_point`] in a
/// loop, at any worker count.
pub fn perf_points<W>(runner: &BatchRunner, points: &[(ChipConfig, W)]) -> Vec<PerfPoint>
where
    W: Clone + Into<WorkloadClass>,
{
    let window = measurement_window();
    let seed_set = seeds();
    let mut per_point = Vec::with_capacity(points.len());
    let mut specs = Vec::new();
    for (chip, workload) in points {
        let workload: WorkloadClass = workload.clone().into();
        // Seed-insensitive points (trace replay) collapse to one run —
        // the same rule `run_replicated` applies (see
        // `nocout::runner::replication_seeds`).
        let runs = if workload.is_seed_sensitive() {
            seed_set.len()
        } else {
            1
        };
        per_point.push(runs);
        specs.extend(seed_set.iter().take(runs).map(|seed| RunSpec {
            chip: *chip,
            workload: workload.clone(),
            window,
            seed,
        }));
    }
    let all = runner.run_batch(&specs);
    let mut off = 0;
    per_point
        .into_iter()
        .map(|runs| {
            let per_seed = &all[off..off + runs];
            off += runs;
            let mut stats = RunningStats::new();
            for m in per_seed {
                stats.record(m.aggregate_ipc());
            }
            PerfPoint {
                ipc: stats.mean(),
                ci95: stats.ci95_half_width(),
                metrics: per_seed.last().expect("non-empty seed set").clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_respects_fast_env() {
        // Can't mutate the environment safely in parallel tests; just check
        // the default shape.
        let w = measurement_window();
        assert!(w.measure_cycles >= 8_000);
    }

    #[test]
    fn perf_point_runs() {
        std::env::set_var("NOCOUT_FAST", "1");
        let p = perf_point(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::MapReduceC,
        );
        assert!(p.ipc > 0.0);
        std::env::remove_var("NOCOUT_FAST");
    }
}
