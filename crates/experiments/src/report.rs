//! Run-point helpers shared by the experiment binaries.

use nocout::prelude::*;
use nocout_sim::config::{MeasurementWindow, SeedSet};

/// The measurement window the binaries use: paper-like by default,
/// shortened when `NOCOUT_FAST=1` is set (CI smoke runs).
pub fn measurement_window() -> MeasurementWindow {
    if std::env::var("NOCOUT_FAST").as_deref() == Ok("1") {
        MeasurementWindow::new(4_000, 8_000)
    } else {
        MeasurementWindow::new(30_000, 30_000)
    }
}

/// Seeds per experiment point (fewer in fast mode).
pub fn seeds() -> SeedSet {
    if std::env::var("NOCOUT_FAST").as_deref() == Ok("1") {
        SeedSet::single(1)
    } else {
        SeedSet::consecutive(1, 3)
    }
}

/// One measured performance point.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Mean aggregate IPC across seeds.
    pub ipc: f64,
    /// 95% confidence half-width.
    pub ci95: f64,
    /// Full metrics of the last seed (activity, latencies, LLC stats).
    pub metrics: SystemMetrics,
}

/// Runs `workload` on `chip` over the standard window and seed set.
pub fn perf_point(chip: ChipConfig, workload: Workload) -> PerfPoint {
    let spec = RunSpec {
        chip,
        workload,
        window: measurement_window(),
        seed: 1,
    };
    let r = nocout::run_replicated(&spec, &seeds());
    PerfPoint {
        ipc: r.mean_ipc,
        ci95: r.ci95,
        metrics: r.last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_respects_fast_env() {
        // Can't mutate the environment safely in parallel tests; just check
        // the default shape.
        let w = measurement_window();
        assert!(w.measure_cycles >= 8_000);
    }

    #[test]
    fn perf_point_runs() {
        std::env::set_var("NOCOUT_FAST", "1");
        let p = perf_point(
            ChipConfig::with_cores(Organization::Mesh, 16),
            Workload::MapReduceC,
        );
        assert!(p.ipc > 0.0);
        std::env::remove_var("NOCOUT_FAST");
    }
}
