//! Aligned text tables and CSV output for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table with a title, printed to stdout by the
/// experiment binaries.
///
/// # Examples
///
/// ```
/// use nocout_experiments::table::Table;
///
/// let mut t = Table::new("Demo", vec!["Workload".into(), "Speedup".into()]);
/// t.row(vec!["Web Search".into(), "1.07".into()]);
/// let s = t.render();
/// assert!(s.contains("Web Search"));
/// assert!(s.contains("Speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: Vec<String>) -> Self {
        Table {
            title: title.to_string(),
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for i in 0..cols {
                let _ = write!(s, "{:<width$}", cells[i], width = widths[i] + 2);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table contents as CSV records (header first).
    pub fn csv_records(&self) -> Vec<Vec<String>> {
        let mut records = vec![self.header.clone()];
        records.extend(self.rows.iter().cloned());
        records
    }
}

/// The output-directory convention: every artifact an experiment binary
/// generates (CSV tables, captured traces, comparison files) lands under
/// `out/` at the invocation directory, which is gitignored. Creates the
/// directory on first use and returns `out/<name>`.
pub fn out_path(name: &str) -> std::path::PathBuf {
    let dir = Path::new("out");
    let _ = std::fs::create_dir_all(dir);
    dir.join(name)
}

/// Writes `records` to `out/<name>` per the output-directory convention
/// and reports the outcome: the success line names the path actually
/// written; a failure goes to stderr instead of pretending the artifact
/// exists.
pub fn report_csv(name: &str, records: &[Vec<String>]) {
    let path = out_path(name);
    match write_csv(&path, records) {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Writes records as a CSV file. Escaping happens in exactly one place
/// for the whole workspace — [`nocout::campaign::csv_render`] (RFC 4180:
/// fields containing commas, quotes or line breaks are double-quoted,
/// embedded quotes doubled) — shared with `ResultFrame::to_csv`.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_csv(path: &Path, records: &[Vec<String>]) -> io::Result<()> {
    std::fs::write(path, nocout::campaign::csv_render(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new("T", vec!["A".into(), "Longer".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("A"));
        assert!(lines[1].contains("Longer"));
        assert!(lines[3].starts_with("xxxxxx"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("T", vec!["A".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escaping() {
        let dir = std::env::temp_dir().join("nocout_csv_test.csv");
        write_csv(
            &dir,
            &[
                vec!["a,b".into(), "c\"d\"".into()],
                vec!["1".into(), "new\nline".into()],
            ],
        )
        .unwrap();
        let s = std::fs::read_to_string(&dir).unwrap();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"c\"\"d\"\"\""));
        assert!(s.contains("\"new\nline\""));
        let _ = std::fs::remove_file(dir);
    }
}
