//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation and prints it as an aligned text table (optionally
//! CSV). This library holds the pieces they share: command-line parsing
//! ([`cli`], including the `--jobs N` worker-pool and `--cache DIR`
//! flags every binary accepts), the standard [`campaign`] starting point
//! (a `nocout::campaign::Campaign` pre-configured with the measurement
//! window and seed set, honouring `NOCOUT_FAST=1` for quick smoke runs),
//! table rendering, and the `out/` artifact convention. The simulating
//! binaries are each a short campaign declaration — axes in, a
//! coordinate-queryable `ResultFrame` out — instead of hand-rolled point
//! vectors and flat-index arithmetic; see `docs/campaign-api.md`.

pub mod cli;
pub mod figures;
pub mod report;
pub mod table;

pub use cli::Cli;
pub use figures::{fig7_campaign, fig7_table};
pub use report::{campaign, measurement_window, seeds};
pub use table::{out_path, report_csv, write_csv, Table};
