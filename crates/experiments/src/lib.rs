//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation and prints it as an aligned text table (optionally
//! CSV). This library holds the pieces they share: command-line parsing
//! ([`cli`], including the `--jobs N` worker-pool flag every binary
//! accepts), run-point helpers (serial [`perf_point`] and the batched
//! [`perf_points`] that fans a figure's whole point × seed grid across a
//! `nocout::runner::BatchRunner`), normalization, table rendering, and
//! the measurement window handling (honouring `NOCOUT_FAST=1` for quick
//! smoke runs).

pub mod cli;
pub mod report;
pub mod table;

pub use cli::Cli;
pub use report::{measurement_window, perf_point, perf_points, seeds, PerfPoint};
pub use table::{out_path, report_csv, write_csv, Table};
