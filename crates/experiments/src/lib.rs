//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation and prints it as an aligned text table (optionally
//! CSV). This library holds the pieces they share: run-point helpers,
//! normalization, table rendering, and the measurement window handling
//! (honouring `NOCOUT_FAST=1` for quick smoke runs).

pub mod report;
pub mod table;

pub use report::{measurement_window, perf_point, seeds, PerfPoint};
pub use table::{write_csv, Table};
