//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary accepts `--jobs N` (parallel simulation workers; `0` or
//! unset means all hardware threads, with the `NOCOUT_JOBS` environment
//! variable as the default), `--cache DIR` (memoize simulation points on
//! disk keyed by their `RunSpec` content hash — a re-run sharing points
//! with an earlier campaign only simulates the new ones; see
//! `nocout::cache` for the key and invalidation rules) and `--help`,
//! which prints the usage line followed by the binary's `about` text —
//! every binary describes the grid it runs there, so `--help` is never
//! just the shared flag list. Binary-specific flags are consumed through
//! [`Cli::next_flag`]/[`Cli::value`]/[`Cli::parsed`], which — unlike the
//! hand-rolled loops these replaced — name the offending flag and value
//! in every error instead of silently printing the generic usage line.
//!
//! ```no_run
//! use nocout_experiments::cli::Cli;
//!
//! let mut cli = Cli::parse(
//!     "sweep",
//!     "Sweeps link width over every organization.",
//!     "[--workload NAME]",
//! );
//! let mut workload = String::from("mapreduce-w");
//! while let Some(flag) = cli.next_flag() {
//!     match flag.as_str() {
//!         "--workload" => workload = cli.value(&flag),
//!         _ => cli.unknown(&flag),
//!     }
//! }
//! let runner = cli.runner();
//! ```

use nocout::cache::ResultsCache;
use nocout::runner::BatchRunner;
use nocout_workloads::trace::TraceSet;
use nocout_workloads::{OpenLoopSpec, Workload, WorkloadClass};
use std::collections::VecDeque;
use std::path::PathBuf;

/// Parsed common flags plus the binary-specific remainder.
#[derive(Debug)]
pub struct Cli {
    bin: String,
    about: String,
    usage_tail: String,
    /// Explicit `--jobs` value; `None` defers to `BatchRunner::from_env`.
    jobs: Option<usize>,
    /// Results-cache directory from `--cache`.
    cache_dir: Option<PathBuf>,
    rest: VecDeque<String>,
}

impl Cli {
    /// Parses `std::env::args()`: extracts `--jobs`/`--help`, keeps every
    /// other token (in order) for the binary to consume. `about` is the
    /// one-paragraph description of what the binary runs (its grid, its
    /// output), printed under the usage line by `--help`.
    pub fn parse(bin: &str, about: &str, usage_tail: &str) -> Cli {
        Cli::parse_from(bin, about, usage_tail, std::env::args().skip(1).collect())
    }

    /// Like [`Cli::parse`] but over an explicit token list (tests).
    pub fn parse_from(bin: &str, about: &str, usage_tail: &str, tokens: Vec<String>) -> Cli {
        let mut cli = Cli {
            bin: bin.to_string(),
            about: about.to_string(),
            usage_tail: usage_tail.to_string(),
            jobs: None,
            cache_dir: None,
            rest: VecDeque::new(),
        };
        let mut it = tokens.into_iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--jobs" | "-j" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| cli.fail(&format!("missing value for `{tok}`")));
                    cli.jobs = Some(v.parse().unwrap_or_else(|_| {
                        cli.fail(&format!("invalid value for `{tok}`: `{v}` (expected a count)"))
                    }));
                }
                "--cache" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| cli.fail(&format!("missing value for `{tok}`")));
                    cli.cache_dir = Some(PathBuf::from(v));
                }
                "--help" | "-h" => {
                    println!("{}", cli.usage_line());
                    if !cli.about.is_empty() {
                        println!("\n{}", cli.about);
                    }
                    println!(
                        "\ncommon flags:\n  --jobs N     parallel simulation workers \
                         (0/unset: all hardware threads; NOCOUT_JOBS)\n  --cache DIR  \
                         memoize simulation points on disk, keyed by RunSpec content hash"
                    );
                    std::process::exit(0);
                }
                _ => cli.rest.push_back(tok),
            }
        }
        cli
    }

    fn usage_line(&self) -> String {
        let tail = if self.usage_tail.is_empty() {
            String::new()
        } else {
            format!(" {}", self.usage_tail)
        };
        format!("usage: {} [--jobs N] [--cache DIR]{tail}", self.bin)
    }

    /// Prints an error naming the offending input, then the usage line,
    /// and exits with status 2.
    pub fn fail(&self, msg: &str) -> ! {
        eprintln!("{}: error: {msg}", self.bin);
        eprintln!("{}", self.usage_line());
        std::process::exit(2)
    }

    /// Rejects an unrecognized flag (with its name in the message).
    pub fn unknown(&self, flag: &str) -> ! {
        self.fail(&format!("unknown flag `{flag}`"))
    }

    /// The worker pool sized from `--jobs`, falling back to the
    /// `NOCOUT_JOBS` environment variable (and then all hardware
    /// threads), with the `--cache` results cache attached when given.
    pub fn runner(&self) -> BatchRunner {
        let runner = match self.jobs {
            Some(jobs) => BatchRunner::new(jobs),
            None => BatchRunner::from_env(),
        };
        match &self.cache_dir {
            Some(dir) => match ResultsCache::open(dir.clone()) {
                Ok(cache) => runner.with_cache(cache),
                Err(e) => self.fail(&format!(
                    "cannot open results cache `{}`: {e}",
                    dir.display()
                )),
            },
            None => runner,
        }
    }

    /// Next unconsumed token, if any.
    pub fn next_flag(&mut self) -> Option<String> {
        self.rest.pop_front()
    }

    /// The value following `flag`; errors (naming `flag`) if missing.
    pub fn value(&mut self, flag: &str) -> String {
        self.rest
            .pop_front()
            .unwrap_or_else(|| self.fail(&format!("missing value for `{flag}`")))
    }

    /// Parses the value following `flag`; errors name the flag and the
    /// offending value.
    pub fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let v = self.value(flag);
        v.parse().unwrap_or_else(|_| {
            self.fail(&format!("invalid value for `{flag}`: `{v}`"))
        })
    }

    /// Parses the value following `flag` as a synthetic workload name.
    /// The error deliberately does *not* offer `trace:PATH`: flags using
    /// this method (e.g. the capture binary's choice of which profile to
    /// record) only accept synthetic profiles.
    pub fn workload(&mut self, flag: &str) -> Workload {
        let v = self.value(flag);
        parse_workload(&v).unwrap_or_else(|| {
            self.fail(&format!(
                "invalid value for `{flag}`: `{v}` (expected a synthetic profile: {})",
                workload_names().join("|")
            ))
        })
    }

    /// Parses the value following `flag` as a workload class: a synthetic
    /// profile name or `trace:PATH` naming a captured trace directory.
    pub fn workload_class(&mut self, flag: &str) -> WorkloadClass {
        let v = self.value(flag);
        parse_workload_class(&v)
            .unwrap_or_else(|e| self.fail(&format!("invalid value for `{flag}`: {e}")))
    }

    /// Errors if any token is left unconsumed (call after the flag loop
    /// in binaries without positional arguments).
    pub fn finish(mut self) {
        if let Some(tok) = self.rest.pop_front() {
            self.unknown(&tok);
        }
    }
}

/// The deterministic fault-injection flags shared by `nocout-worker`
/// (which applies them) and `shard-run` (which forwards them to the
/// first worker it spawns). Keeping the flag names and the
/// [`FaultPlan`](nocout::distribute::FaultPlan) mapping in one place
/// means the chaos CI gate and the integration tests cannot drift from
/// the binaries.
#[derive(Debug, Default, Clone, Copy)]
pub struct FaultArgs {
    /// `--fault-drop-after N`: drop the connection instead of sending
    /// the N-th result frame.
    pub drop_after: Option<u64>,
    /// `--fault-delay-ms N`: sleep N ms before every result frame.
    pub delay_ms: Option<u64>,
    /// `--fault-corrupt-frame N`: corrupt the N-th result frame's
    /// payload after its digest is computed.
    pub corrupt_frame: Option<u64>,
    /// `--fault-panic-point K`: panic while executing the K-th point.
    pub panic_point: Option<u64>,
    /// `--fault-drop-after-chunks N`: drop the connection after durably
    /// staging the N-th received trace chunk (models a worker crash
    /// mid-transfer; the staged partial survives for the resumed ship).
    pub drop_after_chunks: Option<u64>,
}

impl FaultArgs {
    /// The usage fragment for binaries accepting these flags.
    pub const USAGE: &'static str = "[--fault-drop-after N] [--fault-delay-ms N] \
[--fault-corrupt-frame N] [--fault-panic-point K] [--fault-drop-after-chunks N]";

    /// Consumes `flag` (and its value from `cli`) if it is a fault flag;
    /// returns whether it was.
    pub fn accept(&mut self, flag: &str, cli: &mut Cli) -> bool {
        match flag {
            "--fault-drop-after" => self.drop_after = Some(cli.parsed(flag)),
            "--fault-delay-ms" => self.delay_ms = Some(cli.parsed(flag)),
            "--fault-corrupt-frame" => self.corrupt_frame = Some(cli.parsed(flag)),
            "--fault-panic-point" => self.panic_point = Some(cli.parsed(flag)),
            "--fault-drop-after-chunks" => self.drop_after_chunks = Some(cli.parsed(flag)),
            _ => return false,
        }
        true
    }

    /// The equivalent [`FaultPlan`](nocout::distribute::FaultPlan).
    pub fn plan(&self) -> nocout::distribute::FaultPlan {
        nocout::distribute::FaultPlan {
            drop_after_frames: self.drop_after,
            delay: self.delay_ms.map(std::time::Duration::from_millis),
            corrupt_frame: self.corrupt_frame,
            panic_on_point: self.panic_point,
            drop_after_chunks: self.drop_after_chunks,
        }
    }

    /// Re-serializes the flags for forwarding to a worker process.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = Vec::new();
        let mut push = |flag: &str, v: Option<u64>| {
            if let Some(v) = v {
                args.push(flag.to_string());
                args.push(v.to_string());
            }
        };
        push("--fault-drop-after", self.drop_after);
        push("--fault-delay-ms", self.delay_ms);
        push("--fault-corrupt-frame", self.corrupt_frame);
        push("--fault-panic-point", self.panic_point);
        push("--fault-drop-after-chunks", self.drop_after_chunks);
        args
    }
}

/// The forms a workload-class value can take, for error messages: every
/// synthetic profile name, plus the `trace:PATH` replay form.
pub fn workload_forms() -> String {
    format!(
        "{}, trace:PATH, or openloop:WORKLOAD:INTERVAL:SERVICE",
        workload_names().join("|")
    )
}

/// Parses a workload-class CLI value: a synthetic profile name
/// (`web-search`, ...) or `trace:PATH`, where PATH is a trace directory
/// captured by the `trace` binary (or
/// `nocout::capture_synthetic_trace`). Loading the trace validates every
/// stream up front, so a bad capture fails here with the file named
/// rather than mid-simulation.
pub fn parse_workload_class(value: &str) -> Result<WorkloadClass, String> {
    if let Some(path) = value.strip_prefix("trace:") {
        if path.is_empty() {
            return Err(format!(
                "`trace:` needs a directory (expected one of {})",
                workload_forms()
            ));
        }
        return TraceSet::load(path)
            .map(WorkloadClass::from)
            .map_err(|e| format!("cannot load trace `{path}`: {e}"));
    }
    if value.starts_with("openloop:") {
        return parse_openloop(value).map(WorkloadClass::from);
    }
    parse_workload(value)
        .map(WorkloadClass::from)
        .ok_or_else(|| {
            format!(
                "`{value}` is not a workload (expected one of {})",
                workload_forms()
            )
        })
}

/// Parses the `openloop:WORKLOAD:INTERVAL:SERVICE` form. WORKLOAD is a
/// synthetic profile in either CLI (`data-serving`) or canonical
/// (`DataServing`) spelling; INTERVAL is the per-core request
/// inter-arrival time in cycles; SERVICE is the instructions per
/// request. Both numbers must be positive.
fn parse_openloop(value: &str) -> Result<OpenLoopSpec, String> {
    let bad = || {
        format!(
            "`{value}` is not an open-loop workload \
             (expected openloop:WORKLOAD:INTERVAL:SERVICE, e.g. \
             openloop:data-serving:200:64)"
        )
    };
    let rest = value.strip_prefix("openloop:").unwrap_or(value);
    let mut parts = rest.split(':');
    let name = parts.next().ok_or_else(bad)?;
    let workload = parse_workload(name)
        .or_else(|| Workload::from_key(name))
        .ok_or_else(|| {
            format!(
                "`{name}` is not a workload in `{value}` (expected one of {})",
                workload_names().join("|")
            )
        })?;
    let interval: u64 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let service_instrs: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    if parts.next().is_some() || interval == 0 || service_instrs == 0 {
        return Err(bad());
    }
    Ok(OpenLoopSpec {
        workload,
        interval,
        service_instrs,
    })
}

/// Parses a workload CLI name (`data-serving`, `web-search`, ...).
pub fn parse_workload(name: &str) -> Option<Workload> {
    Some(match name {
        "data-serving" => Workload::DataServing,
        "mapreduce-c" => Workload::MapReduceC,
        "mapreduce-w" => Workload::MapReduceW,
        "sat-solver" => Workload::SatSolver,
        "web-frontend" => Workload::WebFrontend,
        "web-search" => Workload::WebSearch,
        _ => return None,
    })
}

/// The CLI names accepted by [`parse_workload`].
pub fn workload_names() -> Vec<&'static str> {
    vec![
        "data-serving",
        "mapreduce-c",
        "mapreduce-w",
        "sat-solver",
        "web-frontend",
        "web-search",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(tokens: &[&str]) -> Cli {
        Cli::parse_from(
            "test-bin",
            "A test binary.",
            "",
            tokens.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn jobs_flag_sets_pool_width() {
        let c = cli(&["--jobs", "3"]);
        assert_eq!(c.runner().jobs(), 3);
    }

    #[test]
    fn zero_jobs_means_all_threads() {
        let c = cli(&["--jobs", "0"]);
        assert!(c.runner().jobs() >= 1);
    }

    #[test]
    fn leftover_tokens_preserved_in_order() {
        let mut c = cli(&["--org", "mesh", "--jobs", "2", "--cores", "16"]);
        assert_eq!(c.next_flag().as_deref(), Some("--org"));
        assert_eq!(c.value("--org"), "mesh");
        assert_eq!(c.next_flag().as_deref(), Some("--cores"));
        assert_eq!(c.parsed::<usize>("--cores"), 16);
        assert!(c.next_flag().is_none());
    }

    #[test]
    fn cache_flag_attaches_results_cache() {
        let dir = std::env::temp_dir().join(format!(
            "nocout-cli-cache-test-{}",
            std::process::id()
        ));
        let c = cli(&["--cache", dir.to_str().unwrap(), "--jobs", "1"]);
        let runner = c.runner();
        assert_eq!(runner.cache().unwrap().dir(), dir.as_path());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_flag_means_no_cache() {
        assert!(cli(&["--jobs", "1"]).runner().cache().is_none());
    }

    #[test]
    fn workload_names_round_trip() {
        for name in workload_names() {
            assert!(parse_workload(name).is_some(), "{name}");
        }
        assert!(parse_workload("nope").is_none());
    }

    #[test]
    fn workload_class_parses_synthetic_names() {
        for name in workload_names() {
            let class = parse_workload_class(name).expect(name);
            assert!(matches!(class, WorkloadClass::Synthetic(_)), "{name}");
        }
    }

    #[test]
    fn invalid_workload_error_names_the_trace_form() {
        // The satellite contract: a bad workload-class value must tell
        // the user about every accepted form, including `trace:PATH`
        // (`Cli::workload_class` prefixes this with the flag name).
        let class_err = parse_workload_class("nope").unwrap_err();
        assert_eq!(
            class_err,
            "`nope` is not a workload (expected one of \
             data-serving|mapreduce-c|mapreduce-w|sat-solver|web-frontend|web-search, \
             trace:PATH, or openloop:WORKLOAD:INTERVAL:SERVICE)"
        );
    }

    #[test]
    fn workload_class_parses_openloop_form() {
        for value in ["openloop:data-serving:200:64", "openloop:DataServing:200:64"] {
            let class = parse_workload_class(value).expect(value);
            match class {
                WorkloadClass::OpenLoop(s) => {
                    assert_eq!(s.workload, Workload::DataServing);
                    assert_eq!(s.interval, 200);
                    assert_eq!(s.service_instrs, 64);
                }
                other => panic!("{value} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn bad_openloop_values_are_rejected_with_the_form() {
        for value in [
            "openloop:data-serving",
            "openloop:data-serving:0:64",
            "openloop:data-serving:200:0",
            "openloop:data-serving:200:64:extra",
            "openloop:data-serving:many:64",
        ] {
            let err = parse_workload_class(value).unwrap_err();
            assert!(err.contains("openloop:WORKLOAD:INTERVAL:SERVICE"), "{value}: {err}");
        }
        let err = parse_workload_class("openloop:nope:200:64").unwrap_err();
        assert!(err.contains("`nope` is not a workload"), "{err}");
    }

    #[test]
    fn bare_trace_prefix_is_rejected_with_guidance() {
        let err = parse_workload_class("trace:").unwrap_err();
        assert!(err.contains("needs a directory"), "{err}");
        assert!(err.contains("trace:PATH"), "{err}");
    }

    #[test]
    fn missing_trace_directory_is_named_in_the_error() {
        let err = parse_workload_class("trace:/no/such/dir-12345").unwrap_err();
        assert!(err.contains("/no/such/dir-12345"), "{err}");
    }
}
