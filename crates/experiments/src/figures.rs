//! Figure definitions shared between execution paths.
//!
//! The Figure 7 grid and table used to live inside the `fig7` binary;
//! the sharded execution path (`shard-run`) must produce a CSV that is
//! *byte-identical* to `fig7`'s, so both binaries now build their
//! campaign and table here. Any drift between the local and distributed
//! renderings of the figure becomes impossible by construction (and the
//! CI sharded-execution gate `cmp`s the outputs anyway).

use crate::report::campaign;
use crate::table::Table;
use nocout::campaign::ResultFrame;
use nocout::prelude::*;
use nocout_workloads::trace::TraceSet;
use nocout_workloads::WorkloadClass;
use std::sync::Arc;

/// Paper Figure 7 speedups for the flattened butterfly, per workload in
/// [`Workload::ALL`] order.
pub const FIG7_PAPER_FBFLY: [f64; 6] = [1.31, 1.15, 1.20, 1.12, 1.16, 1.07];
/// Paper Figure 7 speedups for NOC-Out, per workload in
/// [`Workload::ALL`] order.
pub const FIG7_PAPER_NOCOUT: [f64; 6] = [1.27, 1.15, 1.21, 1.12, 1.16, 1.12];

/// The Figure 7 campaign: the 3 evaluated organizations × 6 workloads at
/// 128-bit links, on the standard window/seed set (honours
/// `NOCOUT_FAST=1`).
pub fn fig7_campaign() -> Campaign {
    campaign().orgs(Organization::EVALUATED).workloads(Workload::ALL)
}

/// Renders a [`fig7_campaign`] result frame as the Figure 7 table —
/// normalized per workload to the mesh, with the paper's numbers
/// alongside. Every execution path (local `fig7`, sharded `shard-run`)
/// renders through this one function, so their CSVs cannot drift.
///
/// # Panics
///
/// Panics (naming the point and its failure) if the frame is missing a
/// grid point.
pub fn fig7_table(frame: &ResultFrame) -> Table {
    let norm = frame.normalize_to(Organization::Mesh);
    let mut table = Table::new(
        "Figure 7 — System performance normalized to mesh (128-bit links)",
        vec![
            "Workload".into(),
            "Mesh".into(),
            "FBfly".into(),
            "NOC-Out".into(),
            "FBfly(paper)".into(),
            "NOC-Out(paper)".into(),
        ],
    );
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let fbn = norm.get(Organization::FlattenedButterfly, w);
        let non = norm.get(Organization::NocOut, w);
        table.row(vec![
            w.name().into(),
            "1.000".into(),
            format!("{fbn:.3}"),
            format!("{non:.3}"),
            format!("{:.2}", FIG7_PAPER_FBFLY[i]),
            format!("{:.2}", FIG7_PAPER_NOCOUT[i]),
        ]);
    }
    table.row(vec![
        "GMean".into(),
        "1.000".into(),
        format!("{:.3}", norm.geomean(Organization::FlattenedButterfly)),
        format!("{:.3}", norm.geomean(Organization::NocOut)),
        "1.17".into(),
        "1.17".into(),
    ]);
    table
}

/// A captured-trace replay campaign over the 3 evaluated organizations:
/// one trace workload, standard window (trace replay is
/// seed-insensitive, so the seed axis collapses to 3 points). Both the
/// local and the sharded trace execution paths build their grid here —
/// the trace-shipping CI gate `cmp`s their CSVs.
pub fn trace_campaign(set: Arc<TraceSet>) -> Campaign {
    campaign()
        .orgs(Organization::EVALUATED)
        .workloads([WorkloadClass::Trace(set)])
}

/// Renders a [`trace_campaign`] result frame, normalized to the mesh.
/// One rendering function for every execution path, like [`fig7_table`]:
/// a local run and a sharded run of the same trace cannot drift.
///
/// # Panics
///
/// Panics (naming the point and its failure) if the frame is missing a
/// grid point.
pub fn trace_table(frame: &ResultFrame, set: &Arc<TraceSet>) -> Table {
    let norm = frame.normalize_to(Organization::Mesh);
    let mut table = Table::new(
        "Trace replay — performance normalized to mesh",
        vec![
            "Trace".into(),
            "Mesh".into(),
            "FBfly".into(),
            "NOC-Out".into(),
        ],
    );
    table.row(vec![
        format!("{:016x}", set.content_hash()),
        "1.000".into(),
        format!(
            "{:.3}",
            norm.get(Organization::FlattenedButterfly, set.clone())
        ),
        format!("{:.3}", norm.get(Organization::NocOut, set.clone())),
    ]);
    table
}
