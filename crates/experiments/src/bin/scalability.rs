//! §7.1 scalability: concentration in the reduction/dispersion trees.
//!
//! Paper claim: a concentration factor of two (two adjacent cores sharing
//! each tree node's local port) supports twice the cores at nearly the
//! same network area cost; with concentration four, the 16-byte tree links
//! become a bandwidth bottleneck.
//!
//! Run with `cargo run --release -p nocout-experiments --bin scalability`
//! (add `--jobs N` to run the three configurations in parallel).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};
use nocout_tech::area::{NocAreaModel, OrganizationArea};

const ABOUT: &str = "Reproduces the section 7.1 concentration scaling: \
NOC-Out at 64/128/256 cores with tree concentration 1/2/4 on MapReduce-C, \
reporting per-core performance and NoC area per core. Writes \
out/scalability.csv.";

fn main() {
    let cli = Cli::parse("scalability", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let model = NocAreaModel::paper_32nm();
    let workload = Workload::MapReduceC;

    let mut table = Table::new(
        "§7.1 — Tree concentration scaling (MapReduce-C)",
        vec![
            "Configuration".into(),
            "Cores".into(),
            "Per-core perf (norm.)".into(),
            "NOC area (mm²)".into(),
            "Area per core (mm²)".into(),
        ],
    );

    let variants = [
        ("Baseline (c=1)", 64usize, 1usize),
        ("Concentration 2", 128, 2),
        ("Concentration 4", 256, 4),
    ];
    // Concentration couples cores, tree fan-in and memory channels, so
    // the configuration axis is explicit: one labelled variant each.
    let frame = campaign()
        .variants(variants.map(|(label, cores, concentration)| {
            let mut cfg = ChipConfig::with_cores(Organization::NocOut, cores);
            cfg.concentration = concentration;
            cfg.active_core_override = Some(cores);
            // Memory bandwidth scales with the socket (the paper's §7.1 claim
            // concerns the on-die trees, not DRAM starvation); the LLC stays
            // at 8 MB per the paper's observation that added cores do not
            // mandate added LLC capacity.
            cfg.mem_channels = 4 * (cores / 64).max(1);
            (label, cfg)
        }))
        .workloads([workload])
        .run(&runner);

    let base_per_core = frame
        .at()
        .label(variants[0].0)
        .one()
        .metrics
        .per_core_performance();
    for (label, cores, _) in variants {
        let p = frame.at().label(label).one();
        let per_core = p.metrics.per_core_performance();
        let area = model
            .area(&OrganizationArea::nocout(&p.chip.nocout_spec()))
            .total_mm2();
        table.row(vec![
            label.into(),
            cores.to_string(),
            format!("{:.3}", per_core / base_per_core),
            format!("{area:.2}"),
            format!("{:.4}", area / cores as f64),
        ]);
        eprintln!(
            "  [{label}] per-core {per_core:.4}  net latency {:.1}",
            p.metrics.network.mean_latency
        );
    }
    table.print();
    println!(
        "Expectation: c=2 keeps per-core performance close at roughly the same \
         network area (so area/core halves); c=4 starts to saturate the 16B tree links."
    );
    report_csv("scalability.csv", &table.csv_records());
}
