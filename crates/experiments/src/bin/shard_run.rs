//! `shard-run`: campaigns through the fault-tolerant sharded driver.
//!
//! Exercises the whole `nocout::distribute` stack end to end: partitions
//! a campaign grid (the Figure 7 grid by default, a captured-trace
//! replay grid with `--trace DIR`) into shards, dispatches them to
//! `nocout-worker` endpoints (spawned locally with `--workers N`, or
//! already running and reached with `--connect ADDR`), retries failed
//! shards with seeded backoff, optionally speculates on stragglers and
//! journals completed points for `--resume` after a driver crash. The
//! merged frame renders through the same shared table as the local path
//! (`fig7`, or `--local`), so the sharded CSV is byte-identical to the
//! local one — the CI sharded-execution and trace-shipping gates `cmp`
//! them.
//!
//! Trace campaigns ship their traces by content hash: spawned workers
//! get per-worker content-addressed stores under `--worker-store DIR`
//! (`DIR/w0`, `DIR/w1`, ...), the driver ships archives in
//! `--chunk-bytes` chunks and reuses whatever a worker already holds.
//!
//! The `--fault-*` flags are forwarded to the *first* spawned worker
//! (`--fault-corrupt-chunk` arms the driver itself), so one chaos
//! invocation can prove a worker crash mid-shard — or mid-trace-transfer
//! — is survived.

use nocout::distribute::{DriverConfig, Endpoint, ShardedDriver};
use nocout_experiments::cli::{Cli, FaultArgs};
use nocout_experiments::figures::{fig7_campaign, fig7_table, trace_campaign, trace_table};
use nocout_experiments::report_csv;
use nocout_workloads::trace::TraceSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const ABOUT: &str = "Runs a campaign through the fault-tolerant sharded \
driver: the grid (Figure 7 by default; a trace-replay grid with --trace \
DIR) is partitioned into shards, dispatched to nocout-worker endpoints \
(spawned locally with --workers, or reached with --connect), retried with \
seeded exponential backoff on failure, and optionally journaled \
(--journal, --resume) so a crashed driver restarts where it stopped. \
Trace workloads travel by content hash: workers advertise their stores in \
the capability handshake and the driver ships missing archives in \
--chunk-bytes chunks (give spawned workers stores with --worker-store \
DIR). Successful merged results are byte-identical to the local path's \
(run it with --local); writes out/fig7_sharded.csv or \
out/trace_sharded.csv (override with --out). --fault-* flags are \
forwarded to the first spawned worker; --fault-corrupt-chunk corrupts the \
N-th trace chunk the driver itself sends.";

fn main() {
    let mut cli = Cli::parse(
        "shard-run",
        ABOUT,
        &format!(
            "[--trace DIR] [--local] [--workers N] [--worker-bin PATH] \
             [--worker-store DIR] [--connect ADDR]... [--shard-points N] \
             [--attempts N] [--timeout-ms N] [--speculate-ms N] \
             [--chunk-bytes N] [--journal PATH] [--resume] [--out NAME] \
             [--fault-corrupt-chunk N] {}",
            FaultArgs::USAGE
        ),
    );
    let mut workers: usize = 2;
    let mut worker_bin: Option<PathBuf> = None;
    let mut worker_store: Option<PathBuf> = None;
    let mut connect: Vec<String> = Vec::new();
    let mut cfg = DriverConfig::default();
    let mut out: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut local = false;
    let mut faults = FaultArgs::default();
    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--trace" => trace_dir = Some(cli.value(&flag)),
            "--local" => local = true,
            "--workers" => workers = cli.parsed(&flag),
            "--worker-bin" => worker_bin = Some(PathBuf::from(cli.value(&flag))),
            "--worker-store" => worker_store = Some(PathBuf::from(cli.value(&flag))),
            "--connect" => connect.push(cli.value(&flag)),
            "--shard-points" => cfg.shard_points = cli.parsed(&flag),
            "--attempts" => cfg.max_attempts = cli.parsed(&flag),
            "--timeout-ms" => cfg.read_timeout = Duration::from_millis(cli.parsed(&flag)),
            "--speculate-ms" => {
                cfg.speculate_after = Some(Duration::from_millis(cli.parsed(&flag)));
            }
            "--chunk-bytes" => cfg.chunk_bytes = cli.parsed(&flag),
            "--fault-corrupt-chunk" => cfg.fault_corrupt_chunk = Some(cli.parsed(&flag)),
            "--journal" => cfg.journal = Some(PathBuf::from(cli.value(&flag))),
            "--resume" => cfg.resume = true,
            "--out" => out = Some(cli.value(&flag)),
            _ => {
                if !faults.accept(&flag, &mut cli) {
                    cli.unknown(&flag);
                }
            }
        }
    }
    let trace_set: Option<Arc<TraceSet>> = trace_dir.map(|dir| {
        TraceSet::load(&dir)
            .unwrap_or_else(|e| cli.fail(&format!("cannot load trace `{dir}`: {e}")))
    });
    let out = out.unwrap_or_else(|| {
        match (&trace_set, local) {
            (Some(_), true) => "trace_local.csv",
            (Some(_), false) => "trace_sharded.csv",
            (None, _) => "fig7_sharded.csv",
        }
        .to_string()
    });
    if !local && workers == 0 && connect.is_empty() {
        cli.fail("need --workers N > 0 or at least one --connect ADDR");
    }
    if !local && workers == 0 && faults.plan().is_armed() {
        eprintln!(
            "shard-run: warning: --fault-* flags only reach workers this \
             driver spawns; --connect endpoints are unaffected"
        );
    }

    // The local runner either executes the campaign itself (--local) or
    // just carries the --jobs / --cache settings every spawned worker
    // inherits.
    let runner = cli.runner();
    let campaign = match &trace_set {
        Some(set) => trace_campaign(set.clone()),
        None => fig7_campaign(),
    };

    let frame = if local {
        cli.finish();
        campaign.run(&runner)
    } else {
        let mut endpoints: Vec<Endpoint> = connect.into_iter().map(Endpoint::Tcp).collect();
        let program = worker_bin.unwrap_or_else(default_worker_bin);
        let mut base_args = vec!["--jobs".to_string(), runner.jobs().to_string()];
        if let Some(cache) = runner.cache() {
            base_args.push("--cache".into());
            base_args.push(cache.dir().display().to_string());
        }
        for i in 0..workers {
            let mut args = base_args.clone();
            if let Some(store) = &worker_store {
                args.push("--trace-store".into());
                args.push(store.join(format!("w{i}")).display().to_string());
            }
            if i == 0 {
                args.extend(faults.to_args());
            }
            endpoints.push(Endpoint::Process {
                program: program.clone(),
                args,
            });
        }
        cli.finish();

        let driver = ShardedDriver::new(endpoints, cfg);
        let frame = campaign.run_on(&driver);
        let stats = driver.stats();
        eprintln!(
            "shard-run: {} shards, {} dispatches ({} retries, {} speculative), \
             {} failed attempts, {} points resumed from journal, {} failed points, \
             {} traces shipped, {} trace reuses, {} trace bytes resumed",
            stats.shards,
            stats.dispatches,
            stats.retries,
            stats.speculative,
            stats.failed_attempts,
            stats.journal_resumed,
            stats.failed_points,
            stats.trace_ships,
            stats.trace_reuses,
            stats.trace_resume_bytes,
        );
        frame
    };
    if !frame.is_complete() {
        for f in frame.failed() {
            eprintln!("shard-run: failed point: {f}");
        }
        eprintln!(
            "shard-run: {} of {} points failed; not writing a table \
             (re-run with --resume to retry only the missing points)",
            frame.failed().len(),
            frame.len() + frame.failed().len(),
        );
        std::process::exit(1);
    }
    let table = match &trace_set {
        Some(set) => trace_table(&frame, set),
        None => fig7_table(&frame),
    };
    table.print();
    report_csv(&out, &table.csv_records());
}

/// The `nocout-worker` binary next to this one — both are built into the
/// same target directory.
fn default_worker_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("shard-run knows its own path");
    exe.parent()
        .expect("the executable lives in a directory")
        .join("nocout-worker")
}
