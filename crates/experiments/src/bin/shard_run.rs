//! `shard-run`: the Figure 7 campaign through the fault-tolerant sharded
//! driver.
//!
//! Exercises the whole `nocout::distribute` stack end to end: partitions
//! the fig7 grid into shards, dispatches them to `nocout-worker`
//! endpoints (spawned locally with `--workers N`, or already running and
//! reached with `--connect ADDR`), retries failed shards with seeded
//! backoff, optionally speculates on stragglers and journals completed
//! points for `--resume` after a driver crash. The merged frame renders
//! through the same shared table as `fig7`, so `out/fig7_sharded.csv` is
//! byte-identical to `out/fig7.csv` — the CI sharded-execution gate
//! `cmp`s them.
//!
//! The `--fault-*` flags are forwarded to the *first* spawned worker, so
//! one chaos invocation can prove a worker crash mid-shard is survived.

use nocout::distribute::{DriverConfig, Endpoint, ShardedDriver};
use nocout_experiments::cli::{Cli, FaultArgs};
use nocout_experiments::figures::{fig7_campaign, fig7_table};
use nocout_experiments::report_csv;
use std::path::PathBuf;
use std::time::Duration;

const ABOUT: &str = "Runs the Figure 7 campaign through the fault-tolerant \
sharded driver: the 18-point grid is partitioned into shards, dispatched \
to nocout-worker endpoints (spawned locally with --workers, or reached \
with --connect), retried with seeded exponential backoff on failure, and \
optionally journaled (--journal, --resume) so a crashed driver restarts \
where it stopped. Successful merged results are byte-identical to fig7's; \
writes out/fig7_sharded.csv (override with --out). --fault-* flags are \
forwarded to the first spawned worker for chaos testing.";

fn main() {
    let mut cli = Cli::parse(
        "shard-run",
        ABOUT,
        &format!(
            "[--workers N] [--worker-bin PATH] [--connect ADDR]... \
             [--shard-points N] [--attempts N] [--timeout-ms N] \
             [--speculate-ms N] [--journal PATH] [--resume] [--out NAME] {}",
            FaultArgs::USAGE
        ),
    );
    let mut workers: usize = 2;
    let mut worker_bin: Option<PathBuf> = None;
    let mut connect: Vec<String> = Vec::new();
    let mut cfg = DriverConfig::default();
    let mut out = String::from("fig7_sharded.csv");
    let mut faults = FaultArgs::default();
    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--workers" => workers = cli.parsed(&flag),
            "--worker-bin" => worker_bin = Some(PathBuf::from(cli.value(&flag))),
            "--connect" => connect.push(cli.value(&flag)),
            "--shard-points" => cfg.shard_points = cli.parsed(&flag),
            "--attempts" => cfg.max_attempts = cli.parsed(&flag),
            "--timeout-ms" => cfg.read_timeout = Duration::from_millis(cli.parsed(&flag)),
            "--speculate-ms" => {
                cfg.speculate_after = Some(Duration::from_millis(cli.parsed(&flag)));
            }
            "--journal" => cfg.journal = Some(PathBuf::from(cli.value(&flag))),
            "--resume" => cfg.resume = true,
            "--out" => out = cli.value(&flag),
            _ => {
                if !faults.accept(&flag, &mut cli) {
                    cli.unknown(&flag);
                }
            }
        }
    }
    if workers == 0 && connect.is_empty() {
        cli.fail("need --workers N > 0 or at least one --connect ADDR");
    }
    if workers == 0 && faults.plan().is_armed() {
        eprintln!(
            "shard-run: warning: --fault-* flags only reach workers this \
             driver spawns; --connect endpoints are unaffected"
        );
    }

    // The local runner is never simulated on — it carries the --jobs /
    // --cache settings every spawned worker inherits.
    let runner = cli.runner();
    let mut endpoints: Vec<Endpoint> = connect.into_iter().map(Endpoint::Tcp).collect();
    let program = worker_bin.unwrap_or_else(default_worker_bin);
    let mut base_args = vec!["--jobs".to_string(), runner.jobs().to_string()];
    if let Some(cache) = runner.cache() {
        base_args.push("--cache".into());
        base_args.push(cache.dir().display().to_string());
    }
    for i in 0..workers {
        let mut args = base_args.clone();
        if i == 0 {
            args.extend(faults.to_args());
        }
        endpoints.push(Endpoint::Process {
            program: program.clone(),
            args,
        });
    }
    cli.finish();

    let driver = ShardedDriver::new(endpoints, cfg);
    let frame = fig7_campaign().run_on(&driver);
    let stats = driver.stats();
    eprintln!(
        "shard-run: {} shards, {} dispatches ({} retries, {} speculative), \
         {} failed attempts, {} points resumed from journal, {} failed points",
        stats.shards,
        stats.dispatches,
        stats.retries,
        stats.speculative,
        stats.failed_attempts,
        stats.journal_resumed,
        stats.failed_points,
    );
    if !frame.is_complete() {
        for f in frame.failed() {
            eprintln!("shard-run: failed point: {f}");
        }
        eprintln!(
            "shard-run: {} of {} points failed; not writing a table \
             (re-run with --resume to retry only the missing points)",
            frame.failed().len(),
            frame.len() + frame.failed().len(),
        );
        std::process::exit(1);
    }
    let table = fig7_table(&frame);
    table.print();
    report_csv(&out, &table.csv_records());
}

/// The `nocout-worker` binary next to this one — both are built into the
/// same target directory.
fn default_worker_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("shard-run knows its own path");
    exe.parent()
        .expect("the executable lives in a directory")
        .join("nocout-worker")
}
