//! §6.4 power analysis: average NoC power per organization.
//!
//! Paper result: the NoC is a minor consumer at chip level (< 2 W in every
//! organization, against > 60 W for the cores); most energy goes into the
//! links; the ordering is NOC-Out (1.3 W) < FBfly (1.6 W) < Mesh (1.8 W),
//! because NOC-Out's traffic travels shorter distances.
//!
//! Run with `cargo run --release -p nocout-experiments --bin power`
//! (add `--jobs N` to spread the 18-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};
use nocout_tech::{BufferTech, ChipPowerModel, NocEnergyModel};

const ABOUT: &str = "Reproduces the section 6.4 power analysis: measures \
NoC activity for the 3 evaluated organizations x 6 workloads, prices it \
with the 32nm energy models, and reports mean NoC power per organization \
against the paper's watts. Writes out/power.csv.";

fn main() {
    let cli = Cli::parse("power", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    // (organization, buffer tech, average switch radix, paper watts)
    let orgs = [
        (Organization::Mesh, BufferTech::FlipFlop, 5.0, 1.8),
        (Organization::FlattenedButterfly, BufferTech::Sram, 15.0, 1.6),
        (Organization::NocOut, BufferTech::FlipFlop, 2.8, 1.3),
    ];
    let mut table = Table::new(
        "§6.4 — Average NOC power (W), mean over the six workloads",
        vec![
            "Organization".into(),
            "Links".into(),
            "Buffers".into(),
            "Crossbars".into(),
            "Static".into(),
            "Total (W)".into(),
            "Paper (W)".into(),
        ],
    );
    // Every organization × workload activity measurement runs as one
    // campaign; the energy models then price each result.
    let frame = campaign()
        .orgs(orgs.map(|(org, ..)| org))
        .workloads(Workload::ALL)
        .run(&runner);

    for (org, buffer_tech, radix, paper) in orgs {
        let model = NocEnergyModel::paper_32nm(128, buffer_tech).with_radix(radix);
        let mut totals = [0.0f64; 5];
        for &w in Workload::ALL.iter() {
            let p = frame.get(org, w);
            let r = model.energy(&p.metrics.noc_activity());
            let secs = r.seconds;
            totals[0] += r.links_j / secs;
            totals[1] += r.buffers_j / secs;
            totals[2] += r.crossbars_j / secs;
            totals[3] += r.static_j / secs;
            totals[4] += r.power_w();
        }
        let n = Workload::ALL.len() as f64;
        table.row(vec![
            org.name().into(),
            format!("{:.2}", totals[0] / n),
            format!("{:.2}", totals[1] / n),
            format!("{:.2}", totals[2] / n),
            format!("{:.2}", totals[3] / n),
            format!("{:.2}", totals[4] / n),
            format!("{paper:.1}"),
        ]);
    }
    table.print();
    let chip = ChipPowerModel::paper_32nm();
    println!(
        "Chip context: 64 cores ≈ {:.0} W, 8 MB LLC ≈ {:.0} W — the NOC stays a minor consumer.",
        chip.cores_power_w(64),
        chip.llc_power_w(8.0)
    );
    report_csv("power.csv", &table.csv_records());
}
