//! Table 1: evaluation parameters — printed from the live configuration
//! structs so the documentation can never drift from the simulated
//! hardware.
//!
//! Run with `cargo run -p nocout-experiments --bin table1`.

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::Table;
use nocout_mem::llc::LlcConfig;
use nocout_mem::mem_ctrl::MemChannelConfig;
use nocout_noc::RouterConfig;
use nocout_tech::ChipPowerModel;

const ABOUT: &str = "Prints Table 1 (the evaluation parameters) from the \
live configuration structs, so the documentation cannot drift from the \
simulated hardware — no simulation runs.";

fn main() {
    // Prints live configuration structs — no simulation, but the shared
    // CLI keeps `--jobs`/`--help` handling uniform across bins.
    let cli = Cli::parse("table1", ABOUT, "");
    cli.finish();
    let chip = ChipConfig::paper(Organization::NocOut);
    let tech = ChipPowerModel::paper_32nm();
    let mem = MemChannelConfig::default();
    let mesh_r = RouterConfig::mesh();
    let tree_r = RouterConfig::tree_node();

    let mut t = Table::new(
        "Table 1 — Evaluation parameters",
        vec!["Parameter".into(), "Value".into()],
    );
    t.row(vec![
        "Technology".into(),
        "32nm, 0.9V, 2GHz".into(),
    ]);
    t.row(vec![
        "CMP features".into(),
        format!(
            "{} cores, {} MB NUCA LLC, {} DDR3-1667 memory channels",
            chip.cores,
            chip.llc_total_bytes / (1024 * 1024),
            chip.mem_channels
        ),
    ]);
    t.row(vec![
        "Core".into(),
        format!(
            "ARM Cortex-A15-like: 3-way OoO, 64-entry ROB, 16-entry LSQ, {:.1}mm2, {:.2}W",
            tech.core_area_mm2, tech.core_power_w
        ),
    ]);
    t.row(vec![
        "Cache per MB".into(),
        format!(
            "{:.1}mm2, {:.0}mW",
            tech.cache_area_mm2_per_mb,
            tech.cache_power_w_per_mb * 1000.0
        ),
    ]);
    t.row(vec![
        "Mesh".into(),
        format!(
            "Router: 5 ports, 3 VCs/port, {} flits/VC, {}-stage speculative pipeline; link: 1 cycle",
            mesh_r.vc_depth, mesh_r.pipeline_delay
        ),
    ]);
    t.row(vec![
        "Flattened Butterfly".into(),
        "Router: 15 ports, 3 VCs/port, variable flits/VC, 3-stage pipeline; link: up to 2 tiles/cycle"
            .into(),
    ]);
    t.row(vec![
        "NOC-Out".into(),
        format!(
            "Reduction/dispersion: 2 ports/node, 2 VCs/port, 1 cycle/hop (depth {}); LLC network: 1-D flattened butterfly, {} banks/tile",
            tree_r.vc_depth,
            LlcConfig::nocout_tile().banks
        ),
    ]);
    t.row(vec![
        "Link width".into(),
        format!("{} bits", chip.link_width_bits),
    ]);
    t.row(vec![
        "Memory channel".into(),
        format!(
            "{} cycles latency, {} cycles occupancy per 64B access",
            mem.latency, mem.occupancy
        ),
    ]);
    t.print();
}
