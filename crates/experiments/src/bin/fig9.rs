//! Figure 9: system performance normalized to mesh under a fixed NoC area
//! budget (every organization constrained to NOC-Out's 2.5 mm²).
//!
//! Paper result: shrinking the mesh's links hurts it mildly (serialization
//! stays dwarfed by header delay), but the flattened butterfly's link
//! width collapses ~7× and serialization delay spikes. At equal area,
//! NOC-Out outperforms the mesh by ~19% and the butterfly by ~65%.
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig9`
//! (add `--jobs N` to spread the 18-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};
use nocout_tech::area::{NocAreaModel, OrganizationArea};

const ABOUT: &str = "Reproduces Figure 9: fits the mesh and flattened \
butterfly link widths into NOC-Out's NoC area budget, then runs the 3 \
area-normalized configurations x 6 workloads, normalized to the mesh. \
Writes out/fig9.csv.";

fn main() {
    let cli = Cli::parse("fig9", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let model = NocAreaModel::paper_32nm();
    let nocout_cfg = ChipConfig::paper(Organization::NocOut);
    let budget = model
        .area(&OrganizationArea::nocout(&nocout_cfg.nocout_spec()))
        .total_mm2();

    // Fit the mesh and butterfly link widths into NOC-Out's budget.
    let mesh_cfg = ChipConfig::paper(Organization::Mesh);
    let (mesh_w, _) = model.fit_width_to_budget(budget, |w| {
        OrganizationArea::mesh_with_width(&mesh_cfg.mesh_spec(), w)
    });
    let fb_cfg = ChipConfig::paper(Organization::FlattenedButterfly);
    let (fb_w, _) = model.fit_width_to_budget(budget, |w| {
        OrganizationArea::fbfly_with_width(&fb_cfg.fbfly_spec(), w)
    });
    println!(
        "Area budget {budget:.2} mm²: mesh fits at {mesh_w}-bit links, \
         flattened butterfly at {fb_w}-bit links (from 128)"
    );

    let mut table = Table::new(
        "Figure 9 — Performance normalized to mesh under a fixed 2.5 mm² NOC budget",
        vec![
            "Workload".into(),
            "Mesh".into(),
            "FBfly".into(),
            "NOC-Out".into(),
        ],
    );
    // The per-organization link widths differ, so the configuration axis
    // is explicit: three fitted variants × the six workloads.
    let frame = campaign()
        .variants([
            ("Mesh", mesh_cfg.with_link_width(mesh_w)),
            ("FBfly", fb_cfg.with_link_width(fb_w)),
            ("NOC-Out", nocout_cfg),
        ])
        .workloads(Workload::ALL)
        .run(&runner);
    let norm = frame.normalize_to(Organization::Mesh);

    for &w in Workload::ALL.iter() {
        table.row(vec![
            w.name().into(),
            "1.000".into(),
            format!("{:.3}", norm.get(Organization::FlattenedButterfly, w)),
            format!("{:.3}", norm.get(Organization::NocOut, w)),
        ]);
        eprintln!(
            "  [{w}] mesh {:.4} fbfly {:.4} nocout {:.4}",
            frame.get(Organization::Mesh, w).ipc,
            frame.get(Organization::FlattenedButterfly, w).ipc,
            frame.get(Organization::NocOut, w).ipc
        );
    }
    let fb_g = norm.geomean(Organization::FlattenedButterfly);
    let no_g = norm.geomean(Organization::NocOut);
    table.row(vec![
        "GMean".into(),
        "1.000".into(),
        format!("{fb_g:.3}"),
        format!("{no_g:.3}"),
    ]);
    table.print();
    println!(
        "NOC-Out vs mesh: +{:.0}% (paper +19%); NOC-Out vs FBfly: +{:.0}% (paper +65%)",
        (no_g - 1.0) * 100.0,
        (no_g / fb_g - 1.0) * 100.0
    );
    report_csv("fig9.csv", &table.csv_records());
}
