//! Figure 9: system performance normalized to mesh under a fixed NoC area
//! budget (every organization constrained to NOC-Out's 2.5 mm²).
//!
//! Paper result: shrinking the mesh's links hurts it mildly (serialization
//! stays dwarfed by header delay), but the flattened butterfly's link
//! width collapses ~7× and serialization delay spikes. At equal area,
//! NOC-Out outperforms the mesh by ~19% and the butterfly by ~65%.
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig9`
//! (add `--jobs N` to spread the 18-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{perf_points, report_csv, Table};
use nocout_sim::stats::geometric_mean;
use nocout_tech::area::{NocAreaModel, OrganizationArea};

fn main() {
    let cli = Cli::parse("fig9", "");
    let runner = cli.runner();
    cli.finish();

    let model = NocAreaModel::paper_32nm();
    let nocout_cfg = ChipConfig::paper(Organization::NocOut);
    let budget = model
        .area(&OrganizationArea::nocout(&nocout_cfg.nocout_spec()))
        .total_mm2();

    // Fit the mesh and butterfly link widths into NOC-Out's budget.
    let mesh_cfg = ChipConfig::paper(Organization::Mesh);
    let (mesh_w, _) = model.fit_width_to_budget(budget, |w| {
        OrganizationArea::mesh_with_width(&mesh_cfg.mesh_spec(), w)
    });
    let fb_cfg = ChipConfig::paper(Organization::FlattenedButterfly);
    let (fb_w, _) = model.fit_width_to_budget(budget, |w| {
        OrganizationArea::fbfly_with_width(&fb_cfg.fbfly_spec(), w)
    });
    println!(
        "Area budget {budget:.2} mm²: mesh fits at {mesh_w}-bit links, \
         flattened butterfly at {fb_w}-bit links (from 128)"
    );

    let mesh_cfg = mesh_cfg.with_link_width(mesh_w);
    let fb_cfg = fb_cfg.with_link_width(fb_w);

    let mut table = Table::new(
        "Figure 9 — Performance normalized to mesh under a fixed 2.5 mm² NOC budget",
        vec![
            "Workload".into(),
            "Mesh".into(),
            "FBfly".into(),
            "NOC-Out".into(),
        ],
    );
    // All workload × configuration points execute as one parallel batch.
    let points: Vec<(ChipConfig, Workload)> = Workload::ALL
        .iter()
        .flat_map(|&w| [(mesh_cfg, w), (fb_cfg, w), (nocout_cfg, w)])
        .collect();
    let results = perf_points(&runner, &points);

    let mut fb_norm = Vec::new();
    let mut no_norm = Vec::new();
    for (i, w) in Workload::ALL.iter().enumerate() {
        let mesh = &results[i * 3];
        let fb = &results[i * 3 + 1];
        let no = &results[i * 3 + 2];
        fb_norm.push(fb.ipc / mesh.ipc);
        no_norm.push(no.ipc / mesh.ipc);
        table.row(vec![
            w.name().into(),
            "1.000".into(),
            format!("{:.3}", fb_norm.last().unwrap()),
            format!("{:.3}", no_norm.last().unwrap()),
        ]);
        eprintln!(
            "  [{w}] mesh {:.4} fbfly {:.4} nocout {:.4}",
            mesh.ipc, fb.ipc, no.ipc
        );
    }
    let fb_g = geometric_mean(&fb_norm);
    let no_g = geometric_mean(&no_norm);
    table.row(vec![
        "GMean".into(),
        "1.000".into(),
        format!("{fb_g:.3}"),
        format!("{no_g:.3}"),
    ]);
    table.print();
    println!(
        "NOC-Out vs mesh: +{:.0}% (paper +19%); NOC-Out vs FBfly: +{:.0}% (paper +65%)",
        (no_g - 1.0) * 100.0,
        (no_g / fb_g - 1.0) * 100.0
    );
    report_csv("fig9.csv", &table.csv_records());
}
