//! §4.3 banking ablation: LLC tiles/banks vs performance.
//!
//! Paper claims: (a) four cores per LLC bank perform within 2% of a
//! one-bank-per-core design because low ILP/MLP dampens LLC bandwidth
//! pressure; (b) two banks per NOC-Out tile achieve the throughput of
//! higher banking degrees at lower cost.
//!
//! Run with `cargo run --release -p nocout-experiments --bin banking`
//! (add `--jobs N` to spread the 9-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{perf_points, report_csv, Table};

fn main() {
    let cli = Cli::parse("banking", "");
    let runner = cli.runner();
    cli.finish();

    let workloads = [Workload::DataServing, Workload::MapReduceW, Workload::WebSearch];
    let bank_counts = [1usize, 2, 4];
    let mut table = Table::new(
        "§4.3 — NOC-Out LLC banking sweep (aggregate IPC, normalized to 2 banks/tile)",
        vec![
            "Workload".into(),
            "1 bank/tile".into(),
            "2 banks/tile (paper config)".into(),
            "4 banks/tile".into(),
        ],
    );
    let points: Vec<(ChipConfig, Workload)> = workloads
        .iter()
        .flat_map(|&w| {
            bank_counts.map(|banks| {
                let mut cfg = ChipConfig::paper(Organization::NocOut);
                cfg.banks_per_llc_tile = banks;
                (cfg, w)
            })
        })
        .collect();
    let results = perf_points(&runner, &points);

    for (wi, w) in workloads.iter().enumerate() {
        let vals: Vec<f64> = (0..bank_counts.len())
            .map(|bi| results[wi * bank_counts.len() + bi].ipc)
            .collect();
        let base = vals[1];
        table.row(vec![
            w.name().into(),
            format!("{:.4}", vals[0] / base),
            "1.0000".into(),
            format!("{:.4}", vals[2] / base),
        ]);
    }
    table.print();
    println!(
        "Expectation: 4 banks buys little over 2 (paper: similar throughput at lower \
         area with 2 banks/tile); 1 bank loses on bank-contention-sensitive workloads."
    );
    report_csv("banking.csv", &table.csv_records());
}
