//! §4.3 banking ablation: LLC tiles/banks vs performance.
//!
//! Paper claims: (a) four cores per LLC bank perform within 2% of a
//! one-bank-per-core design because low ILP/MLP dampens LLC bandwidth
//! pressure; (b) two banks per NOC-Out tile achieve the throughput of
//! higher banking degrees at lower cost.
//!
//! Run with `cargo run --release -p nocout-experiments --bin banking`.

use nocout::prelude::*;
use nocout_experiments::{perf_point, write_csv, Table};
use std::path::Path;

fn main() {
    let mut table = Table::new(
        "§4.3 — NOC-Out LLC banking sweep (aggregate IPC, normalized to 2 banks/tile)",
        vec![
            "Workload".into(),
            "1 bank/tile".into(),
            "2 banks/tile (paper config)".into(),
            "4 banks/tile".into(),
        ],
    );
    for w in [Workload::DataServing, Workload::MapReduceW, Workload::WebSearch] {
        let mut vals = Vec::new();
        for banks in [1usize, 2, 4] {
            let mut cfg = ChipConfig::paper(Organization::NocOut);
            cfg.banks_per_llc_tile = banks;
            vals.push(perf_point(cfg, w).ipc);
        }
        let base = vals[1];
        table.row(vec![
            w.name().into(),
            format!("{:.4}", vals[0] / base),
            "1.0000".into(),
            format!("{:.4}", vals[2] / base),
        ]);
    }
    table.print();
    println!(
        "Expectation: 4 banks buys little over 2 (paper: similar throughput at lower \
         area with 2 banks/tile); 1 bank loses on bank-contention-sensitive workloads."
    );
    let _ = write_csv(Path::new("banking.csv"), &table.csv_records());
    println!("(wrote banking.csv)");
}
