//! §4.3 banking ablation: LLC tiles/banks vs performance.
//!
//! Paper claims: (a) four cores per LLC bank perform within 2% of a
//! one-bank-per-core design because low ILP/MLP dampens LLC bandwidth
//! pressure; (b) two banks per NOC-Out tile achieve the throughput of
//! higher banking degrees at lower cost.
//!
//! Run with `cargo run --release -p nocout-experiments --bin banking`
//! (add `--jobs N` to spread the 9-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};

const ABOUT: &str = "Reproduces the section 4.3 banking ablation: NOC-Out \
with 1/2/4 LLC banks per tile x 3 bank-sensitive workloads, normalized to \
the paper's 2-banks-per-tile configuration. Writes out/banking.csv.";

fn main() {
    let cli = Cli::parse("banking", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let workloads = [Workload::DataServing, Workload::MapReduceW, Workload::WebSearch];
    let bank_counts = [1usize, 2, 4];
    let mut table = Table::new(
        "§4.3 — NOC-Out LLC banking sweep (aggregate IPC, normalized to 2 banks/tile)",
        vec![
            "Workload".into(),
            "1 bank/tile".into(),
            "2 banks/tile (paper config)".into(),
            "4 banks/tile".into(),
        ],
    );
    // Banking degree isn't a typed axis, so the configuration axis is
    // explicit: one labelled variant per banks-per-tile setting.
    let frame = campaign()
        .variants(bank_counts.map(|banks| {
            let mut cfg = ChipConfig::paper(Organization::NocOut);
            cfg.banks_per_llc_tile = banks;
            (format!("{banks} banks/tile"), cfg)
        }))
        .workloads(workloads)
        .run(&runner);

    for &w in &workloads {
        let ipc_at = |banks: usize| {
            frame
                .at()
                .label(format!("{banks} banks/tile"))
                .workload(w)
                .ipc()
        };
        let base = ipc_at(2);
        table.row(vec![
            w.name().into(),
            format!("{:.4}", ipc_at(1) / base),
            "1.0000".into(),
            format!("{:.4}", ipc_at(4) / base),
        ]);
    }
    table.print();
    println!(
        "Expectation: 4 banks buys little over 2 (paper: similar throughput at lower \
         area with 2 banks/tile); 1 bank loses on bank-contention-sensitive workloads."
    );
    report_csv("banking.csv", &table.csv_records());
}
