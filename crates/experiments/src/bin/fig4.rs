//! Figure 4: percentage of LLC accesses triggering a snoop message, per
//! workload.
//!
//! Paper result: coherence activity is negligible — on average two out of
//! 100 LLC accesses trigger a snoop, ranging from under 1% (Web Search) to
//! ~4% (SAT Solver). This is the observation NOC-Out's bilateral-traffic
//! specialization rests on.
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig4`
//! (add `--jobs N` to run the six workloads in parallel).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{perf_points, report_csv, Table};

fn main() {
    let cli = Cli::parse("fig4", "");
    let runner = cli.runner();
    cli.finish();

    let paper = [1.2, 2.2, 2.8, 4.2, 1.8, 0.8];
    let mut table = Table::new(
        "Figure 4 — % of LLC accesses triggering a snoop",
        vec![
            "Workload".into(),
            "Snoop %".into(),
            "Snoop % (paper, approx.)".into(),
        ],
    );
    // Measured on the mesh baseline; the traffic mix is an application
    // property and is organization-independent.
    let points: Vec<(ChipConfig, Workload)> = Workload::ALL
        .iter()
        .map(|&w| (ChipConfig::paper(Organization::Mesh), w))
        .collect();
    let results = perf_points(&runner, &points);

    let mut sum = 0.0;
    for (i, w) in Workload::ALL.iter().enumerate() {
        let pct = results[i].metrics.llc.snoop_percent();
        sum += pct;
        table.row(vec![
            w.name().into(),
            format!("{pct:.2}"),
            format!("{:.1}", paper[i]),
        ]);
    }
    table.row(vec![
        "Mean".into(),
        format!("{:.2}", sum / Workload::ALL.len() as f64),
        "2.0".into(),
    ]);
    table.print();
    report_csv("fig4.csv", &table.csv_records());
}
