//! Figure 4: percentage of LLC accesses triggering a snoop message, per
//! workload.
//!
//! Paper result: coherence activity is negligible — on average two out of
//! 100 LLC accesses trigger a snoop, ranging from under 1% (Web Search) to
//! ~4% (SAT Solver). This is the observation NOC-Out's bilateral-traffic
//! specialization rests on.
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig4`
//! (add `--jobs N` to run the six workloads in parallel).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};

const ABOUT: &str = "Reproduces Figure 4: the snoop rate (% of LLC \
accesses triggering a snoop) of all 6 CloudSuite-style workloads on the \
mesh baseline, against the paper's ~2% average. Writes out/fig4.csv.";

fn main() {
    let cli = Cli::parse("fig4", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let paper = [1.2, 2.2, 2.8, 4.2, 1.8, 0.8];
    let mut table = Table::new(
        "Figure 4 — % of LLC accesses triggering a snoop",
        vec![
            "Workload".into(),
            "Snoop %".into(),
            "Snoop % (paper, approx.)".into(),
        ],
    );
    // Measured on the mesh baseline; the traffic mix is an application
    // property and is organization-independent.
    let frame = campaign()
        .orgs([Organization::Mesh])
        .workloads(Workload::ALL)
        .run(&runner);

    let mut sum = 0.0;
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let pct = frame.get(Organization::Mesh, w).metrics.llc.snoop_percent();
        sum += pct;
        table.row(vec![
            w.name().into(),
            format!("{pct:.2}"),
            format!("{:.1}", paper[i]),
        ]);
    }
    table.row(vec![
        "Mean".into(),
        format!("{:.2}", sum / Workload::ALL.len() as f64),
        "2.0".into(),
    ]);
    table.print();
    report_csv("fig4.csv", &table.csv_records());
}
