//! §7.1 express-links extension: tall reduction/dispersion trees with and
//! without skip-two express channels.
//!
//! Paper claim: in future CMPs with hundreds of cores, tree height becomes
//! a performance concern; judicious express links bypass intermediate
//! nodes and let performance approach a wire-only network, at some channel
//! expense but with the same trivially simple node design.
//!
//! Run with `cargo run --release -p nocout-experiments --bin express`
//! (add `--jobs N` to run both configurations in parallel).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};
use nocout_tech::area::{NocAreaModel, OrganizationArea};

const ABOUT: &str = "Reproduces the section 7.1 express-links ablation: a \
128-core (8-row) NOC-Out with plain chains vs skip-two express links on \
MapReduce-C, reporting IPC, tree latency and NoC area. Writes \
out/express.csv.";

fn main() {
    let cli = Cli::parse("express", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let model = NocAreaModel::paper_32nm();
    let mut table = Table::new(
        "§7.1 — Express links in 128-core (8-row) trees, MapReduce-C",
        vec![
            "Configuration".into(),
            "Aggregate IPC (norm.)".into(),
            "Mean net latency".into(),
            "NOC area (mm²)".into(),
        ],
    );
    let variants = [("Chains only", false), ("With express links", true)];
    let frame = campaign()
        .variants(variants.map(|(label, express)| {
            let mut cfg = ChipConfig::with_cores(Organization::NocOut, 128);
            cfg.express_links = express;
            cfg.active_core_override = Some(128);
            cfg.mem_channels = 8;
            (label, cfg)
        }))
        .workloads([Workload::MapReduceC])
        .run(&runner);

    let base = frame.at().label(variants[0].0).ipc();
    for (label, _) in variants {
        let p = frame.at().label(label).one();
        let area = model
            .area(&OrganizationArea::nocout(&p.chip.nocout_spec()))
            .total_mm2();
        table.row(vec![
            label.into(),
            format!("{:.3}", p.ipc / base),
            format!("{:.1}", p.metrics.network.mean_latency),
            format!("{area:.2}"),
        ]);
    }
    table.print();
    println!(
        "Takeaway: express links shave the tree hops (visible in the latency \
         column) while the nodes stay 2-input muxes, but at 8 rows the trees \
         contribute only a few cycles of a ~40-cycle LLC round trip, so the \
         end-to-end gain is small — they become interesting at the hundreds of \
         cores the paper projects, where tree height would otherwise grow \
         linearly."
    );
    report_csv("express.csv", &table.csv_records());
}
