//! Load vs. tail latency: open-loop request streams at a ladder of
//! arrival rates on the three evaluated organizations.
//!
//! Scale-out services are judged by tail latency under load, not by
//! throughput alone: an interconnect that looks fine on mean IPC can
//! still blow the p99 once queueing sets in. This experiment drives
//! every core with a deterministic open-loop arrival schedule (requests
//! of a fixed instruction count arriving every INTERVAL cycles, queueing
//! when the core falls behind) and reports the end-to-end service
//! latency percentiles per organization as the arrival interval
//! shrinks. The p99 must be monotone in load on every organization —
//! asserted here, and held by the CI golden-CSV gate.
//!
//! Run with `cargo run --release -p nocout-experiments --bin loadlat`
//! (set `NOCOUT_FAST=1` for the CI smoke configuration, `--jobs N` to
//! spread the grid over N workers). Writes `out/loadlat.csv`.

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::report_csv;
use nocout_experiments::table::Table;
use nocout_workloads::OpenLoopSpec;

const ABOUT: &str = "Load-vs-tail-latency sweep: open-loop request \
arrivals (data-serving service streams, 32 instructions per request) at \
a ladder of arrival intervals on the 3 evaluated organizations, \
reporting per-point service-latency percentiles. Writes out/loadlat.csv.";

/// Arrival intervals in cycles, lightest load first. 32-instruction
/// requests take on the order of a hundred cycles of service, so the
/// ladder spans low utilization through past saturation. (Below ~1600
/// the per-window sample count gets small enough that the p99 is
/// max-dominated noise, so the ladder starts there.)
const INTERVALS: [u64; 6] = [1600, 800, 400, 200, 100, 50];

/// Instructions per request.
const SERVICE: u32 = 32;

fn spec(interval: u64) -> OpenLoopSpec {
    OpenLoopSpec {
        workload: Workload::DataServing,
        interval,
        service_instrs: SERVICE,
    }
}

fn main() {
    let cli = Cli::parse("loadlat", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let frame = nocout_experiments::campaign()
        .orgs(Organization::EVALUATED)
        .workloads(INTERVALS.map(spec))
        .run(&runner);

    let mut table = Table::new(
        "Load vs tail latency (open-loop, data-serving, 32-instr requests)",
        vec![
            "Organization".into(),
            "IntervalCycles".into(),
            "ReqCount".into(),
            "ReqP50".into(),
            "ReqP99".into(),
            "ReqP999".into(),
            "NetRespP99".into(),
        ],
    );
    let mut curves: Vec<(Organization, u64, u64)> = Vec::new();
    for org in Organization::EVALUATED {
        for interval in INTERVALS {
            let p = frame.at().org(org).workload(spec(interval)).one();
            let t = p.metrics.request_latency;
            assert!(
                t.count > 0,
                "{org} interval {interval}: no requests completed in the window"
            );
            curves.push((org, interval, t.p99));
            table.row(vec![
                org.to_string(),
                interval.to_string(),
                t.count.to_string(),
                t.p50.to_string(),
                t.p99.to_string(),
                t.p999.to_string(),
                p.metrics.network.response_tail.p99.to_string(),
            ]);
        }
    }
    table.print();
    report_csv("loadlat.csv", &table.csv_records());

    // The contract the CI golden gate freezes: per organization,
    // shrinking the arrival interval (raising load) never lowers the
    // p99, and every point completed requests in the window. Checked
    // after the table prints so a violation still shows the full curve.
    for w in curves.chunks(INTERVALS.len()) {
        for pair in w.windows(2) {
            let ((org, i0, p0), (_, i1, p1)) = (pair[0], pair[1]);
            assert!(
                p1 >= p0,
                "{org}: p99 {p1} at interval {i1} is below p99 {p0} at the \
                 lighter interval {i0} — tail latency must be monotone in load"
            );
        }
    }
}
