//! Figure 7: system performance normalized to the mesh, per workload,
//! for Mesh / Flattened Butterfly / NOC-Out at 128-bit links.
//!
//! Paper result: FBfly beats the mesh by 7–31% (geomean +17%); NOC-Out
//! matches FBfly on average — slightly below it on Data Serving (LLC bank
//! contention), above it on Web Search (16 cores adjacent to the LLC).
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig7`
//! (set `NOCOUT_FAST=1` for a quick smoke run, `--jobs N` to spread the
//! 18-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};

const ABOUT: &str = "Reproduces Figure 7: the 3 evaluated organizations \
(mesh, flattened butterfly, NOC-Out) x 6 CloudSuite-style workloads at \
128-bit links, normalized to the mesh per workload, with the paper's \
numbers alongside. Writes out/fig7.csv.";

fn main() {
    let cli = Cli::parse("fig7", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let paper_fbfly = [1.31, 1.15, 1.20, 1.12, 1.16, 1.07];
    let paper_nocout = [1.27, 1.15, 1.21, 1.12, 1.16, 1.12];

    let mut table = Table::new(
        "Figure 7 — System performance normalized to mesh (128-bit links)",
        vec![
            "Workload".into(),
            "Mesh".into(),
            "FBfly".into(),
            "NOC-Out".into(),
            "FBfly(paper)".into(),
            "NOC-Out(paper)".into(),
        ],
    );
    // The whole organization × workload grid as one declarative campaign
    // (every point × seed executes as a single parallel batch).
    let frame = campaign()
        .orgs(Organization::EVALUATED)
        .workloads(Workload::ALL)
        .run(&runner);
    let norm = frame.normalize_to(Organization::Mesh);

    for (i, &w) in Workload::ALL.iter().enumerate() {
        let fbn = norm.get(Organization::FlattenedButterfly, w);
        let non = norm.get(Organization::NocOut, w);
        table.row(vec![
            w.name().into(),
            "1.000".into(),
            format!("{fbn:.3}"),
            format!("{non:.3}"),
            format!("{:.2}", paper_fbfly[i]),
            format!("{:.2}", paper_nocout[i]),
        ]);
        let mesh = frame.get(Organization::Mesh, w);
        let fb = frame.get(Organization::FlattenedButterfly, w);
        let no = frame.get(Organization::NocOut, w);
        eprintln!(
            "  [{w}] mesh {:.4}  fbfly {:.4}  nocout {:.4}  (net lat: {:.1} / {:.1} / {:.1})",
            mesh.ipc,
            fb.ipc,
            no.ipc,
            mesh.metrics.network.mean_latency,
            fb.metrics.network.mean_latency,
            no.metrics.network.mean_latency,
        );
    }
    table.row(vec![
        "GMean".into(),
        "1.000".into(),
        format!("{:.3}", norm.geomean(Organization::FlattenedButterfly)),
        format!("{:.3}", norm.geomean(Organization::NocOut)),
        "1.17".into(),
        "1.17".into(),
    ]);
    table.print();
    report_csv("fig7.csv", &table.csv_records());
}
