//! Figure 7: system performance normalized to the mesh, per workload,
//! for Mesh / Flattened Butterfly / NOC-Out at 128-bit links.
//!
//! Paper result: FBfly beats the mesh by 7–31% (geomean +17%); NOC-Out
//! matches FBfly on average — slightly below it on Data Serving (LLC bank
//! contention), above it on Web Search (16 cores adjacent to the LLC).
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig7`
//! (set `NOCOUT_FAST=1` for a quick smoke run, `--jobs N` to spread the
//! 18-point grid over N workers). The campaign grid and the table live in
//! [`nocout_experiments::figures`], shared with the sharded execution
//! path (`shard-run`), whose CSV must stay byte-identical to this one.

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::figures::{fig7_campaign, fig7_table};
use nocout_experiments::report_csv;

const ABOUT: &str = "Reproduces Figure 7: the 3 evaluated organizations \
(mesh, flattened butterfly, NOC-Out) x 6 CloudSuite-style workloads at \
128-bit links, normalized to the mesh per workload, with the paper's \
numbers alongside. Writes out/fig7.csv.";

fn main() {
    let cli = Cli::parse("fig7", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    // The whole organization × workload grid as one declarative campaign
    // (every point × seed executes as a single parallel batch).
    let frame = fig7_campaign().run(&runner);
    for &w in Workload::ALL.iter() {
        let mesh = frame.get(Organization::Mesh, w);
        let fb = frame.get(Organization::FlattenedButterfly, w);
        let no = frame.get(Organization::NocOut, w);
        eprintln!(
            "  [{w}] mesh {:.4}  fbfly {:.4}  nocout {:.4}  (net lat: {:.1} / {:.1} / {:.1})",
            mesh.ipc,
            fb.ipc,
            no.ipc,
            mesh.metrics.network.mean_latency,
            fb.metrics.network.mean_latency,
            no.metrics.network.mean_latency,
        );
    }
    let table = fig7_table(&frame);
    table.print();
    report_csv("fig7.csv", &table.csv_records());
}
