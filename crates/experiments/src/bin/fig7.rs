//! Figure 7: system performance normalized to the mesh, per workload,
//! for Mesh / Flattened Butterfly / NOC-Out at 128-bit links.
//!
//! Paper result: FBfly beats the mesh by 7–31% (geomean +17%); NOC-Out
//! matches FBfly on average — slightly below it on Data Serving (LLC bank
//! contention), above it on Web Search (16 cores adjacent to the LLC).
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig7`
//! (set `NOCOUT_FAST=1` for a quick smoke run, `--jobs N` to spread the
//! 18-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{perf_points, report_csv, Table};
use nocout_sim::stats::geometric_mean;

fn main() {
    let cli = Cli::parse("fig7", "");
    let runner = cli.runner();
    cli.finish();

    let paper_fbfly = [1.31, 1.15, 1.20, 1.12, 1.16, 1.07];
    let paper_nocout = [1.27, 1.15, 1.21, 1.12, 1.16, 1.12];

    let mut table = Table::new(
        "Figure 7 — System performance normalized to mesh (128-bit links)",
        vec![
            "Workload".into(),
            "Mesh".into(),
            "FBfly".into(),
            "NOC-Out".into(),
            "FBfly(paper)".into(),
            "NOC-Out(paper)".into(),
        ],
    );
    // All workload × organization points execute as one parallel batch.
    let points: Vec<(ChipConfig, Workload)> = Workload::ALL
        .iter()
        .flat_map(|&w| {
            Organization::EVALUATED
                .iter()
                .map(move |&org| (ChipConfig::paper(org), w))
        })
        .collect();
    let results = perf_points(&runner, &points);

    let mut fb_norm = Vec::new();
    let mut no_norm = Vec::new();
    let orgs = Organization::EVALUATED.len();
    for (i, w) in Workload::ALL.iter().enumerate() {
        let mesh = &results[i * orgs];
        let fb = &results[i * orgs + 1];
        let no = &results[i * orgs + 2];
        let fbn = fb.ipc / mesh.ipc;
        let non = no.ipc / mesh.ipc;
        fb_norm.push(fbn);
        no_norm.push(non);
        table.row(vec![
            w.name().into(),
            "1.000".into(),
            format!("{fbn:.3}"),
            format!("{non:.3}"),
            format!("{:.2}", paper_fbfly[i]),
            format!("{:.2}", paper_nocout[i]),
        ]);
        eprintln!(
            "  [{w}] mesh {:.4}  fbfly {:.4}  nocout {:.4}  (net lat: {:.1} / {:.1} / {:.1})",
            mesh.ipc,
            fb.ipc,
            no.ipc,
            mesh.metrics.network.mean_latency,
            fb.metrics.network.mean_latency,
            no.metrics.network.mean_latency,
        );
    }
    table.row(vec![
        "GMean".into(),
        "1.000".into(),
        format!("{:.3}", geometric_mean(&fb_norm)),
        format!("{:.3}", geometric_mean(&no_norm)),
        "1.17".into(),
        "1.17".into(),
    ]);
    table.print();
    report_csv("fig7.csv", &table.csv_records());
}
