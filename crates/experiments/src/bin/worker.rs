//! `nocout-worker`: serves shard requests on a local simulation pool.
//!
//! The serving side of `nocout::distribute`: binds a TCP listener (or
//! speaks the same protocol over stdin/stdout with `--stdio`), executes
//! each incoming shard on a local `BatchRunner`, and streams back
//! bit-exact metric records with heartbeats in between. The `shard-run`
//! driver spawns these itself (`--listen 127.0.0.1:0`, parsing the
//! `listening <addr>` banner below), but a worker can equally be started
//! by hand on another machine and reached with `--connect HOST:PORT`.
//!
//! The `--fault-*` flags arm the deterministic fault-injection plans the
//! chaos CI gate and the integration tests drive; see
//! `docs/distributed-campaigns.md`.

use nocout::distribute::{TraceStore, Worker};
use nocout_experiments::cli::{Cli, FaultArgs};
use std::io::Write as _;
use std::net::TcpListener;
use std::time::Duration;

const ABOUT: &str = "Serves nocout shard requests: accepts length-prefixed, \
digest-checked shard frames over TCP (--listen ADDR, announcing `listening \
<addr>` on stdout once bound) or stdin/stdout (--stdio), runs each spec on \
a local simulation pool, and streams back bit-exact metric records with \
heartbeats during long points. --trace-store DIR attaches a \
content-addressed trace store: the worker advertises its held trace hashes \
in the capability handshake, accepts driver-shipped trace archives \
(resumable, hash-verified, installed atomically), and replays trace@HASH \
workloads from the store. The --fault-* flags make the worker misbehave \
deterministically, for chaos tests.";

fn main() {
    let mut cli = Cli::parse(
        "nocout-worker",
        ABOUT,
        &format!(
            "(--listen ADDR | --stdio) [--trace-store DIR] [--heartbeat-ms N] {}",
            FaultArgs::USAGE
        ),
    );
    let mut listen: Option<String> = None;
    let mut stdio = false;
    let mut heartbeat_ms: u64 = 200;
    let mut trace_store: Option<String> = None;
    let mut faults = FaultArgs::default();
    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--listen" => listen = Some(cli.value(&flag)),
            "--stdio" => stdio = true,
            "--heartbeat-ms" => heartbeat_ms = cli.parsed(&flag),
            "--trace-store" => trace_store = Some(cli.value(&flag)),
            _ => {
                if !faults.accept(&flag, &mut cli) {
                    cli.unknown(&flag);
                }
            }
        }
    }
    if stdio == listen.is_some() {
        cli.fail("exactly one of --listen ADDR or --stdio is required");
    }
    if heartbeat_ms == 0 {
        cli.fail("--heartbeat-ms must be positive");
    }
    let runner = cli.runner();
    let mut worker = Worker::new(runner)
        .with_heartbeat(Duration::from_millis(heartbeat_ms))
        .with_faults(faults.plan());
    if let Some(dir) = trace_store {
        match TraceStore::open(&dir) {
            Ok(store) => worker = worker.with_trace_store(store),
            Err(e) => cli.fail(&format!("cannot open trace store `{dir}`: {e}")),
        }
    }

    if stdio {
        cli.finish();
        if let Err(e) = worker.serve_stdio() {
            eprintln!("nocout-worker: {e}");
            std::process::exit(1);
        }
        return;
    }

    let addr = listen.expect("checked above");
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => cli.fail(&format!("cannot bind `{addr}`: {e}")),
    };
    cli.finish();
    let local = listener.local_addr().expect("bound listener has an address");
    // The banner the driver's process-endpoint spawner parses: keep the
    // `listening <addr>` shape in sync with `nocout::distribute::driver`.
    println!("listening {local}");
    std::io::stdout().flush().expect("flush the listen banner");
    if let Err(e) = worker.serve_listener(&listener) {
        eprintln!("nocout-worker: {e}");
        std::process::exit(1);
    }
}
