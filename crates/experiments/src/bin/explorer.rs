//! Free-form configuration explorer: run any organization × workload ×
//! knob combination from the command line and dump the full metrics.
//!
//! ```text
//! cargo run --release -p nocout-experiments --bin explorer -- \
//!     --org nocout --workload data-serving --cores 64 --width 128 \
//!     --seeds 3 --banks 2
//! ```

use nocout::prelude::*;
use nocout_experiments::measurement_window;
use nocout_sim::config::SeedSet;

fn usage() -> ! {
    eprintln!(
        "usage: explorer [--org mesh|fbfly|nocout|ideal|zeromesh] \
         [--workload NAME] [--cores N] [--width BITS] [--banks N] \
         [--concentration N] [--express] [--llc-rows N] [--seeds N]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut org = Organization::NocOut;
    let mut workload = Workload::DataServing;
    let mut cores = 64usize;
    let mut width = 128u32;
    let mut banks = 2usize;
    let mut concentration = 1usize;
    let mut express = false;
    let mut llc_rows = 1usize;
    let mut seeds = 1usize;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--org" => {
                org = match val().as_str() {
                    "mesh" => Organization::Mesh,
                    "fbfly" => Organization::FlattenedButterfly,
                    "nocout" => Organization::NocOut,
                    "ideal" => Organization::IdealWire,
                    "zeromesh" => Organization::ZeroLoadMesh,
                    _ => usage(),
                }
            }
            "--workload" => {
                workload = match val().as_str() {
                    "data-serving" => Workload::DataServing,
                    "mapreduce-c" => Workload::MapReduceC,
                    "mapreduce-w" => Workload::MapReduceW,
                    "sat-solver" => Workload::SatSolver,
                    "web-frontend" => Workload::WebFrontend,
                    "web-search" => Workload::WebSearch,
                    _ => usage(),
                }
            }
            "--cores" => cores = val().parse().unwrap_or_else(|_| usage()),
            "--width" => width = val().parse().unwrap_or_else(|_| usage()),
            "--banks" => banks = val().parse().unwrap_or_else(|_| usage()),
            "--concentration" => concentration = val().parse().unwrap_or_else(|_| usage()),
            "--express" => express = true,
            "--llc-rows" => llc_rows = val().parse().unwrap_or_else(|_| usage()),
            "--seeds" => seeds = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let mut chip = ChipConfig::with_cores(org, cores).with_link_width(width);
    chip.banks_per_llc_tile = banks;
    chip.concentration = concentration;
    chip.express_links = express;
    chip.llc_rows = llc_rows;

    let spec = RunSpec {
        chip,
        workload,
        window: measurement_window(),
        seed: 1,
    };
    let result = nocout::run_replicated(&spec, &SeedSet::consecutive(1, seeds.max(1)));
    let m = &result.last;

    println!("configuration : {org} / {workload} / {cores} cores / {width}-bit links");
    println!(
        "performance   : aggregate IPC {:.4} ± {:.4} (95% CI over {seeds} seed(s))",
        result.mean_ipc, result.ci95
    );
    println!(
        "cores         : {} active, fetch stall {:.1}%",
        m.active_cores,
        m.fetch_stall_fraction * 100.0
    );
    println!(
        "LLC           : {} accesses, hit {:.2}, snoop rate {:.2}%, {} writebacks",
        m.llc.accesses,
        m.llc.hit_ratio(),
        m.llc.snoop_percent(),
        m.llc.writebacks
    );
    println!(
        "network       : {} packets, latency mean {:.1} (req {:.1} / resp {:.1}), \
         p50 ≤ {} / p99 ≤ {} cycles",
        m.network.packets,
        m.network.mean_latency,
        m.network.mean_request_latency,
        m.network.mean_response_latency,
        m.network.p50_latency,
        m.network.p99_latency
    );
    println!(
        "memory        : {} reads, {} writes",
        m.memory.reads, m.memory.writes
    );
}
