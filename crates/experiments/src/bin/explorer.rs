//! Free-form configuration explorer: run any organization × workload ×
//! knob combination from the command line and dump the full metrics.
//!
//! ```text
//! cargo run --release -p nocout-experiments --bin explorer -- \
//!     --org nocout --workload data-serving --cores 64 --width 128 \
//!     --seeds 3 --banks 2 --jobs 4
//! ```

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::campaign;
use nocout_sim::config::SeedSet;

const ABOUT: &str = "Free-form single-point explorer: builds one chip \
configuration from the flags below, runs the chosen workload (synthetic \
or trace:PATH) over N seeds, and dumps the full metrics (cores, LLC, \
network, memory).";

const USAGE: &str = "[--org mesh|fbfly|nocout|ideal|zeromesh] [--workload NAME|trace:PATH] \
     [--cores N] [--width BITS] [--banks N] [--concentration N] [--express] \
     [--llc-rows N] [--seeds N]";

fn main() {
    let mut cli = Cli::parse("explorer", ABOUT, USAGE);
    let mut org = Organization::NocOut;
    let mut workload: WorkloadClass = Workload::DataServing.into();
    let mut cores = 64usize;
    let mut width = 128u32;
    let mut banks = 2usize;
    let mut concentration = 1usize;
    let mut express = false;
    let mut llc_rows = 1usize;
    let mut seeds = 1usize;

    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--org" => {
                let v = cli.value(&flag);
                org = match v.as_str() {
                    "mesh" => Organization::Mesh,
                    "fbfly" => Organization::FlattenedButterfly,
                    "nocout" => Organization::NocOut,
                    "ideal" => Organization::IdealWire,
                    "zeromesh" => Organization::ZeroLoadMesh,
                    _ => cli.fail(&format!(
                        "invalid value for `--org`: `{v}` \
                         (expected mesh|fbfly|nocout|ideal|zeromesh)"
                    )),
                }
            }
            "--workload" => workload = cli.workload_class(&flag),
            "--cores" => cores = cli.parsed(&flag),
            "--width" => width = cli.parsed(&flag),
            "--banks" => banks = cli.parsed(&flag),
            "--concentration" => concentration = cli.parsed(&flag),
            "--express" => express = true,
            "--llc-rows" => llc_rows = cli.parsed(&flag),
            "--seeds" => seeds = cli.parsed(&flag),
            _ => cli.unknown(&flag),
        }
    }
    let runner = cli.runner();
    cli.finish();

    let mut chip = ChipConfig::with_cores(org, cores).with_link_width(width);
    chip.banks_per_llc_tile = banks;
    chip.concentration = concentration;
    chip.express_links = express;
    chip.llc_rows = llc_rows;

    // Seed-insensitive classes (trace replay) collapse to one run — the
    // shared rule of `nocout::runner::replication_seeds`; clamping here
    // too keeps the printed "over N seed(s)" honest.
    if !workload.is_seed_sensitive() && seeds > 1 {
        eprintln!("note: trace replay is seed-independent; running 1 run instead of {seeds}");
        seeds = 1;
    }
    // A single-point campaign: the explorer is the degenerate grid.
    let frame = campaign()
        .fixed(chip)
        .workloads([workload.clone()])
        .seeds(&SeedSet::consecutive(1, seeds.max(1)))
        .run(&runner);
    let p = &frame.results()[0];
    let m = &p.metrics;

    println!("configuration : {org} / {workload} / {cores} cores / {width}-bit links");
    println!(
        "performance   : aggregate IPC {:.4} ± {:.4} (95% CI over {seeds} seed(s))",
        p.ipc, p.ci95
    );
    println!(
        "cores         : {} active, fetch stall {:.1}%",
        m.active_cores,
        m.fetch_stall_fraction * 100.0
    );
    println!(
        "LLC           : {} accesses, hit {:.2}, snoop rate {:.2}%, {} writebacks",
        m.llc.accesses,
        m.llc.hit_ratio(),
        m.llc.snoop_percent(),
        m.llc.writebacks
    );
    println!(
        "network       : {} packets, latency mean {:.1} (req {:.1} / resp {:.1}), \
         p50 ≤ {} / p99 ≤ {} cycles",
        m.network.packets,
        m.network.mean_latency,
        m.network.mean_request_latency,
        m.network.mean_response_latency,
        m.network.p50_latency,
        m.network.p99_latency
    );
    println!(
        "memory        : {} reads, {} writes",
        m.memory.reads, m.memory.writes
    );
}
