//! Diagnostic probe: stall composition and miss rates per organization.
//! Not part of the paper's figures; used to calibrate the workload models.

use nocout::prelude::*;
use nocout_experiments::perf_point;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = match args.get(1).map(|s| s.as_str()) {
        Some("ws") => Workload::WebSearch,
        Some("sat") => Workload::SatSolver,
        _ => Workload::DataServing,
    };
    for org in [Organization::Mesh, Organization::NocOut] {
        let p = perf_point(ChipConfig::paper(org), workload);
        let m = &p.metrics;
        let instr = m.instructions as f64;
        println!(
            "{org:>22}: ipc/core {:.3}  fetch_stall {:.1}%  LLC-acc/ki {:.1}  LLC hit {:.2} \
             snoop {:.2}%  req_lat {:.1} resp_lat {:.1}  mem reads/ki {:.1}",
            m.aggregate_ipc() / m.active_cores as f64,
            m.fetch_stall_fraction * 100.0,
            m.llc.accesses as f64 / instr * 1000.0,
            m.llc.hit_ratio(),
            m.llc.snoop_percent(),
            m.network.mean_request_latency,
            m.network.mean_response_latency,
            m.memory.reads as f64 / instr * 1000.0,
        );
    }
}
