//! Diagnostic probe: stall composition and miss rates per organization.
//! Not part of the paper's figures; used to calibrate the workload models.
//!
//! Run with `cargo run --release -p nocout-experiments --bin probe -- \
//! [--workload NAME] [--jobs N]` (legacy positional `ws`/`sat` accepted).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::campaign;

const ABOUT: &str = "Calibration probe (not a paper figure): runs one \
workload — synthetic or trace:PATH — on the mesh and NOC-Out and prints \
stall composition, LLC/memory rates and network latencies side by side.";

fn main() {
    let mut cli = Cli::parse("probe", ABOUT, "[--workload NAME|trace:PATH | ws|sat]");
    let mut workload: WorkloadClass = Workload::DataServing.into();
    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--workload" => workload = cli.workload_class(&flag),
            // Legacy positional shorthands.
            "ws" => workload = Workload::WebSearch.into(),
            "sat" => workload = Workload::SatSolver.into(),
            _ => cli.unknown(&flag),
        }
    }
    let runner = cli.runner();
    cli.finish();

    let orgs = [Organization::Mesh, Organization::NocOut];
    let frame = campaign()
        .orgs(orgs)
        .workloads([workload.clone()])
        .run(&runner);
    for org in orgs {
        let m = &frame.get(org, workload.clone()).metrics;
        let instr = m.instructions as f64;
        println!(
            "{org:>22}: ipc/core {:.3}  fetch_stall {:.1}%  LLC-acc/ki {:.1}  LLC hit {:.2} \
             snoop {:.2}%  req_lat {:.1} resp_lat {:.1}  mem reads/ki {:.1}",
            m.aggregate_ipc() / m.active_cores as f64,
            m.fetch_stall_fraction * 100.0,
            m.llc.accesses as f64 / instr * 1000.0,
            m.llc.hit_ratio(),
            m.llc.snoop_percent(),
            m.network.mean_request_latency,
            m.network.mean_response_latency,
            m.memory.reads as f64 / instr * 1000.0,
        );
    }
}
