//! Link/router utilization profile of the NOC-Out fabric under bilateral
//! traffic — shows where the flits actually go (§4's design argument:
//! almost everything funnels through the LLC row, so that is where the
//! connectivity budget belongs).
//!
//! Run with `cargo run --release -p nocout-experiments --bin heatmap`.

use nocout_experiments::cli::Cli;
use nocout_experiments::Table;
use nocout_noc::rng_traffic::run_bilateral_traffic;
use nocout_noc::topology::nocout::{build_nocout, NocOutSpec};
use nocout_noc::RouterId;

const ABOUT: &str = "Profiles flit activity by region (LLC row vs tree \
nodes) of the NOC-Out fabric under uniform bilateral traffic — a \
network-level run outside the campaign grid, showing why the rich \
topology budget belongs in the LLC row.";

fn main() {
    // Single network-level traffic run — nothing to fan out, but the
    // shared CLI keeps `--jobs`/`--help` handling uniform across bins.
    let cli = Cli::parse("heatmap", ABOUT, "");
    cli.finish();
    let spec = NocOutSpec::paper_64();
    let mut built = build_nocout(&spec);
    let report = run_bilateral_traffic(&mut built, 0.5, 50_000, 1);

    let llc_routers = spec.columns * spec.llc_rows;
    let tree_nodes = built.network.num_routers() - llc_routers;
    let mut llc_flits = 0u64;
    let mut tree_flits = 0u64;
    for r in 0..built.network.num_routers() {
        let flits: u64 = built
            .network
            .router(RouterId(r as u16))
            .flits_sent_per_port()
            .iter()
            .sum();
        if r < llc_routers {
            llc_flits += flits;
        } else {
            tree_flits += flits;
        }
    }

    let mut table = Table::new(
        "NOC-Out flit activity by region (uniform bilateral traffic)",
        vec![
            "Region".into(),
            "Routers".into(),
            "Flits switched".into(),
            "Flits/router".into(),
        ],
    );
    table.row(vec![
        "LLC row (flattened butterfly)".into(),
        llc_routers.to_string(),
        llc_flits.to_string(),
        format!("{:.0}", llc_flits as f64 / llc_routers as f64),
    ]);
    table.row(vec![
        "Tree nodes (reduction + dispersion)".into(),
        tree_nodes.to_string(),
        tree_flits.to_string(),
        format!("{:.0}", tree_flits as f64 / tree_nodes as f64),
    ]);
    table.print();
    println!(
        "delivered {} packets, mean latency {:.1} cycles",
        report.packets, report.mean_latency
    );
    println!(
        "The LLC routers each switch ~{}x the flits of a tree node — the traffic\n\
         concentration that justifies spending the rich topology only there (§6.2).",
        ((llc_flits as f64 / llc_routers as f64) / (tree_flits as f64 / tree_nodes as f64))
            .round()
    );
}
