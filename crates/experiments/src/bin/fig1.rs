//! Figure 1: effect of distance (growing with core count) on per-core
//! performance for ideal and mesh interconnects, on Data Serving and
//! MapReduce-W, without contention.
//!
//! Paper result: per-core performance degrades as cores are added because
//! the die grows and the LLC moves farther away; at 64 cores the mesh
//! trails the ideal (wire-only) fabric by ~22% on average.
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig1`.

use nocout::prelude::*;
use nocout_experiments::{perf_point, write_csv, Table};
use std::path::Path;

fn main() {
    let core_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let workloads = [Workload::DataServing, Workload::MapReduceW];

    let mut table = Table::new(
        "Figure 1 — Per-core performance vs core count (normalized to 1 core), contention-free",
        vec![
            "Cores".into(),
            "DataServing(Ideal)".into(),
            "DataServing(Mesh)".into(),
            "MapReduce-W(Ideal)".into(),
            "MapReduce-W(Mesh)".into(),
        ],
    );

    // Per-core performance for every (workload, fabric, cores) point,
    // normalized to the same workload at 1 core on the same fabric kind's
    // 1-core value (the paper normalizes to one core).
    let mut series: Vec<Vec<f64>> = Vec::new();
    for w in workloads {
        for org in [Organization::IdealWire, Organization::ZeroLoadMesh] {
            let mut vals = Vec::new();
            for &n in &core_counts {
                let p = perf_point(ChipConfig::with_cores(org, n), w);
                vals.push(p.metrics.per_core_performance());
                eprintln!("  [{w} / {org} / {n} cores] per-core {:.4}", vals.last().unwrap());
            }
            let base = vals[0];
            series.push(vals.iter().map(|v| v / base).collect());
        }
    }
    let mut gap_at_64 = Vec::new();
    for (i, &n) in core_counts.iter().enumerate() {
        table.row(vec![
            n.to_string(),
            format!("{:.3}", series[0][i]),
            format!("{:.3}", series[1][i]),
            format!("{:.3}", series[2][i]),
            format!("{:.3}", series[3][i]),
        ]);
        if n == 64 {
            gap_at_64.push(1.0 - series[1][i] / series[0][i]);
            gap_at_64.push(1.0 - series[3][i] / series[2][i]);
        }
    }
    table.print();
    let avg_gap = gap_at_64.iter().sum::<f64>() / gap_at_64.len() as f64;
    println!(
        "Mesh vs Ideal gap at 64 cores: {:.0}% (paper: ~22%)",
        avg_gap * 100.0
    );
    let _ = write_csv(Path::new("fig1.csv"), &table.csv_records());
    println!("(wrote fig1.csv)");
}
