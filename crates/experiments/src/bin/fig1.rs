//! Figure 1: effect of distance (growing with core count) on per-core
//! performance for ideal and mesh interconnects, on Data Serving and
//! MapReduce-W, without contention.
//!
//! Paper result: per-core performance degrades as cores are added because
//! the die grows and the LLC moves farther away; at 64 cores the mesh
//! trails the ideal (wire-only) fabric by ~22% on average.
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig1`
//! (add `--jobs N` to spread the 28-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};

const ABOUT: &str = "Reproduces Figure 1: per-core performance vs core \
count (1..64) on the two contention-free fabrics (ideal wire, zero-load \
mesh) for Data Serving and MapReduce-W, normalized to 1 core. Writes \
out/fig1.csv.";

fn main() {
    let cli = Cli::parse("fig1", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let core_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let workloads = [Workload::DataServing, Workload::MapReduceW];
    let fabrics = [Organization::IdealWire, Organization::ZeroLoadMesh];

    let mut table = Table::new(
        "Figure 1 — Per-core performance vs core count (normalized to 1 core), contention-free",
        vec![
            "Cores".into(),
            "DataServing(Ideal)".into(),
            "DataServing(Mesh)".into(),
            "MapReduce-W(Ideal)".into(),
            "MapReduce-W(Mesh)".into(),
        ],
    );

    // The whole fabric × core-count × workload grid as one campaign; the
    // paper normalizes each (workload, fabric) series to its 1-core point.
    let frame = campaign()
        .orgs(fabrics)
        .cores(core_counts)
        .workloads(workloads)
        .run(&runner);

    let mut series: Vec<Vec<f64>> = Vec::new();
    for &w in &workloads {
        for &org in &fabrics {
            let vals: Vec<f64> = core_counts
                .iter()
                .map(|&n| {
                    frame
                        .at()
                        .org(org)
                        .cores(n)
                        .workload(w)
                        .one()
                        .metrics
                        .per_core_performance()
                })
                .collect();
            for (n, v) in core_counts.iter().zip(&vals) {
                eprintln!("  [{w} / {org} / {n} cores] per-core {v:.4}");
            }
            let base = vals[0];
            series.push(vals.iter().map(|v| v / base).collect());
        }
    }
    let mut gap_at_64 = Vec::new();
    for (i, &n) in core_counts.iter().enumerate() {
        table.row(vec![
            n.to_string(),
            format!("{:.3}", series[0][i]),
            format!("{:.3}", series[1][i]),
            format!("{:.3}", series[2][i]),
            format!("{:.3}", series[3][i]),
        ]);
        if n == 64 {
            gap_at_64.push(1.0 - series[1][i] / series[0][i]);
            gap_at_64.push(1.0 - series[3][i] / series[2][i]);
        }
    }
    table.print();
    let avg_gap = gap_at_64.iter().sum::<f64>() / gap_at_64.len() as f64;
    println!(
        "Mesh vs Ideal gap at 64 cores: {:.0}% (paper: ~22%)",
        avg_gap * 100.0
    );
    report_csv("fig1.csv", &table.csv_records());
}
