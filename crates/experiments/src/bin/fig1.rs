//! Figure 1: effect of distance (growing with core count) on per-core
//! performance for ideal and mesh interconnects, on Data Serving and
//! MapReduce-W, without contention.
//!
//! Paper result: per-core performance degrades as cores are added because
//! the die grows and the LLC moves farther away; at 64 cores the mesh
//! trails the ideal (wire-only) fabric by ~22% on average.
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig1`
//! (add `--jobs N` to spread the 28-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{perf_points, report_csv, Table};

fn main() {
    let cli = Cli::parse("fig1", "");
    let runner = cli.runner();
    cli.finish();

    let core_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let workloads = [Workload::DataServing, Workload::MapReduceW];
    let fabrics = [Organization::IdealWire, Organization::ZeroLoadMesh];

    let mut table = Table::new(
        "Figure 1 — Per-core performance vs core count (normalized to 1 core), contention-free",
        vec![
            "Cores".into(),
            "DataServing(Ideal)".into(),
            "DataServing(Mesh)".into(),
            "MapReduce-W(Ideal)".into(),
            "MapReduce-W(Mesh)".into(),
        ],
    );

    // Per-core performance for every (workload, fabric, cores) point,
    // normalized to the same workload at 1 core on the same fabric kind's
    // 1-core value (the paper normalizes to one core). The whole grid
    // executes as one parallel batch.
    let mut points: Vec<(ChipConfig, Workload)> = Vec::new();
    for &w in &workloads {
        for &org in &fabrics {
            for &n in &core_counts {
                points.push((ChipConfig::with_cores(org, n), w));
            }
        }
    }
    let results = perf_points(&runner, &points);

    let mut series: Vec<Vec<f64>> = Vec::new();
    for (si, chunk) in results.chunks(core_counts.len()).enumerate() {
        let w = workloads[si / fabrics.len()];
        let org = fabrics[si % fabrics.len()];
        let vals: Vec<f64> = chunk
            .iter()
            .map(|p| p.metrics.per_core_performance())
            .collect();
        for (n, v) in core_counts.iter().zip(&vals) {
            eprintln!("  [{w} / {org} / {n} cores] per-core {v:.4}");
        }
        let base = vals[0];
        series.push(vals.iter().map(|v| v / base).collect());
    }
    let mut gap_at_64 = Vec::new();
    for (i, &n) in core_counts.iter().enumerate() {
        table.row(vec![
            n.to_string(),
            format!("{:.3}", series[0][i]),
            format!("{:.3}", series[1][i]),
            format!("{:.3}", series[2][i]),
            format!("{:.3}", series[3][i]),
        ]);
        if n == 64 {
            gap_at_64.push(1.0 - series[1][i] / series[0][i]);
            gap_at_64.push(1.0 - series[3][i] / series[2][i]);
        }
    }
    table.print();
    let avg_gap = gap_at_64.iter().sum::<f64>() / gap_at_64.len() as f64;
    println!(
        "Mesh vs Ideal gap at 64 cores: {:.0}% (paper: ~22%)",
        avg_gap * 100.0
    );
    report_csv("fig1.csv", &table.csv_records());
}
