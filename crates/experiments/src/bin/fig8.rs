//! Figure 8: NoC area breakdown (links / buffers / crossbars) for the
//! three organizations at 128-bit links.
//!
//! Paper result: flattened butterfly ≈ 23 mm² (≈ 7× mesh), mesh ≈ 3.5 mm²,
//! NOC-Out ≈ 2.5 mm² (28% below mesh, 9× below FBfly); within NOC-Out each
//! tree network contributes ~18% and the LLC butterfly ~64% of the area.
//!
//! Run with `cargo run --release -p nocout-experiments --bin fig8`.

use nocout_experiments::cli::Cli;
use nocout_experiments::{report_csv, Table};
use nocout_noc::topology::fbfly::FbflySpec;
use nocout_noc::topology::mesh::MeshSpec;
use nocout_noc::topology::nocout::NocOutSpec;
use nocout_tech::area::{NocAreaModel, OrganizationArea};

const ABOUT: &str = "Reproduces Figure 8: the analytic 32nm NoC area \
breakdown (links/buffers/crossbars) of the 3 evaluated organizations at \
128-bit links — no simulation runs. Writes out/fig8.csv.";

fn main() {
    // Analytic models only — no simulation, so `--jobs` has nothing to
    // parallelize, but the shared CLI keeps flag handling uniform.
    let cli = Cli::parse("fig8", ABOUT, "");
    cli.finish();
    let model = NocAreaModel::paper_32nm();
    let orgs = [
        (OrganizationArea::mesh(&MeshSpec::paper_64()), 3.5),
        (OrganizationArea::fbfly(&FbflySpec::paper_64()), 23.0),
        (OrganizationArea::nocout(&NocOutSpec::paper_64()), 2.5),
    ];

    let mut table = Table::new(
        "Figure 8 — NOC area breakdown (mm²)",
        vec![
            "Organization".into(),
            "Links".into(),
            "Buffers".into(),
            "Crossbars".into(),
            "Total".into(),
            "Total (paper)".into(),
        ],
    );
    for (org, paper_total) in &orgs {
        let r = model.area(org);
        table.row(vec![
            org.name.clone(),
            format!("{:.2}", r.links_mm2),
            format!("{:.2}", r.buffers_mm2),
            format!("{:.2}", r.crossbars_mm2),
            format!("{:.2}", r.total_mm2()),
            format!("{paper_total:.1}"),
        ]);
    }
    table.print();

    // NOC-Out internal shares (§6.2).
    let spec = NocOutSpec::paper_64();
    let full = model.area(&OrganizationArea::nocout(&spec)).total_mm2();
    let llc = model
        .area(&OrganizationArea::nocout_llc_region_only(&spec))
        .total_mm2();
    println!(
        "NOC-Out internals: LLC butterfly {:.0}% of total (paper: 64%), \
         both tree networks together {:.0}% (paper: ~36%)",
        100.0 * llc / full,
        100.0 * (full - llc) / full
    );
    let mesh = model.area(&orgs[0].0).total_mm2();
    let fb = model.area(&orgs[1].0).total_mm2();
    println!(
        "Ratios: FBfly/Mesh {:.1}x (paper ~7x) — FBfly/NOC-Out {:.1}x (paper ~9x) — \
         NOC-Out saves {:.0}% vs Mesh (paper 28%)",
        fb / mesh,
        fb / full,
        100.0 * (1.0 - full / mesh)
    );
    report_csv("fig8.csv", &table.csv_records());
}
