//! Link-width sweep: the serialization-latency mechanism behind Fig. 9,
//! traced point by point for all three organizations.
//!
//! The paper argues that narrowing the mesh mostly adds serialization
//! latency that stays "dwarfed by the header delay", while the flattened
//! butterfly — whose whole advantage is low header delay — is devastated.
//! This sweep exposes that mechanism directly (NOC-Out, with its shared
//! tree links, is the most serialization-sensitive of all — which is
//! precisely why its ability to keep full-width links inside a mesh-class
//! area budget is the winning move in Fig. 9).
//!
//! Run with `cargo run --release -p nocout-experiments --bin sweep`
//! (add `--jobs N` to spread the 12-point grid over N workers).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, report_csv, Table};

const ABOUT: &str = "Sweeps link width (128/64/32/16 bits) over the 3 \
evaluated organizations on MapReduce-W, normalizing each organization to \
its own 128-bit point — the serialization mechanism behind Figure 9. \
Writes out/sweep.csv.";

fn main() {
    let cli = Cli::parse("sweep", ABOUT, "");
    let runner = cli.runner();
    cli.finish();

    let widths = [128u32, 64, 32, 16];
    let workload = Workload::MapReduceW;
    let mut table = Table::new(
        "Link-width sweep — aggregate IPC normalized to each organization at 128 bits (MapReduce-W)",
        vec![
            "Width (bits)".into(),
            "Mesh".into(),
            "FBfly".into(),
            "NOC-Out".into(),
            "Mesh resp lat".into(),
            "FBfly resp lat".into(),
            "NOC-Out resp lat".into(),
        ],
    );
    // The whole organization × width grid as one campaign.
    let frame = campaign()
        .orgs(Organization::EVALUATED)
        .link_bits(widths)
        .workloads([workload])
        .run(&runner);

    for &w in &widths {
        let mut cells = vec![w.to_string()];
        let mut lats = Vec::new();
        for org in Organization::EVALUATED {
            let p = frame.at().org(org).link_bits(w).one();
            let base = frame.at().org(org).link_bits(widths[0]).ipc();
            cells.push(format!("{:.3}", p.ipc / base));
            lats.push(format!("{:.1}", p.metrics.network.mean_response_latency));
        }
        cells.extend(lats);
        table.row(cells);
    }
    table.print();
    println!(
        "Expectation: the mesh degrades most gently (its header delay dwarfs \
         serialization); the butterfly and NOC-Out, whose advantage is low header \
         delay, lose it to serialization — NOC-Out fastest of all because its \
         shared tree links serialize whole cache lines. This is why Fig. 9 is an \
         asymmetric contest: NOC-Out fits the 2.5 mm² budget at full 128-bit \
         width, and only its rivals must narrow."
    );
    report_csv("sweep.csv", &table.csv_records());
}
