//! Trace capture → replay round trip: records multi-million-instruction
//! traces from each CloudSuite-style profile, replays them as the
//! `trace:PATH` workload class, and asserts the replayed chip metrics are
//! bit-identical to the synthetic run that produced the streams.
//!
//! Two artifact files land under `out/` with one canonically-formatted
//! metric line per workload — `trace_synth.txt` from the synthetic runs
//! and `trace_replay.txt` from the replays — so CI can `cmp` them as a
//! byte-identity gate. Captured trace directories live under
//! `out/traces/<workload>/` and are removed after verification unless
//! `--keep` is given (replay them later with any binary's
//! `--workload trace:out/traces/<workload>`).
//!
//! Run with `cargo run --release -p nocout-experiments --bin trace`
//! (`NOCOUT_FAST=1` shortens the window and therefore the captures).

use nocout::prelude::*;
use nocout_experiments::cli::Cli;
use nocout_experiments::{campaign, measurement_window, out_path, Table};
use std::fmt::Write as _;

const ABOUT: &str = "Captures a multi-million-instruction trace from each \
CloudSuite-style profile on the mesh, replays it as the trace:PATH \
workload class, asserts the replayed chip metrics are bit-identical, and \
writes out/trace_synth.txt + out/trace_replay.txt for the CI cmp gate.";

/// One canonical line per run: every count verbatim, every float as the
/// hex of its IEEE-754 bits, so byte equality of the two artifact files
/// is exactly metric bit-identity.
fn metric_line(workload: &str, m: &SystemMetrics) -> String {
    let mut s = format!(
        "{workload}: cores {} cycles {} instr {} ipc {:016x} fetch_stall {:016x} \
         llc {} {} {} {} {} {} net {} {:016x} {} {} mem {} {}",
        m.active_cores,
        m.cycles,
        m.instructions,
        m.aggregate_ipc().to_bits(),
        m.fetch_stall_fraction.to_bits(),
        m.llc.accesses,
        m.llc.hits,
        m.llc.misses,
        m.llc.snoops_sent,
        m.llc.snooping_accesses,
        m.llc.writebacks,
        m.network.packets,
        m.network.mean_latency.to_bits(),
        m.network.p50_latency,
        m.network.p99_latency,
        m.memory.reads,
        m.memory.writes,
    );
    let _ = write!(s, " per_core");
    for ipc in &m.per_core_ipc {
        let _ = write!(s, " {:016x}", ipc.to_bits());
    }
    s
}

fn main() {
    let mut cli = Cli::parse(
        "trace",
        ABOUT,
        "[--workload NAME] [--seed S] [--instrs N] [--keep]",
    );
    let mut only: Option<Workload> = None;
    let mut seed = 1u64;
    let mut instrs_override: Option<u64> = None;
    let mut keep = false;
    while let Some(flag) = cli.next_flag() {
        match flag.as_str() {
            "--workload" => only = Some(cli.workload(&flag)),
            "--seed" => seed = cli.parsed(&flag),
            "--instrs" => instrs_override = Some(cli.parsed(&flag)),
            "--keep" => keep = true,
            _ => cli.unknown(&flag),
        }
    }
    let runner = cli.runner();
    cli.finish();

    let window = measurement_window();
    let instrs_per_core = instrs_override.unwrap_or_else(|| trace_capture_len(&window));
    let workloads: Vec<Workload> = match only {
        Some(w) => vec![w],
        None => Workload::ALL.to_vec(),
    };

    let mut table = Table::new(
        "Trace capture → replay identity (Mesh, Table 1 configuration)",
        vec![
            "Workload".into(),
            "Streams".into(),
            "Instrs/core".into(),
            "Synth IPC".into(),
            "Replay IPC".into(),
            "Identical".into(),
        ],
    );
    let mut synth_lines = String::new();
    let mut replay_lines = String::new();
    let chip = ChipConfig::paper(Organization::Mesh);
    for w in workloads {
        let tag = format!("{w}").to_lowercase().replace(' ', "-");
        let dir = out_path("traces").join(&tag);
        let set = capture_synthetic_trace(chip, w, seed, &dir, instrs_per_core)
            .unwrap_or_else(|e| panic!("{w}: capture failed: {e}"));
        // Synthetic source and its replayed capture are one campaign with
        // a two-element workload axis — `trace:PATH` composes with any
        // grid — so `--jobs` and `--cache` apply to the replays exactly
        // as to the synthetic runs.
        let frame = campaign()
            .fixed(chip)
            .workloads([WorkloadClass::from(w), WorkloadClass::Trace(set.clone())])
            .seeds([seed])
            .window(window)
            .run(&runner);
        let (synth, replay) = (&frame.results()[0].metrics, &frame.results()[1].metrics);

        let a = metric_line(&tag, synth);
        let b = metric_line(&tag, replay);
        let identical = a == b;
        synth_lines.push_str(&a);
        synth_lines.push('\n');
        replay_lines.push_str(&b);
        replay_lines.push('\n');
        table.row(vec![
            w.name().into(),
            set.streams().to_string(),
            instrs_per_core.to_string(),
            format!("{:.4}", synth.aggregate_ipc()),
            format!("{:.4}", replay.aggregate_ipc()),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(
            identical,
            "{w}: replayed metrics diverge from the synthetic run\n  synth : {a}\n  replay: {b}"
        );
        if !keep {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    table.print();

    let synth_path = out_path("trace_synth.txt");
    let replay_path = out_path("trace_replay.txt");
    std::fs::write(&synth_path, synth_lines).expect("write trace_synth.txt");
    std::fs::write(&replay_path, replay_lines).expect("write trace_replay.txt");
    println!(
        "Every replay reproduced its synthetic run bit for bit \
         ({instrs_per_core} instrs/core captured per stream)."
    );
    println!(
        "(wrote {} and {} — CI cmps them; traces {})",
        synth_path.display(),
        replay_path.display(),
        if keep {
            "kept under out/traces/"
        } else {
            "removed; pass --keep to retain"
        }
    );
}
