//! DDR3-1667 memory-channel model.
//!
//! The chip has four channels (Table 1), interleaved by line address. Each
//! channel services one 64-byte access at a time: an access occupies the
//! channel for [`MemChannelConfig::occupancy`] cycles (data-bus burst,
//! ≈ 12.8 GB/s per channel at 2 GHz) and completes after
//! [`MemChannelConfig::latency`] cycles (activate + CAS + transfer,
//! ≈ 45 ns). Queueing delay emerges from the FIFO.

use nocout_sim::stats::Counter;
use nocout_sim::Cycle;
use std::collections::VecDeque;

/// Timing of one DDR3 channel, in core cycles (2 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemChannelConfig {
    /// Cycles from the access starting service until data is available.
    pub latency: u64,
    /// Cycles the channel stays busy per access (throughput bound).
    pub occupancy: u64,
}

impl Default for MemChannelConfig {
    /// DDR3-1667 at a 2 GHz core clock: ~45 ns access, 64 B burst at
    /// ~12.8 GB/s.
    fn default() -> Self {
        MemChannelConfig {
            latency: 90,
            occupancy: 12,
        }
    }
}

/// A request queued at a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRequest {
    /// A read that completes with a token handed back via
    /// [`MemoryChannel::tick`].
    Read {
        /// Opaque completion token (the chip model uses the message-slab
        /// token of the eventual `MemData`).
        token: u64,
    },
    /// A write (fire-and-forget; consumes bandwidth only).
    Write,
}

/// One DDR3 channel.
///
/// # Examples
///
/// ```
/// use nocout_mem::mem_ctrl::{MemChannelConfig, MemoryChannel, MemRequest};
/// use nocout_sim::Cycle;
///
/// let mut ch = MemoryChannel::new(MemChannelConfig { latency: 10, occupancy: 4 });
/// ch.push(MemRequest::Read { token: 7 }, Cycle(0));
/// let mut done = Vec::new();
/// for t in 0..=10 {
///     done.extend(ch.tick(Cycle(t)));
/// }
/// assert_eq!(done, vec![7]);
/// ```
#[derive(Debug)]
pub struct MemoryChannel {
    cfg: MemChannelConfig,
    queue: VecDeque<MemRequest>,
    busy_until: Cycle,
    completions: VecDeque<(Cycle, u64)>,
    /// Reads serviced.
    pub reads: Counter,
    /// Writes serviced.
    pub writes: Counter,
    /// Total cycles requests spent queued (arrival→service), for
    /// diagnostics.
    pub queue_cycles: Counter,
    arrivals: VecDeque<Cycle>,
    /// Deepest queue observed.
    pub peak_queue: usize,
}

impl MemoryChannel {
    /// Creates an idle channel.
    pub fn new(cfg: MemChannelConfig) -> Self {
        MemoryChannel {
            cfg,
            queue: VecDeque::new(),
            busy_until: Cycle::ZERO,
            completions: VecDeque::new(),
            reads: Counter::new(),
            writes: Counter::new(),
            queue_cycles: Counter::new(),
            arrivals: VecDeque::new(),
            peak_queue: 0,
        }
    }

    /// The timing configuration.
    pub fn config(&self) -> MemChannelConfig {
        self.cfg
    }

    /// Enqueues a request at `now`.
    pub fn push(&mut self, req: MemRequest, now: Cycle) {
        self.queue.push_back(req);
        self.arrivals.push_back(now);
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Requests waiting or in service.
    pub fn inflight(&self) -> usize {
        self.queue.len() + self.completions.len()
    }

    /// Advances one cycle; returns tokens of reads whose data is ready.
    pub fn tick(&mut self, now: Cycle) -> Vec<u64> {
        // Start service on the head request if the data bus is free.
        while self.busy_until <= now {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            let arrived = self.arrivals.pop_front().unwrap_or(now);
            self.queue_cycles.add(now.saturating_since(arrived));
            self.busy_until = now + self.cfg.occupancy;
            match req {
                MemRequest::Read { token } => {
                    self.reads.incr();
                    self.completions.push_back((now + self.cfg.latency, token));
                }
                MemRequest::Write => {
                    self.writes.incr();
                }
            }
        }
        let mut done = Vec::new();
        while let Some(&(at, token)) = self.completions.front() {
            if at <= now {
                self.completions.pop_front();
                done.push(token);
            } else {
                break;
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemChannelConfig {
        MemChannelConfig {
            latency: 20,
            occupancy: 5,
        }
    }

    #[test]
    fn read_completes_after_latency() {
        let mut ch = MemoryChannel::new(cfg());
        ch.push(MemRequest::Read { token: 1 }, Cycle(0));
        for t in 0..20 {
            assert!(ch.tick(Cycle(t)).is_empty(), "not ready at {t}");
        }
        assert_eq!(ch.tick(Cycle(20)), vec![1]);
        assert_eq!(ch.inflight(), 0);
    }

    #[test]
    fn occupancy_serializes_requests() {
        let mut ch = MemoryChannel::new(cfg());
        ch.push(MemRequest::Read { token: 1 }, Cycle(0));
        ch.push(MemRequest::Read { token: 2 }, Cycle(0));
        ch.push(MemRequest::Read { token: 3 }, Cycle(0));
        let mut finish = Vec::new();
        for t in 0..100 {
            for tok in ch.tick(Cycle(t)) {
                finish.push((tok, t));
            }
        }
        assert_eq!(finish, vec![(1, 20), (2, 25), (3, 30)]);
        assert_eq!(ch.queue_cycles.value(), 5 + 10);
    }

    #[test]
    fn writes_consume_bandwidth_without_completion() {
        let mut ch = MemoryChannel::new(cfg());
        ch.push(MemRequest::Write, Cycle(0));
        ch.push(MemRequest::Read { token: 9 }, Cycle(0));
        let mut done = Vec::new();
        for t in 0..100 {
            done.extend(ch.tick(Cycle(t)));
        }
        // Read starts at 5 (after the write's occupancy), data at 25.
        assert_eq!(done, vec![9]);
        assert_eq!(ch.writes.value(), 1);
        assert_eq!(ch.reads.value(), 1);
    }

    #[test]
    fn peak_queue_tracked() {
        let mut ch = MemoryChannel::new(cfg());
        for i in 0..7 {
            ch.push(MemRequest::Read { token: i }, Cycle(0));
        }
        assert_eq!(ch.peak_queue, 7);
    }

    #[test]
    fn default_matches_ddr3_1667() {
        let c = MemChannelConfig::default();
        // 90 cycles at 2 GHz = 45 ns; 12 cycles per 64 B ≈ 10.7 GB/s.
        assert_eq!(c.latency, 90);
        assert_eq!(c.occupancy, 12);
    }
}
