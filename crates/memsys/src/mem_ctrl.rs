//! DDR3-1667 memory-channel model.
//!
//! The chip has four channels (Table 1), interleaved by line address. Each
//! channel services one 64-byte access at a time: an access occupies the
//! channel for [`MemChannelConfig::occupancy`] cycles (data-bus burst,
//! ≈ 12.8 GB/s per channel at 2 GHz) and completes after
//! [`MemChannelConfig::latency`] cycles (activate + CAS + transfer,
//! ≈ 45 ns). Queueing delay emerges from the FIFO.
//!
//! A channel is a pure event consumer: [`MemoryChannel::tick`] on an empty
//! channel is a no-op, and [`MemoryChannel::next_wake`] names the earliest
//! cycle at which a tick can change state, which is what lets the chip
//! model keep idle channels out of its per-cycle scan entirely.

use crate::addr::Addr;
use nocout_sim::ring::Ring;
use nocout_sim::stats::Counter;
use nocout_sim::Cycle;

/// Timing of one DDR3 channel, in core cycles (2 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemChannelConfig {
    /// Cycles from the access starting service until data is available.
    pub latency: u64,
    /// Cycles the channel stays busy per access (throughput bound).
    pub occupancy: u64,
}

impl Default for MemChannelConfig {
    /// DDR3-1667 at a 2 GHz core clock: ~45 ns access, 64 B burst at
    /// ~12.8 GB/s.
    fn default() -> Self {
        MemChannelConfig {
            latency: 90,
            occupancy: 12,
        }
    }
}

/// A request queued at a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRequest {
    /// A read that completes with a token handed back via
    /// [`MemoryChannel::tick`].
    Read {
        /// Opaque completion token (the chip model uses the message-slab
        /// token of the eventual `MemData`).
        token: u64,
        /// Line address (future bank/row modeling keys off this).
        addr: Addr,
    },
    /// A write (fire-and-forget; consumes bandwidth only).
    Write {
        /// Line address.
        addr: Addr,
    },
}

/// One DDR3 channel.
///
/// # Examples
///
/// ```
/// use nocout_mem::addr::Addr;
/// use nocout_mem::mem_ctrl::{MemChannelConfig, MemoryChannel, MemRequest};
/// use nocout_sim::Cycle;
///
/// let mut ch = MemoryChannel::new(MemChannelConfig { latency: 10, occupancy: 4 });
/// ch.push(MemRequest::Read { token: 7, addr: Addr(0x40) }, Cycle(0));
/// let mut done = Vec::new();
/// for t in 0..=10 {
///     ch.tick(Cycle(t), &mut done);
/// }
/// assert_eq!(done, vec![7]);
/// ```
#[derive(Debug)]
pub struct MemoryChannel {
    cfg: MemChannelConfig,
    /// Waiting requests with their arrival stamps — one ring instead of
    /// the former parallel `queue`/`arrivals` `VecDeque` pair, so the two
    /// can never desynchronize and a pop is a single head advance.
    queue: Ring<(MemRequest, Cycle)>,
    busy_until: Cycle,
    completions: Ring<(Cycle, u64)>,
    /// Reads serviced.
    pub reads: Counter,
    /// Writes serviced.
    pub writes: Counter,
    /// Total cycles requests spent queued (arrival→service), for
    /// diagnostics.
    pub queue_cycles: Counter,
    /// Deepest queue observed.
    pub peak_queue: usize,
}

/// Ring sizing hint: a channel's in-flight population is bounded by the
/// LLC tiles' MSHRs that interleave onto it, ≤ 64 tiles × 16–32 MSHRs / 4
/// channels in the paper's configurations; 32 covers the queues actually
/// observed (`peak_queue`) with the ring growing on the rare burst past it.
const CHANNEL_QUEUE_HINT: usize = 32;

impl MemoryChannel {
    /// Creates an idle channel.
    pub fn new(cfg: MemChannelConfig) -> Self {
        MemoryChannel {
            cfg,
            queue: Ring::with_capacity(CHANNEL_QUEUE_HINT),
            busy_until: Cycle::ZERO,
            completions: Ring::with_capacity(CHANNEL_QUEUE_HINT),
            reads: Counter::new(),
            writes: Counter::new(),
            queue_cycles: Counter::new(),
            peak_queue: 0,
        }
    }

    /// The timing configuration.
    pub fn config(&self) -> MemChannelConfig {
        self.cfg
    }

    /// Enqueues a request at `now`.
    pub fn push(&mut self, req: MemRequest, now: Cycle) {
        self.queue.push_back((req, now));
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Requests waiting or in service.
    pub fn inflight(&self) -> usize {
        self.queue.len() + self.completions.len()
    }

    /// Whether a future tick can do anything at all. A channel with no
    /// queued requests and no outstanding completions is inert until the
    /// next [`MemoryChannel::push`]; the chip model drops such channels
    /// from its active set.
    pub fn has_pending_work(&self) -> bool {
        !self.queue.is_empty() || !self.completions.is_empty()
    }

    /// The earliest cycle at which a tick changes state: the data bus
    /// freeing up for the next queued request, or the first completion
    /// maturing. `None` when the channel is inert (see
    /// [`MemoryChannel::has_pending_work`]). Ticks strictly before the
    /// returned cycle are provably no-ops, which is the contract the
    /// chip-level fast-forward relies on.
    pub fn next_wake(&self) -> Option<Cycle> {
        let service = if self.queue.is_empty() {
            None
        } else {
            Some(self.busy_until)
        };
        let completion = self.completions.front().map(|&(at, _)| at);
        match (service, completion) {
            (Some(s), Some(c)) => Some(s.min(c)),
            (s, c) => s.or(c),
        }
    }

    /// Advances one cycle; tokens of reads whose data is ready are
    /// appended to `done` (which is *not* cleared — the caller owns the
    /// scratch buffer, so the steady state allocates nothing).
    pub fn tick(&mut self, now: Cycle, done: &mut Vec<u64>) {
        // Start service on the head request if the data bus is free.
        while self.busy_until <= now {
            let Some((req, arrived)) = self.queue.pop_front() else {
                break;
            };
            self.queue_cycles.add(now.saturating_since(arrived));
            self.busy_until = now + self.cfg.occupancy;
            match req {
                MemRequest::Read { token, .. } => {
                    self.reads.incr();
                    self.completions.push_back((now + self.cfg.latency, token));
                }
                MemRequest::Write { .. } => {
                    self.writes.incr();
                }
            }
        }
        while let Some(&(at, token)) = self.completions.front() {
            if at > now {
                break;
            }
            self.completions.pop_front();
            done.push(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemChannelConfig {
        MemChannelConfig {
            latency: 20,
            occupancy: 5,
        }
    }

    fn read(token: u64) -> MemRequest {
        MemRequest::Read {
            token,
            addr: Addr(token * 64),
        }
    }

    #[test]
    fn read_completes_after_latency() {
        let mut ch = MemoryChannel::new(cfg());
        ch.push(read(1), Cycle(0));
        let mut done = Vec::new();
        for t in 0..20 {
            ch.tick(Cycle(t), &mut done);
            assert!(done.is_empty(), "not ready at {t}");
        }
        ch.tick(Cycle(20), &mut done);
        assert_eq!(done, vec![1]);
        assert_eq!(ch.inflight(), 0);
        assert!(!ch.has_pending_work());
        assert_eq!(ch.next_wake(), None);
    }

    #[test]
    fn occupancy_serializes_requests() {
        let mut ch = MemoryChannel::new(cfg());
        ch.push(read(1), Cycle(0));
        ch.push(read(2), Cycle(0));
        ch.push(read(3), Cycle(0));
        let mut finish = Vec::new();
        let mut done = Vec::new();
        for t in 0..100 {
            ch.tick(Cycle(t), &mut done);
            for tok in done.drain(..) {
                finish.push((tok, t));
            }
        }
        assert_eq!(finish, vec![(1, 20), (2, 25), (3, 30)]);
        assert_eq!(ch.queue_cycles.value(), 5 + 10);
    }

    #[test]
    fn writes_consume_bandwidth_without_completion() {
        let mut ch = MemoryChannel::new(cfg());
        ch.push(MemRequest::Write { addr: Addr(0x80) }, Cycle(0));
        ch.push(read(9), Cycle(0));
        let mut done = Vec::new();
        for t in 0..100 {
            ch.tick(Cycle(t), &mut done);
        }
        // Read starts at 5 (after the write's occupancy), data at 25.
        assert_eq!(done, vec![9]);
        assert_eq!(ch.writes.value(), 1);
        assert_eq!(ch.reads.value(), 1);
    }

    #[test]
    fn peak_queue_tracked() {
        let mut ch = MemoryChannel::new(cfg());
        for i in 0..7 {
            ch.push(read(i), Cycle(0));
        }
        assert_eq!(ch.peak_queue, 7);
    }

    #[test]
    fn next_wake_tracks_bus_and_completions() {
        let mut ch = MemoryChannel::new(cfg());
        assert_eq!(ch.next_wake(), None);
        ch.push(read(1), Cycle(0));
        // Bus is free: service can start immediately.
        assert_eq!(ch.next_wake(), Some(Cycle(0)));
        let mut done = Vec::new();
        ch.tick(Cycle(0), &mut done);
        // In service: nothing changes until the completion at 20.
        assert_eq!(ch.next_wake(), Some(Cycle(20)));
        ch.push(read(2), Cycle(1));
        // Queued request waits for the bus at 5, before the completion.
        assert_eq!(ch.next_wake(), Some(Cycle(5)));
    }

    #[test]
    fn skipping_noop_cycles_is_equivalent_to_ticking_them() {
        // Per-cycle ticking and next_wake-driven ticking must produce the
        // same completions and counters.
        let mut dense = MemoryChannel::new(cfg());
        let mut sparse = MemoryChannel::new(cfg());
        for ch in [&mut dense, &mut sparse] {
            ch.push(read(1), Cycle(3));
            ch.push(MemRequest::Write { addr: Addr(0) }, Cycle(3));
        }
        let mut dense_done = Vec::new();
        for t in 3..60 {
            dense.tick(Cycle(t), &mut dense_done);
        }
        let mut sparse_done = Vec::new();
        let mut t = Cycle(3);
        while sparse.has_pending_work() {
            let wake = sparse.next_wake().expect("pending work has a wake");
            t = t.max(wake);
            sparse.tick(t, &mut sparse_done);
            t += 1;
        }
        assert_eq!(dense_done, sparse_done);
        assert_eq!(dense.reads.value(), sparse.reads.value());
        assert_eq!(dense.writes.value(), sparse.writes.value());
        assert_eq!(dense.queue_cycles.value(), sparse.queue_cycles.value());
    }

    #[test]
    fn default_matches_ddr3_1667() {
        let c = MemChannelConfig::default();
        // 90 cycles at 2 GHz = 45 ns; 12 cycles per 64 B ≈ 10.7 GB/s.
        assert_eq!(c.latency, 90);
        assert_eq!(c.occupancy, 12);
    }
}
