//! Array-backed miss-status holding registers for the L1 caches.
//!
//! An L1 has at most a handful of MSHRs (8 in the Cortex-A15-like
//! configuration), and every core tick probes them: a `HashMap` pays a
//! hash plus a heap-allocated `Vec` of waiter tags per miss for a
//! structure whose whole population fits in two cache lines. This file
//! is the fixed-capacity replacement: one array of `mshr_capacity`
//! slots, linearly scanned (≤ 8 compares beats any hash), with waiter
//! tags stored inline in the slot and spilled to a slot-owned, reused
//! `Vec` only past [`INLINE_WAITERS`] — steady state allocates nothing.
//!
//! Observable semantics are identical to the previous
//! `HashMap<u64, MshrEntry>`: per-line waiter order is push order, the
//! `wants_write` bit is the OR of all merged requests, and releasing a
//! line that holds no miss panics. `tests/proptest_core.rs` pins the
//! equivalence against a `HashMap` model.

/// Waiter tags stored directly in an MSHR slot before spilling.
pub const INLINE_WAITERS: usize = 4;

/// Outcome of [`MshrFile::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrRequest {
    /// A free slot was claimed for the line: issue a new miss.
    Allocated,
    /// The line already has a miss in flight: the waiter was merged.
    Merged,
    /// Every slot is busy with another line: retry later.
    Full,
}

#[derive(Debug, Default)]
struct Slot {
    valid: bool,
    line_index: u64,
    wants_write: bool,
    inline_len: u8,
    inline: [u64; INLINE_WAITERS],
    /// Overflow waiters (rare: more than [`INLINE_WAITERS`] merges on
    /// one line). Cleared on release but never shrunk, so a slot that
    /// spilled once never allocates again.
    spill: Vec<u64>,
}

impl Slot {
    #[inline]
    fn push_waiter(&mut self, waiter: u64) {
        if (self.inline_len as usize) < INLINE_WAITERS {
            self.inline[self.inline_len as usize] = waiter;
            self.inline_len += 1;
        } else {
            self.spill.push(waiter);
        }
    }
}

/// A fixed file of MSHR slots, addressed by cache-line index.
///
/// # Examples
///
/// ```
/// use nocout_mem::mshr::{MshrFile, MshrRequest};
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.request(5, 1, false), MshrRequest::Allocated);
/// assert_eq!(m.request(5, 2, true), MshrRequest::Merged);
/// assert_eq!(m.request(6, 3, false), MshrRequest::Allocated);
/// assert_eq!(m.request(7, 4, false), MshrRequest::Full);
/// let mut waiters = Vec::new();
/// assert!(m.release(5, &mut waiters), "merged store upgrades the fill");
/// assert_eq!(waiters, vec![1, 2]);
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Debug)]
pub struct MshrFile {
    slots: Box<[Slot]>,
    used: usize,
}

impl MshrFile {
    /// Creates a file of `capacity` free slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one slot");
        MshrFile {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            used: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Outstanding misses.
    #[inline]
    pub fn len(&self) -> usize {
        self.used
    }

    /// Whether no miss is outstanding.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Whether a miss for `line_index` is outstanding.
    #[inline]
    pub fn contains(&self, line_index: u64) -> bool {
        self.slots
            .iter()
            .any(|s| s.valid && s.line_index == line_index)
    }

    /// Records a miss request for `line_index`: merges into an
    /// outstanding slot, claims a free one, or reports the file full.
    pub fn request(&mut self, line_index: u64, waiter: u64, wants_write: bool) -> MshrRequest {
        let mut free = None;
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.valid {
                if s.line_index == line_index {
                    s.push_waiter(waiter);
                    s.wants_write |= wants_write;
                    return MshrRequest::Merged;
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        match free {
            None => MshrRequest::Full,
            Some(i) => {
                let s = &mut self.slots[i];
                s.valid = true;
                s.line_index = line_index;
                s.wants_write = wants_write;
                s.inline_len = 1;
                s.inline[0] = waiter;
                self.used += 1;
                MshrRequest::Allocated
            }
        }
    }

    /// Releases the slot for `line_index` (the fill arrived): appends its
    /// waiter tags, in request order, to `waiters` — a caller-provided
    /// scratch buffer, mirroring the `MemoryChannel::tick` out-param
    /// pattern — and returns whether any waiter wanted write permission.
    ///
    /// # Panics
    ///
    /// Panics if no miss is outstanding for the line.
    pub fn release(&mut self, line_index: u64, waiters: &mut Vec<u64>) -> bool {
        let s = self
            .slots
            .iter_mut()
            .find(|s| s.valid && s.line_index == line_index)
            .expect("fill without outstanding miss");
        waiters.extend_from_slice(&s.inline[..s.inline_len as usize]);
        waiters.append(&mut s.spill);
        s.valid = false;
        s.inline_len = 0;
        let wants_write = s.wants_write;
        s.wants_write = false;
        self.used -= 1;
        wants_write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_release_round_trip() {
        let mut m = MshrFile::new(8);
        assert_eq!(m.request(10, 0, false), MshrRequest::Allocated);
        assert_eq!(m.request(10, 1, false), MshrRequest::Merged);
        assert_eq!(m.len(), 1);
        assert!(m.contains(10));
        let mut w = Vec::new();
        assert!(!m.release(10, &mut w));
        assert_eq!(w, vec![0, 1]);
        assert!(m.is_empty());
        assert!(!m.contains(10));
    }

    #[test]
    fn full_file_rejects_new_lines_but_merges() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.request(1, 0, false), MshrRequest::Allocated);
        assert_eq!(m.request(2, 0, false), MshrRequest::Allocated);
        assert_eq!(m.request(3, 0, false), MshrRequest::Full);
        assert_eq!(m.request(1, 9, false), MshrRequest::Merged);
        let mut w = Vec::new();
        m.release(1, &mut w);
        assert_eq!(m.request(3, 0, false), MshrRequest::Allocated);
    }

    #[test]
    fn waiters_spill_past_inline_capacity_in_order() {
        let mut m = MshrFile::new(1);
        m.request(4, 100, false);
        for t in 101..110u64 {
            assert_eq!(m.request(4, t, false), MshrRequest::Merged);
        }
        let mut w = Vec::new();
        m.release(4, &mut w);
        assert_eq!(w, (100..110u64).collect::<Vec<_>>());
        // The slot is reusable and starts clean.
        m.request(5, 7, false);
        w.clear();
        m.release(5, &mut w);
        assert_eq!(w, vec![7]);
    }

    #[test]
    fn wants_write_is_or_of_all_requests() {
        let mut m = MshrFile::new(2);
        m.request(8, 0, false);
        m.request(8, 1, true);
        m.request(8, 2, false);
        let mut w = Vec::new();
        assert!(m.release(8, &mut w));
        // A fresh allocation does not inherit the bit.
        m.request(8, 3, false);
        w.clear();
        assert!(!m.release(8, &mut w));
    }

    #[test]
    #[should_panic(expected = "fill without outstanding miss")]
    fn release_without_miss_panics() {
        let mut m = MshrFile::new(2);
        let mut w = Vec::new();
        m.release(42, &mut w);
    }

    #[test]
    fn release_appends_to_existing_scratch_content() {
        // The out-param contract: release appends, the caller owns
        // clearing (same as MemoryChannel::tick's completion buffer).
        let mut m = MshrFile::new(2);
        m.request(1, 10, false);
        m.request(2, 20, false);
        let mut w = Vec::new();
        m.release(1, &mut w);
        m.release(2, &mut w);
        assert_eq!(w, vec![10, 20]);
    }
}
