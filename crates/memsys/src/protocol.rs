//! Coherence-protocol message vocabulary and identifiers.
//!
//! The protocol is a full-map directory MESI-style design matching §3 of
//! the paper: on an L1 miss the directory (co-located with the home LLC
//! slice) either services the miss from the LLC, forwards it to the
//! exclusive owner (a *snoop*), invalidates sharers on a write, or fetches
//! the line from memory. Messages map onto the three network classes that
//! guarantee deadlock freedom: requests, snoops, and responses.

use crate::addr::Addr;
use nocout_noc::types::MessageClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A core (and its private L1s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Index into per-core tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A core-side miss transaction (allocated by the chip model; flows through
/// every message belonging to the transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u32);

/// An LLC-side miss-status-holding-register id (memory fetches and
/// invalidation collections in flight at one LLC tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MshrId(pub u32);

/// The kind of access a core performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch (read, L1-I).
    InstrFetch,
    /// Data load (read, L1-D).
    Load,
    /// Data store (write, L1-D).
    Store,
}

impl AccessKind {
    /// Whether this access needs write permission.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Whether this is an instruction fetch (L1-I side).
    #[inline]
    pub fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }

    /// The coherence request this access issues on an L1 miss.
    #[inline]
    pub fn request(self) -> RequestKind {
        if self.is_write() {
            RequestKind::GetX
        } else {
            RequestKind::GetS
        }
    }
}

/// Coherence request kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Read (shared) permission.
    GetS,
    /// Write (exclusive) permission.
    GetX,
}

/// Every message carried over the interconnect, as stored in the chip
/// model's in-flight message table (the network itself carries only an
/// opaque token pointing at one of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// Core → home LLC tile: L1 miss request.
    CoreRequest {
        /// The core-side transaction.
        txn: TxnId,
        /// Requesting core.
        core: CoreId,
        /// Line address.
        addr: Addr,
        /// GetS or GetX.
        kind: RequestKind,
    },
    /// LLC/owner → requesting core: data (or write-permission) response.
    Data {
        /// The core-side transaction being completed.
        txn: TxnId,
    },
    /// Directory → exclusive owner: forward the line to `requester`
    /// (read). The owner demotes to shared.
    FwdGetS {
        /// Requester's transaction (completed by the owner's Data).
        txn: TxnId,
        /// Core that will receive the data.
        requester: CoreId,
        /// Line address.
        addr: Addr,
    },
    /// Directory → exclusive owner: forward the line to `requester`
    /// (write). The owner invalidates its copy.
    FwdGetX {
        /// Requester's transaction.
        txn: TxnId,
        /// Core that will receive the data.
        requester: CoreId,
        /// Line address.
        addr: Addr,
    },
    /// Directory → sharer: invalidate; acknowledge to the directory.
    Inv {
        /// The directory-side collection this ack belongs to.
        mshr: MshrId,
        /// Home LLC tile expecting the ack.
        home: u16,
        /// Line address.
        addr: Addr,
    },
    /// Sharer → directory: invalidation acknowledgement.
    InvAck {
        /// The directory-side collection.
        mshr: MshrId,
    },
    /// Core → home LLC tile: dirty-line writeback (no acknowledgement).
    WriteBack {
        /// Writing core.
        core: CoreId,
        /// Line address.
        addr: Addr,
    },
    /// LLC tile → memory controller: line fetch.
    MemRead {
        /// LLC-side MSHR to resume.
        mshr: MshrId,
        /// Home LLC tile to send the data back to.
        home: u16,
        /// Line address.
        addr: Addr,
    },
    /// Memory controller → LLC tile: fetched line.
    MemData {
        /// LLC-side MSHR to resume.
        mshr: MshrId,
        /// Home LLC tile the data returns to.
        home: u16,
    },
    /// LLC tile → memory controller: dirty eviction (no acknowledgement).
    MemWrite {
        /// Line address.
        addr: Addr,
    },
}

impl Msg {
    /// The network message class this message rides on.
    pub fn class(&self) -> MessageClass {
        match self {
            Msg::CoreRequest { .. } | Msg::MemRead { .. } => MessageClass::Request,
            Msg::FwdGetS { .. } | Msg::FwdGetX { .. } | Msg::Inv { .. } => MessageClass::Snoop,
            Msg::Data { .. }
            | Msg::InvAck { .. }
            | Msg::WriteBack { .. }
            | Msg::MemData { .. }
            | Msg::MemWrite { .. } => MessageClass::Response,
        }
    }

    /// Payload size in bytes (data-bearing messages carry a 64 B line).
    pub fn payload_bytes(&self) -> u32 {
        match self {
            Msg::Data { .. }
            | Msg::WriteBack { .. }
            | Msg::MemData { .. }
            | Msg::MemWrite { .. } => crate::addr::LINE_BYTES as u32,
            _ => 0,
        }
    }
}

/// A slab of in-flight protocol messages; the slab index is the opaque
/// token carried by network packets.
///
/// # Examples
///
/// ```
/// use nocout_mem::protocol::{Msg, MsgSlab, TxnId};
///
/// let mut slab = MsgSlab::new();
/// let token = slab.insert(Msg::Data { txn: TxnId(3) });
/// assert_eq!(slab.take(token), Msg::Data { txn: TxnId(3) });
/// ```
#[derive(Debug, Default)]
pub struct MsgSlab {
    entries: Vec<Option<Msg>>,
    free: Vec<u32>,
}

impl MsgSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        MsgSlab::default()
    }

    /// Stores a message, returning its token.
    pub fn insert(&mut self, msg: Msg) -> u64 {
        if let Some(i) = self.free.pop() {
            self.entries[i as usize] = Some(msg);
            i as u64
        } else {
            self.entries.push(Some(msg));
            (self.entries.len() - 1) as u64
        }
    }

    /// Borrows the message for `token` without removing it.
    ///
    /// # Panics
    ///
    /// Panics if the token is not live.
    pub fn get(&self, token: u64) -> &Msg {
        self.entries[token as usize]
            .as_ref()
            .expect("message token must be live")
    }

    /// Removes and returns the message for `token`.
    ///
    /// # Panics
    ///
    /// Panics if the token is not live.
    pub fn take(&mut self, token: u64) -> Msg {
        let msg = self.entries[token as usize]
            .take()
            .expect("message token must be live");
        self.free.push(token as u32);
        msg
    }

    /// Number of live messages.
    pub fn len(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_classes_match_paper_taxonomy() {
        let req = Msg::CoreRequest {
            txn: TxnId(0),
            core: CoreId(1),
            addr: Addr(0),
            kind: RequestKind::GetS,
        };
        assert_eq!(req.class(), MessageClass::Request);
        assert_eq!(
            Msg::FwdGetS {
                txn: TxnId(0),
                requester: CoreId(0),
                addr: Addr(0)
            }
            .class(),
            MessageClass::Snoop
        );
        assert_eq!(Msg::Data { txn: TxnId(0) }.class(), MessageClass::Response);
        assert_eq!(
            Msg::InvAck { mshr: MshrId(0) }.class(),
            MessageClass::Response
        );
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Msg::Data { txn: TxnId(0) }.payload_bytes(), 64);
        assert_eq!(
            Msg::MemRead {
                mshr: MshrId(0),
                home: 0,
                addr: Addr(0)
            }
            .payload_bytes(),
            0
        );
        assert_eq!(Msg::MemWrite { addr: Addr(0) }.payload_bytes(), 64);
    }

    #[test]
    fn access_kind_mapping() {
        assert_eq!(AccessKind::InstrFetch.request(), RequestKind::GetS);
        assert_eq!(AccessKind::Load.request(), RequestKind::GetS);
        assert_eq!(AccessKind::Store.request(), RequestKind::GetX);
        assert!(AccessKind::Store.is_write());
        assert!(AccessKind::InstrFetch.is_ifetch());
    }

    #[test]
    fn slab_reuses_slots() {
        let mut slab = MsgSlab::new();
        let a = slab.insert(Msg::Data { txn: TxnId(1) });
        let b = slab.insert(Msg::Data { txn: TxnId(2) });
        assert_eq!(slab.len(), 2);
        slab.take(a);
        let c = slab.insert(Msg::Data { txn: TxnId(3) });
        assert_eq!(c, a, "freed slot must be reused");
        let _ = b;
        assert_eq!(slab.len(), 2);
    }

    #[test]
    #[should_panic(expected = "live")]
    fn slab_double_take_panics() {
        let mut slab = MsgSlab::new();
        let a = slab.insert(Msg::Data { txn: TxnId(1) });
        slab.take(a);
        slab.take(a);
    }
}
