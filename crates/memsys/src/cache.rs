//! Set-associative cache tag array with true-LRU replacement.
//!
//! Used for both the 32 KB L1s and the LLC slices. Only tags and metadata
//! are modelled — the simulator never carries data values, just timing.

use crate::addr::Addr;
use serde::{Deserialize, Serialize};

/// Geometry of a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// A 32 KB, 4-way L1 (Cortex-A15-like).
    pub fn l1_32k() -> Self {
        CacheGeometry {
            capacity_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// An LLC slice of the given capacity, 16-way.
    pub fn llc_slice(capacity_bytes: u64) -> Self {
        CacheGeometry {
            capacity_bytes,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A line evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub addr: Addr,
    /// Whether the victim was dirty (must be written back).
    pub dirty: bool,
}

/// Outcome of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

/// A set-associative, true-LRU, write-back tag array.
///
/// # Examples
///
/// ```
/// use nocout_mem::addr::Addr;
/// use nocout_mem::cache::{CacheArray, CacheGeometry, Lookup};
///
/// let mut c = CacheArray::new(CacheGeometry::l1_32k());
/// let a = Addr(0x1000);
/// assert_eq!(c.lookup(a), Lookup::Miss);
/// c.insert(a, false);
/// assert_eq!(c.lookup(a), Lookup::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geometry: CacheGeometry,
    sets: usize,
    ways: Vec<Way>,
    stamp: u64,
    line_shift: u32,
}

impl CacheArray {
    /// Creates an empty array.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets or a non-power-of-two set
    /// count or line size.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(geometry.line_bytes.is_power_of_two());
        CacheArray {
            geometry,
            sets,
            ways: vec![Way::default(); sets * geometry.ways],
            stamp: 0,
            line_shift: geometry.line_bytes.trailing_zeros(),
        }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    #[inline]
    fn set_index(&self, addr: Addr) -> usize {
        ((addr.0 >> self.line_shift) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag(&self, addr: Addr) -> u64 {
        addr.0 >> self.line_shift
    }

    #[inline]
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.geometry.ways..(set + 1) * self.geometry.ways
    }

    /// Resolves a line number (address >> line shift) to the base index
    /// of its set's ways — the geometry math of a lookup, exposed so hot
    /// callers can decode a line once and reuse the result across the
    /// line-crossing check, the tag probe and retries (see
    /// [`CacheArray::lookup_at`]).
    #[inline]
    pub fn set_base_of_line(&self, line_index: u64) -> u32 {
        (((line_index as usize) & (self.sets - 1)) * self.geometry.ways) as u32
    }

    /// [`CacheArray::lookup`] with the geometry pre-resolved: `set_base`
    /// must be `self.set_base_of_line(line_index)`. Identical recency
    /// behaviour (the LRU stamp advances on every lookup, hit or miss).
    #[inline]
    pub fn lookup_at(&mut self, set_base: u32, line_index: u64) -> Lookup {
        debug_assert_eq!(set_base, self.set_base_of_line(line_index));
        self.stamp += 1;
        let stamp = self.stamp;
        let base = set_base as usize;
        for w in &mut self.ways[base..base + self.geometry.ways] {
            if w.valid && w.tag == line_index {
                w.lru = stamp;
                return Lookup::Hit;
            }
        }
        Lookup::Miss
    }

    /// [`CacheArray::mark_dirty`] with the geometry pre-resolved.
    #[inline]
    pub fn mark_dirty_at(&mut self, set_base: u32, line_index: u64) -> bool {
        debug_assert_eq!(set_base, self.set_base_of_line(line_index));
        let base = set_base as usize;
        for w in &mut self.ways[base..base + self.geometry.ways] {
            if w.valid && w.tag == line_index {
                w.dirty = true;
                return true;
            }
        }
        false
    }

    /// Probes for a line without updating recency.
    pub fn probe(&self, addr: Addr) -> Lookup {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        if self.ways[self.set_range(set)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
        {
            Lookup::Hit
        } else {
            Lookup::Miss
        }
    }

    /// Looks up a line, updating LRU recency on a hit.
    pub fn lookup(&mut self, addr: Addr) -> Lookup {
        let idx = self.tag(addr);
        self.lookup_at(self.set_base_of_line(idx), idx)
    }

    /// Marks a present line dirty (returns whether it was present).
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let idx = self.tag(addr);
        self.mark_dirty_at(self.set_base_of_line(idx), idx)
    }

    /// Inserts a line (after a fill), evicting the LRU way if the set is
    /// full. Returns the victim, if any.
    pub fn insert(&mut self, addr: Addr, dirty: bool) -> Option<Evicted> {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        let line_shift = self.line_shift;
        let range = self.set_range(set);
        let ways = &mut self.ways[range];
        // Already present: refresh (fill on a racing request).
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = stamp;
            w.dirty |= dirty;
            return None;
        }
        // Free way?
        if let Some(w) = ways.iter_mut().find(|w| !w.valid) {
            *w = Way {
                tag,
                valid: true,
                dirty,
                lru: stamp,
            };
            return None;
        }
        // Evict LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("ways non-empty");
        let evicted = Evicted {
            addr: Addr(victim.tag << line_shift),
            dirty: victim.dirty,
        };
        *victim = Way {
            tag,
            valid: true,
            dirty,
            lru: stamp,
        };
        Some(evicted)
    }

    /// Invalidates a line if present; returns `(was_present, was_dirty)`.
    pub fn invalidate(&mut self, addr: Addr) -> (bool, bool) {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let range = self.set_range(set);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                let dirty = w.dirty;
                w.valid = false;
                w.dirty = false;
                return (true, dirty);
            }
        }
        (false, false)
    }

    /// Clears a present line's dirty bit (downgrade on a forward snoop);
    /// returns whether the line was present.
    pub fn clean(&mut self, addr: Addr) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let range = self.set_range(set);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                w.dirty = false;
                return true;
            }
        }
        false
    }

    /// Number of valid lines (test/diagnostic helper; O(size)).
    pub fn valid_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 4 sets × 2 ways × 64 B = 512 B.
        CacheArray::new(CacheGeometry {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    fn line(set: u64, tag: u64) -> Addr {
        // 4 sets.
        Addr((tag * 4 + set) * 64)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let a = line(0, 1);
        assert_eq!(c.lookup(a), Lookup::Miss);
        assert!(c.insert(a, false).is_none());
        assert_eq!(c.lookup(a), Lookup::Hit);
        assert_eq!(c.probe(a), Lookup::Hit);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        let a = line(0, 1);
        let b = line(0, 2);
        let d = line(0, 3);
        c.insert(a, false);
        c.insert(b, false);
        // Touch a so b is LRU.
        assert_eq!(c.lookup(a), Lookup::Hit);
        let ev = c.insert(d, false).expect("set full, must evict");
        assert_eq!(ev.addr, b.line());
        assert!(!ev.dirty);
        assert_eq!(c.probe(a), Lookup::Hit);
        assert_eq!(c.probe(b), Lookup::Miss);
    }

    #[test]
    fn dirty_victims_reported() {
        let mut c = small();
        let a = line(1, 1);
        c.insert(a, false);
        assert!(c.mark_dirty(a));
        c.insert(line(1, 2), false);
        let ev = c.insert(line(1, 3), false).unwrap();
        assert_eq!(ev.addr, a.line());
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_and_clean() {
        let mut c = small();
        let a = line(2, 5);
        c.insert(a, true);
        assert!(c.clean(a));
        let (present, dirty) = c.invalidate(a);
        assert!(present);
        assert!(!dirty, "clean() must have cleared the dirty bit");
        assert_eq!(c.probe(a), Lookup::Miss);
        assert_eq!(c.invalidate(a), (false, false));
    }

    #[test]
    fn insert_same_line_is_idempotent() {
        let mut c = small();
        let a = line(0, 9);
        c.insert(a, false);
        assert!(c.insert(a, true).is_none());
        assert_eq!(c.valid_lines(), 1);
        // The refreshed line must now be dirty.
        let (_, dirty) = c.invalidate(a);
        assert!(dirty);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        for s in 0..4 {
            c.insert(line(s, 7), false);
        }
        assert_eq!(c.valid_lines(), 4);
        for s in 0..4 {
            assert_eq!(c.probe(line(s, 7)), Lookup::Hit);
        }
    }

    #[test]
    fn l1_geometry() {
        let g = CacheGeometry::l1_32k();
        assert_eq!(g.sets(), 128);
        let c = CacheArray::new(g);
        assert_eq!(c.geometry().ways, 4);
    }

    #[test]
    fn llc_slice_geometry() {
        let g = CacheGeometry::llc_slice(1024 * 1024);
        assert_eq!(g.sets(), 1024);
    }
}
