//! Full-map directory for the shared LLC.
//!
//! Each LLC slice carries a directory slice tracking which cores hold each
//! line and in what state (Fig. 2(b): "L2 slice = data + tags + directory").
//! The directory is what turns L1 data sharing into snoop traffic; in
//! scale-out workloads that traffic is nearly absent (Fig. 4 measures ~2%
//! of LLC accesses producing a snoop), and NOC-Out's design leans on that.

use crate::protocol::CoreId;

/// A set of sharer cores (bit per core; supports up to 128 cores for the
/// §7.1 concentration study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(pub u128);

impl SharerSet {
    /// The empty set.
    pub fn empty() -> Self {
        SharerSet(0)
    }

    /// A singleton set.
    pub fn single(core: CoreId) -> Self {
        SharerSet(1u128 << core.0)
    }

    /// Inserts a core.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1u128 << core.0;
    }

    /// Removes a core.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1u128 << core.0);
    }

    /// Whether `core` is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        self.0 & (1u128 << core.0) != 0
    }

    /// Number of sharers.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over member cores.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let bits = self.0;
        (0..128u16)
            .filter(move |i| bits & (1u128 << i) != 0)
            .map(CoreId)
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = SharerSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Directory state of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// One or more cores hold the line read-only.
    Shared(SharerSet),
    /// Exactly one core holds the line with write permission.
    Exclusive(CoreId),
}

/// One directory entry: the tracked line index with its state stored next
/// to the tag, so a hit costs exactly one cache line of directory storage.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    line: u64,
    state: DirState,
}

/// Tag value marking a free way. Real line indices are chip addresses
/// shifted down by the 6 line bits, so `u64::MAX` can never collide.
const EMPTY_LINE: u64 = u64::MAX;

/// Location of a tracked line: a way in the set-associative array, or an
/// index into the conflict spill list.
#[derive(Debug, Clone, Copy)]
enum Pos {
    Way(usize),
    Spill(usize),
}

/// A directory slice: line → sharer state, for lines cached in any L1.
///
/// Lines not present map to "uncached above the LLC". Entries are dropped
/// eagerly when their sharer set empties.
///
/// Storage is a set-associative array mirroring the data slice's
/// [`crate::cache::CacheArray`] geometry (construct with
/// [`Directory::with_geometry`] from the slice's set count, ways and NUCA
/// stride): a lookup is the same shift+mask the tag array uses followed by
/// a ≤ `ways` linear tag scan, replacing the per-line
/// `HashMap<u64, DirState>`. Because directory population is not *exactly*
/// the slice's resident set (a line can be re-tracked while an in-flight
/// MSHR completes after its slice victimization), set-conflict overflow
/// falls back to a small spill list, preserving the map's semantics
/// bit-for-bit while keeping the hot lookup allocation-free.
///
/// # Examples
///
/// ```
/// use nocout_mem::addr::Addr;
/// use nocout_mem::directory::{Directory, DirState, SharerSet};
/// use nocout_mem::protocol::CoreId;
///
/// let mut dir = Directory::new();
/// let a = Addr(0x40);
/// dir.add_sharer(a, CoreId(3));
/// assert!(matches!(dir.state(a), Some(DirState::Shared(_))));
/// dir.set_exclusive(a, CoreId(5));
/// assert_eq!(dir.state(a), Some(DirState::Exclusive(CoreId(5))));
/// ```
#[derive(Debug)]
pub struct Directory {
    sets: usize,
    ways: usize,
    stride: u64,
    entries: Vec<DirEntry>,
    spill: Vec<DirEntry>,
    len: usize,
}

impl Default for Directory {
    fn default() -> Self {
        Directory::new()
    }
}

impl Directory {
    /// Hard ceiling on tracked lines: 128 cores (the §7.1 concentration
    /// study maximum) × 64 KB of private L1 (I + D) per core / 64 B lines.
    /// The directory only tracks lines held in some L1, so population
    /// beyond this bound means an eviction path failed to drop its lines.
    pub const MAX_TRACKED_LINES: usize = 128 * (64 * 1024 / 64);

    /// Creates an empty directory with a default standalone geometry
    /// (256 sets × 16 ways, unit stride).
    pub fn new() -> Self {
        Directory::with_geometry(256, 16, 1)
    }

    /// Creates a directory slice mirroring a cache slice's geometry:
    /// `sets` must be a power of two, and `stride` is the NUCA interleave
    /// (chip line indices are divided by it before set selection, exactly
    /// like the data slice's local addressing).
    pub fn with_geometry(sets: usize, ways: usize, stride: u64) -> Self {
        assert!(sets.is_power_of_two(), "directory sets must be a power of two");
        assert!(ways > 0 && stride > 0);
        Directory {
            sets,
            ways,
            stride,
            entries: vec![
                DirEntry {
                    line: EMPTY_LINE,
                    state: DirState::Shared(SharerSet::empty()),
                };
                sets * ways
            ],
            spill: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn set_base(&self, line_index: u64) -> usize {
        (((line_index / self.stride) as usize) & (self.sets - 1)) * self.ways
    }

    #[inline]
    fn find(&self, line_index: u64) -> Option<Pos> {
        debug_assert_ne!(line_index, EMPTY_LINE);
        let base = self.set_base(line_index);
        for i in 0..self.ways {
            if self.entries[base + i].line == line_index {
                return Some(Pos::Way(base + i));
            }
        }
        if !self.spill.is_empty() {
            if let Some(i) = self.spill.iter().position(|e| e.line == line_index) {
                return Some(Pos::Spill(i));
            }
        }
        None
    }

    #[inline]
    fn state_at(&mut self, pos: Pos) -> &mut DirState {
        match pos {
            Pos::Way(i) => &mut self.entries[i].state,
            Pos::Spill(i) => &mut self.spill[i].state,
        }
    }

    fn insert(&mut self, line_index: u64, state: DirState) {
        self.len += 1;
        debug_assert!(
            self.len <= Self::MAX_TRACKED_LINES,
            "directory population {} exceeds total L1 capacity in lines — \
             an eviction path is leaking entries",
            self.len
        );
        let base = self.set_base(line_index);
        for i in 0..self.ways {
            if self.entries[base + i].line == EMPTY_LINE {
                self.entries[base + i] = DirEntry {
                    line: line_index,
                    state,
                };
                return;
            }
        }
        self.spill.push(DirEntry {
            line: line_index,
            state,
        });
    }

    fn remove_at(&mut self, pos: Pos) {
        match pos {
            Pos::Way(i) => self.entries[i].line = EMPTY_LINE,
            Pos::Spill(i) => {
                self.spill.swap_remove(i);
            }
        }
        self.len -= 1;
    }

    /// Current state of a line (None = uncached in all L1s).
    pub fn state(&self, addr: crate::addr::Addr) -> Option<DirState> {
        match self.find(addr.line_index())? {
            Pos::Way(i) => Some(self.entries[i].state),
            Pos::Spill(i) => Some(self.spill[i].state),
        }
    }

    /// Records `core` as a sharer (demotes Exclusive to Shared, keeping the
    /// former owner as a sharer — the FwdGetS path).
    pub fn add_sharer(&mut self, addr: crate::addr::Addr, core: CoreId) {
        let idx = addr.line_index();
        match self.find(idx) {
            Some(pos) => {
                let entry = self.state_at(pos);
                *entry = match *entry {
                    DirState::Shared(mut s) => {
                        s.insert(core);
                        DirState::Shared(s)
                    }
                    DirState::Exclusive(owner) => {
                        let mut s = SharerSet::single(owner);
                        s.insert(core);
                        DirState::Shared(s)
                    }
                };
            }
            None => self.insert(idx, DirState::Shared(SharerSet::single(core))),
        }
    }

    /// Makes `core` the exclusive owner, replacing any previous state.
    pub fn set_exclusive(&mut self, addr: crate::addr::Addr, core: CoreId) {
        let idx = addr.line_index();
        match self.find(idx) {
            Some(pos) => *self.state_at(pos) = DirState::Exclusive(core),
            None => self.insert(idx, DirState::Exclusive(core)),
        }
    }

    /// Removes `core` from the line's sharers/ownership (writeback or
    /// invalidation), dropping the entry when no holder remains. Returns
    /// whether the core was recorded.
    pub fn remove_core(&mut self, addr: crate::addr::Addr, core: CoreId) -> bool {
        let idx = addr.line_index();
        let Some(pos) = self.find(idx) else {
            return false;
        };
        let (drop_entry, had) = match self.state_at(pos) {
            DirState::Exclusive(owner) if *owner == core => (true, true),
            DirState::Exclusive(_) => (false, false),
            DirState::Shared(s) => {
                let had = s.contains(core);
                s.remove(core);
                (s.is_empty(), had)
            }
        };
        if drop_entry {
            self.remove_at(pos);
        }
        had
    }

    /// Drops all state for a line (LLC eviction).
    pub fn drop_line(&mut self, addr: crate::addr::Addr) {
        if let Some(pos) = self.find(addr.line_index()) {
            self.remove_at(pos);
        }
    }

    /// Number of tracked lines.
    pub fn tracked_lines(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn spill_is_empty_for_test(&self) -> bool {
        self.spill.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(CoreId(0));
        s.insert(CoreId(63));
        s.insert(CoreId(127));
        assert_eq!(s.count(), 3);
        assert!(s.contains(CoreId(63)));
        s.remove(CoreId(63));
        assert!(!s.contains(CoreId(63)));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![CoreId(0), CoreId(127)]);
    }

    #[test]
    fn sharer_set_from_iter() {
        let s: SharerSet = [CoreId(1), CoreId(2)].into_iter().collect();
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn exclusive_demotes_to_shared_on_read() {
        let mut dir = Directory::new();
        let a = Addr(0x100);
        dir.set_exclusive(a, CoreId(1));
        dir.add_sharer(a, CoreId(2));
        match dir.state(a) {
            Some(DirState::Shared(s)) => {
                assert!(s.contains(CoreId(1)), "old owner stays as sharer");
                assert!(s.contains(CoreId(2)));
            }
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn remove_core_drops_empty_entries() {
        let mut dir = Directory::new();
        let a = Addr(0x40);
        dir.add_sharer(a, CoreId(9));
        assert!(dir.remove_core(a, CoreId(9)));
        assert_eq!(dir.state(a), None);
        assert_eq!(dir.tracked_lines(), 0);
        assert!(!dir.remove_core(a, CoreId(9)));
    }

    #[test]
    fn remove_nonowner_is_noop() {
        let mut dir = Directory::new();
        let a = Addr(0x40);
        dir.set_exclusive(a, CoreId(1));
        assert!(!dir.remove_core(a, CoreId(2)));
        assert_eq!(dir.state(a), Some(DirState::Exclusive(CoreId(1))));
    }

    #[test]
    fn drop_line_clears_state() {
        let mut dir = Directory::new();
        let a = Addr(0x80);
        dir.set_exclusive(a, CoreId(0));
        dir.drop_line(a);
        assert_eq!(dir.state(a), None);
    }

    #[test]
    fn invalidate_paths_leave_lines_untracked() {
        // Every removal path — writeback of an owned line, last-sharer
        // invalidation, and LLC eviction — must return a line to the
        // "uncached above the LLC" state and release its slot, so
        // population stays bounded by what the L1s actually hold.
        let mut dir = Directory::new();
        for i in 0..64u64 {
            dir.add_sharer(Addr(i * 64), CoreId((i % 8) as u16));
        }
        dir.set_exclusive(Addr(64 * 64), CoreId(1));
        assert_eq!(dir.tracked_lines(), 65);
        // Owner writeback path.
        assert!(dir.remove_core(Addr(64 * 64), CoreId(1)));
        assert_eq!(dir.state(Addr(64 * 64)), None);
        // Last-sharer invalidation path.
        for i in 0..32u64 {
            assert!(dir.remove_core(Addr(i * 64), CoreId((i % 8) as u16)));
        }
        // LLC-eviction path.
        for i in 32..64u64 {
            dir.drop_line(Addr(i * 64));
        }
        assert_eq!(dir.tracked_lines(), 0);
        for i in 0..=64u64 {
            assert_eq!(dir.state(Addr(i * 64)), None);
        }
        assert!(dir.tracked_lines() <= Directory::MAX_TRACKED_LINES);
    }

    #[test]
    fn set_conflicts_spill_without_losing_state() {
        // 2 sets × 1 way: four lines in the same set force three into the
        // spill list; state and removal must behave exactly like the map.
        let mut dir = Directory::with_geometry(2, 1, 1);
        let lines = [0u64, 2, 4, 6]; // even line indices → set 0
        for (k, &l) in lines.iter().enumerate() {
            dir.add_sharer(Addr(l * 64), CoreId(k as u16));
        }
        assert_eq!(dir.tracked_lines(), 4);
        for (k, &l) in lines.iter().enumerate() {
            match dir.state(Addr(l * 64)) {
                Some(DirState::Shared(s)) => assert!(s.contains(CoreId(k as u16))),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Removing a spilled entry then reusing the freed way.
        assert!(dir.remove_core(Addr(4 * 64), CoreId(2)));
        assert_eq!(dir.state(Addr(4 * 64)), None);
        dir.set_exclusive(Addr(8 * 64), CoreId(9));
        assert_eq!(dir.state(Addr(8 * 64)), Some(DirState::Exclusive(CoreId(9))));
        assert_eq!(dir.tracked_lines(), 4);
        for &l in &[0u64, 2, 6, 8] {
            dir.drop_line(Addr(l * 64));
        }
        assert_eq!(dir.tracked_lines(), 0);
    }

    #[test]
    fn nuca_stride_selects_slice_local_sets() {
        // With stride 64 (a 64-tile interleave), chip lines 0 and 64 are
        // consecutive slice-local lines and must land in different sets of
        // a 2-set directory rather than aliasing.
        let mut dir = Directory::with_geometry(2, 1, 64);
        dir.add_sharer(Addr(0), CoreId(0));
        dir.add_sharer(Addr(64 * 64), CoreId(1));
        assert_eq!(dir.tracked_lines(), 2);
        assert!(dir.spill_is_empty_for_test());
    }

    #[test]
    fn lines_are_independent() {
        let mut dir = Directory::new();
        dir.add_sharer(Addr(0x00), CoreId(1));
        dir.add_sharer(Addr(0x40), CoreId(2));
        assert_eq!(dir.tracked_lines(), 2);
        match dir.state(Addr(0x00)) {
            Some(DirState::Shared(s)) => assert!(!s.contains(CoreId(2))),
            other => panic!("unexpected {other:?}"),
        }
    }
}
