//! Full-map directory for the shared LLC.
//!
//! Each LLC slice carries a directory slice tracking which cores hold each
//! line and in what state (Fig. 2(b): "L2 slice = data + tags + directory").
//! The directory is what turns L1 data sharing into snoop traffic; in
//! scale-out workloads that traffic is nearly absent (Fig. 4 measures ~2%
//! of LLC accesses producing a snoop), and NOC-Out's design leans on that.

use crate::protocol::CoreId;
use std::collections::HashMap;

/// A set of sharer cores (bit per core; supports up to 128 cores for the
/// §7.1 concentration study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(pub u128);

impl SharerSet {
    /// The empty set.
    pub fn empty() -> Self {
        SharerSet(0)
    }

    /// A singleton set.
    pub fn single(core: CoreId) -> Self {
        SharerSet(1u128 << core.0)
    }

    /// Inserts a core.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1u128 << core.0;
    }

    /// Removes a core.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1u128 << core.0);
    }

    /// Whether `core` is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        self.0 & (1u128 << core.0) != 0
    }

    /// Number of sharers.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over member cores.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let bits = self.0;
        (0..128u16)
            .filter(move |i| bits & (1u128 << i) != 0)
            .map(CoreId)
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = SharerSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Directory state of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// One or more cores hold the line read-only.
    Shared(SharerSet),
    /// Exactly one core holds the line with write permission.
    Exclusive(CoreId),
}

/// A directory slice: line → sharer state, for lines cached in any L1.
///
/// Lines not present map to "uncached above the LLC". Entries are dropped
/// eagerly when their sharer set empties.
///
/// # Examples
///
/// ```
/// use nocout_mem::addr::Addr;
/// use nocout_mem::directory::{Directory, DirState, SharerSet};
/// use nocout_mem::protocol::CoreId;
///
/// let mut dir = Directory::new();
/// let a = Addr(0x40);
/// dir.add_sharer(a, CoreId(3));
/// assert!(matches!(dir.state(a), Some(DirState::Shared(_))));
/// dir.set_exclusive(a, CoreId(5));
/// assert_eq!(dir.state(a), Some(DirState::Exclusive(CoreId(5))));
/// ```
#[derive(Debug, Default)]
pub struct Directory {
    lines: HashMap<u64, DirState>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Current state of a line (None = uncached in all L1s).
    pub fn state(&self, addr: crate::addr::Addr) -> Option<DirState> {
        self.lines.get(&addr.line_index()).copied()
    }

    /// Records `core` as a sharer (demotes Exclusive to Shared, keeping the
    /// former owner as a sharer — the FwdGetS path).
    pub fn add_sharer(&mut self, addr: crate::addr::Addr, core: CoreId) {
        let entry = self
            .lines
            .entry(addr.line_index())
            .or_insert(DirState::Shared(SharerSet::empty()));
        *entry = match *entry {
            DirState::Shared(mut s) => {
                s.insert(core);
                DirState::Shared(s)
            }
            DirState::Exclusive(owner) => {
                let mut s = SharerSet::single(owner);
                s.insert(core);
                DirState::Shared(s)
            }
        };
    }

    /// Makes `core` the exclusive owner, replacing any previous state.
    pub fn set_exclusive(&mut self, addr: crate::addr::Addr, core: CoreId) {
        self.lines
            .insert(addr.line_index(), DirState::Exclusive(core));
    }

    /// Removes `core` from the line's sharers/ownership (writeback or
    /// invalidation), dropping the entry when no holder remains. Returns
    /// whether the core was recorded.
    pub fn remove_core(&mut self, addr: crate::addr::Addr, core: CoreId) -> bool {
        let idx = addr.line_index();
        match self.lines.get_mut(&idx) {
            None => false,
            Some(DirState::Exclusive(owner)) if *owner == core => {
                self.lines.remove(&idx);
                true
            }
            Some(DirState::Exclusive(_)) => false,
            Some(DirState::Shared(s)) => {
                let had = s.contains(core);
                s.remove(core);
                if s.is_empty() {
                    self.lines.remove(&idx);
                }
                had
            }
        }
    }

    /// Drops all state for a line (LLC eviction).
    pub fn drop_line(&mut self, addr: crate::addr::Addr) {
        self.lines.remove(&addr.line_index());
    }

    /// Number of tracked lines.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(CoreId(0));
        s.insert(CoreId(63));
        s.insert(CoreId(127));
        assert_eq!(s.count(), 3);
        assert!(s.contains(CoreId(63)));
        s.remove(CoreId(63));
        assert!(!s.contains(CoreId(63)));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![CoreId(0), CoreId(127)]);
    }

    #[test]
    fn sharer_set_from_iter() {
        let s: SharerSet = [CoreId(1), CoreId(2)].into_iter().collect();
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn exclusive_demotes_to_shared_on_read() {
        let mut dir = Directory::new();
        let a = Addr(0x100);
        dir.set_exclusive(a, CoreId(1));
        dir.add_sharer(a, CoreId(2));
        match dir.state(a) {
            Some(DirState::Shared(s)) => {
                assert!(s.contains(CoreId(1)), "old owner stays as sharer");
                assert!(s.contains(CoreId(2)));
            }
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn remove_core_drops_empty_entries() {
        let mut dir = Directory::new();
        let a = Addr(0x40);
        dir.add_sharer(a, CoreId(9));
        assert!(dir.remove_core(a, CoreId(9)));
        assert_eq!(dir.state(a), None);
        assert_eq!(dir.tracked_lines(), 0);
        assert!(!dir.remove_core(a, CoreId(9)));
    }

    #[test]
    fn remove_nonowner_is_noop() {
        let mut dir = Directory::new();
        let a = Addr(0x40);
        dir.set_exclusive(a, CoreId(1));
        assert!(!dir.remove_core(a, CoreId(2)));
        assert_eq!(dir.state(a), Some(DirState::Exclusive(CoreId(1))));
    }

    #[test]
    fn drop_line_clears_state() {
        let mut dir = Directory::new();
        let a = Addr(0x80);
        dir.set_exclusive(a, CoreId(0));
        dir.drop_line(a);
        assert_eq!(dir.state(a), None);
    }

    #[test]
    fn lines_are_independent() {
        let mut dir = Directory::new();
        dir.add_sharer(Addr(0x00), CoreId(1));
        dir.add_sharer(Addr(0x40), CoreId(2));
        assert_eq!(dir.tracked_lines(), 2);
        match dir.state(Addr(0x00)) {
            Some(DirState::Shared(s)) => assert!(!s.contains(CoreId(2))),
            other => panic!("unexpected {other:?}"),
        }
    }
}
