//! Private L1 caches with miss-status holding registers.
//!
//! Each core has a 32 KB L1-I and a 32 KB L1-D (Table 1). L1-I misses stall
//! fetch — the effect the whole paper revolves around — while L1-D misses
//! overlap up to the MSHR/LSQ bound, modelling the low memory-level
//! parallelism of scale-out workloads.

use crate::addr::Addr;
use crate::cache::{CacheArray, CacheGeometry, Evicted, Lookup};
use crate::mshr::{MshrFile, MshrRequest};
use nocout_sim::stats::Counter;

/// Result of an L1 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Access {
    /// Line present; access completes at L1 latency.
    Hit,
    /// Line absent; a new miss transaction must be issued (an MSHR was
    /// allocated).
    Miss,
    /// Line absent but a miss for the same line is already outstanding;
    /// the access piggybacks on it (no new request).
    MergedMiss,
    /// All MSHRs are busy; the access must retry later.
    Blocked,
}

/// Configuration of an L1 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Tag/data geometry.
    pub geometry: CacheGeometry,
    /// Maximum outstanding line misses.
    pub mshr_capacity: usize,
    /// Access latency in cycles (hit or miss detection).
    pub latency: u64,
}

impl L1Config {
    /// Cortex-A15-like 32 KB L1 with a handful of MSHRs.
    pub fn a15() -> Self {
        L1Config {
            geometry: CacheGeometry::l1_32k(),
            mshr_capacity: 8,
            latency: 2,
        }
    }
}

/// A private L1 cache (instruction or data).
///
/// # Examples
///
/// ```
/// use nocout_mem::addr::Addr;
/// use nocout_mem::l1::{L1Access, L1Cache, L1Config};
///
/// let mut l1 = L1Cache::new(L1Config::a15());
/// let a = Addr(0x400);
/// assert_eq!(l1.access(a, false, 1), L1Access::Miss);
/// assert_eq!(l1.access(a, false, 2), L1Access::MergedMiss);
/// let mut waiters = Vec::new();
/// let evicted = l1.fill(a, false, &mut waiters);
/// assert_eq!(waiters, vec![1, 2]);
/// assert!(evicted.is_none());
/// assert_eq!(l1.access(a, false, 3), L1Access::Hit);
/// ```
#[derive(Debug)]
pub struct L1Cache {
    cfg: L1Config,
    array: CacheArray,
    /// Fixed array of `mshr_capacity` slots, line-index addressed (see
    /// [`crate::mshr`] for why this beats a `HashMap` at L1 scale).
    mshrs: MshrFile,
    /// Statistics.
    pub hits: Counter,
    /// Misses that allocated a new MSHR.
    pub misses: Counter,
    /// Misses merged into an outstanding MSHR.
    pub merged: Counter,
    /// Accesses rejected because MSHRs were full.
    pub blocked: Counter,
}

impl L1Cache {
    /// Creates an empty L1.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's line size differs from the global
    /// [`crate::addr::LINE_BYTES`]: the L1's MSHRs and pre-decoded
    /// access path address lines by the global line index, so a
    /// different per-array line size would make the tag array and the
    /// MSHR file disagree about what a "line" is.
    pub fn new(cfg: L1Config) -> Self {
        assert_eq!(
            cfg.geometry.line_bytes,
            crate::addr::LINE_BYTES,
            "L1 line size must match the global line size"
        );
        L1Cache {
            cfg,
            array: CacheArray::new(cfg.geometry),
            mshrs: MshrFile::new(cfg.mshr_capacity),
            hits: Counter::new(),
            misses: Counter::new(),
            merged: Counter::new(),
            blocked: Counter::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> L1Config {
        self.cfg
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Performs an access for the line containing `addr`. `waiter` is an
    /// opaque tag returned by [`fill`](Self::fill) when the line arrives.
    ///
    /// Write upgrades are folded into misses: a store to a present line
    /// simply marks it dirty (the coherence request for exclusivity is
    /// raised by the chip model when the directory demands it; our L1 does
    /// not track S/E distinction — see DESIGN.md §3.3).
    pub fn access(&mut self, addr: Addr, is_write: bool, waiter: u64) -> L1Access {
        let idx = addr.line_index();
        self.access_indexed(idx, self.array.set_base_of_line(idx), is_write, waiter)
    }

    /// [`L1Cache::access`] with the line geometry pre-resolved: `line_index`
    /// is the line number of the accessed address and `set_base` its
    /// resolved set base ([`L1Cache::set_base_of`]). The core's fetch path
    /// decodes the current fetch line once and reuses the result across
    /// the line-crossing check, this access, and blocked-retry re-probes.
    #[inline]
    pub fn access_indexed(
        &mut self,
        line_index: u64,
        set_base: u32,
        is_write: bool,
        waiter: u64,
    ) -> L1Access {
        match self.array.lookup_at(set_base, line_index) {
            Lookup::Hit => {
                if is_write {
                    self.array.mark_dirty_at(set_base, line_index);
                }
                self.hits.incr();
                L1Access::Hit
            }
            Lookup::Miss => match self.mshrs.request(line_index, waiter, is_write) {
                MshrRequest::Merged => {
                    self.merged.incr();
                    L1Access::MergedMiss
                }
                MshrRequest::Full => {
                    self.blocked.incr();
                    L1Access::Blocked
                }
                MshrRequest::Allocated => {
                    self.misses.incr();
                    L1Access::Miss
                }
            },
        }
    }

    /// Resolves a line number to its set base in the tag array (for
    /// [`L1Cache::access_indexed`] callers caching the decode).
    #[inline]
    pub fn set_base_of(&self, line_index: u64) -> u32 {
        self.array.set_base_of_line(line_index)
    }

    /// Number of outstanding misses.
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    /// Whether a miss for this line is outstanding.
    pub fn miss_pending(&self, addr: Addr) -> bool {
        self.mshrs.contains(addr.line_index())
    }

    /// Completes a miss: installs the line and releases its MSHR,
    /// appending the miss's waiter tags (in request order) to `waiters` —
    /// a caller-provided scratch buffer the caller clears, mirroring the
    /// `MemoryChannel::tick` out-param pattern so a fill allocates
    /// nothing. Returns any evicted victim.
    ///
    /// # Panics
    ///
    /// Panics if no miss is outstanding for the line.
    pub fn fill(&mut self, addr: Addr, dirty: bool, waiters: &mut Vec<u64>) -> Option<Evicted> {
        let line = addr.line();
        let wants_write = self.mshrs.release(line.line_index(), waiters);
        self.array.insert(line, dirty || wants_write)
    }

    /// Installs a line without timing effects (checkpoint-style cache
    /// warming, mirroring the paper's warmed-checkpoint methodology).
    pub fn warm(&mut self, addr: Addr) {
        let _ = self.array.insert(addr.line(), false);
    }

    /// Invalidation snoop: removes the line; returns `(present, dirty)`.
    pub fn snoop_invalidate(&mut self, addr: Addr) -> (bool, bool) {
        self.array.invalidate(addr.line())
    }

    /// Downgrade snoop (FwdGetS): cleans the line, keeping it shared;
    /// returns whether it was present.
    pub fn snoop_downgrade(&mut self, addr: Addr) -> bool {
        self.array.clean(addr.line())
    }

    /// L1 miss ratio over all accesses so far (diagnostics).
    pub fn miss_ratio(&self) -> f64 {
        let h = self.hits.value() as f64;
        let m = (self.misses.value() + self.merged.value()) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            m / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(L1Config::a15())
    }

    /// `fill` discarding the waiters (most tests don't inspect them).
    fn fill(c: &mut L1Cache, addr: Addr) -> Option<Evicted> {
        let mut scratch = Vec::new();
        c.fill(addr, false, &mut scratch)
    }

    #[test]
    fn miss_allocates_then_merges() {
        let mut c = l1();
        let a = Addr(0x1000);
        assert_eq!(c.access(a, false, 10), L1Access::Miss);
        assert_eq!(c.access(Addr(0x1008), false, 11), L1Access::MergedMiss);
        assert_eq!(c.outstanding_misses(), 1);
        assert!(c.miss_pending(a));
        let mut waiters = Vec::new();
        c.fill(a, false, &mut waiters);
        assert_eq!(waiters, vec![10, 11]);
        assert_eq!(c.outstanding_misses(), 0);
    }

    #[test]
    fn mshr_capacity_blocks() {
        let mut c = L1Cache::new(L1Config {
            mshr_capacity: 2,
            ..L1Config::a15()
        });
        assert_eq!(c.access(Addr(0x0000), false, 0), L1Access::Miss);
        assert_eq!(c.access(Addr(0x1000), false, 1), L1Access::Miss);
        assert_eq!(c.access(Addr(0x2000), false, 2), L1Access::Blocked);
        assert_eq!(c.blocked.value(), 1);
        fill(&mut c, Addr(0x0000));
        assert_eq!(c.access(Addr(0x2000), false, 3), L1Access::Miss);
    }

    #[test]
    fn store_to_present_line_dirties_it() {
        let mut c = l1();
        let a = Addr(0x40);
        c.access(a, false, 0);
        fill(&mut c, a);
        assert_eq!(c.access(a, true, 1), L1Access::Hit);
        let (present, dirty) = c.snoop_invalidate(a);
        assert!(present && dirty);
    }

    #[test]
    fn write_waiter_upgrades_fill_to_dirty() {
        let mut c = l1();
        let a = Addr(0x80);
        assert_eq!(c.access(a, true, 7), L1Access::Miss);
        fill(&mut c, a);
        let (present, dirty) = c.snoop_invalidate(a);
        assert!(present && dirty, "store miss must install the line dirty");
    }

    #[test]
    fn downgrade_keeps_line() {
        let mut c = l1();
        let a = Addr(0xC0);
        c.access(a, true, 0);
        fill(&mut c, a);
        assert!(c.snoop_downgrade(a));
        assert_eq!(c.access(a, false, 1), L1Access::Hit);
        let (present, dirty) = c.snoop_invalidate(a);
        assert!(present);
        assert!(!dirty);
    }

    #[test]
    fn capacity_evictions_surface_victims() {
        let mut c = l1();
        // 128 sets × 4 ways; fill 5 lines of one set.
        let set_stride = 128 * 64;
        let mut evicted = None;
        for i in 0..5u64 {
            let a = Addr(i * set_stride as u64);
            c.access(a, false, i);
            let ev = fill(&mut c, a);
            evicted = evicted.or(ev);
        }
        assert!(evicted.is_some(), "fifth line in a 4-way set must evict");
    }

    #[test]
    fn miss_ratio_tracks() {
        let mut c = l1();
        let a = Addr(0x40);
        c.access(a, false, 0);
        fill(&mut c, a);
        for _ in 0..9 {
            c.access(a, false, 0);
        }
        assert!((c.miss_ratio() - 0.1).abs() < 1e-9);
    }
}
