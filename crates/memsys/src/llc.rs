//! LLC tile controller: banked NUCA slice + directory + protocol engine.
//!
//! One `LlcTile` models a slice of the shared last-level cache together
//! with its co-located directory slice. Requests delivered by the network
//! enter [`LlcTile::submit`]; each cycle [`LlcTile::tick`] grants requests
//! to free banks (internal banking per §4.3 — NOC-Out uses 2 banks per tile
//! so bank contention is visible, the effect the paper credits for
//! NOC-Out's small Data Serving loss); finished work surfaces through
//! [`LlcTile::pop_ready`] as messages for the chip model to inject.

use crate::addr::Addr;
use crate::cache::{CacheArray, CacheGeometry, Lookup};
use crate::directory::{DirState, Directory};
use crate::protocol::{CoreId, MshrId, RequestKind, TxnId};
use nocout_sim::ring::Ring;
use nocout_sim::stats::{Counter, LatencyHist};
use nocout_sim::Cycle;
use std::collections::VecDeque;

/// Configuration of one LLC tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Slice capacity in bytes.
    pub slice_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Internal banks sharing the tile's network port.
    pub banks: usize,
    /// Tag + data access latency in cycles.
    pub access_latency: u64,
    /// Cycles a bank stays busy per access (throughput bound).
    pub bank_occupancy: u64,
    /// Maximum in-flight memory fetches / invalidation collections.
    pub mshr_capacity: usize,
    /// This tile's index within the NUCA interleave (see `tile_stride`).
    pub tile_index: usize,
    /// Total number of LLC tiles in the interleave. Lines are distributed
    /// round-robin by line index, so a slice holds lines with
    /// `line % tile_stride == tile_index`; set indexing inside the slice
    /// uses `line / tile_stride` to avoid aliasing all of a tile's lines
    /// into a fraction of its sets.
    pub tile_stride: usize,
}

impl LlcConfig {
    /// A tiled-CMP slice: 8 MB / 64 tiles = 128 KB, single bank.
    pub fn tiled_slice() -> Self {
        LlcConfig {
            slice_bytes: 128 * 1024,
            ways: 16,
            banks: 1,
            access_latency: 5,
            bank_occupancy: 2,
            mshr_capacity: 16,
            tile_index: 0,
            tile_stride: 1,
        }
    }

    /// Places the tile within the NUCA interleave.
    pub fn at_position(mut self, tile_index: usize, tile_stride: usize) -> Self {
        assert!(tile_stride > 0 && tile_index < tile_stride);
        self.tile_index = tile_index;
        self.tile_stride = tile_stride;
        self
    }

    /// A NOC-Out tile: 1 MB with two internal banks (§5.1).
    pub fn nocout_tile() -> Self {
        LlcConfig {
            slice_bytes: 1024 * 1024,
            ways: 16,
            banks: 2,
            access_latency: 5,
            // A 512 KB bank cycles slower than a tiled design's 128 KB
            // slice (CACTI); this occupancy is what surfaces the bank
            // contention the paper blames for NOC-Out's small Data
            // Serving loss.
            bank_occupancy: 4,
            mshr_capacity: 32,
            tile_index: 0,
            tile_stride: 1,
        }
    }
}

/// Work delivered to an LLC tile (after network transit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcInput {
    /// An L1 miss request from a core.
    Core {
        /// Core-side transaction.
        txn: TxnId,
        /// Requesting core.
        core: CoreId,
        /// Line address.
        addr: Addr,
        /// GetS or GetX.
        kind: RequestKind,
    },
    /// A dirty writeback from a core (no reply).
    WriteBack {
        /// Writing core.
        core: CoreId,
        /// Line address.
        addr: Addr,
    },
    /// Invalidation acknowledgement for a pending collection.
    InvAck {
        /// The collection being acknowledged.
        mshr: MshrId,
    },
    /// Line data returning from a memory controller.
    MemData {
        /// The fetch being completed.
        mshr: MshrId,
    },
}

/// Messages an LLC tile asks the chip model to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcOutput {
    /// Data (or write permission) to a requesting core.
    Data {
        /// Transaction completed by this response.
        txn: TxnId,
        /// Destination core.
        to: CoreId,
    },
    /// Forward-read snoop to the exclusive owner.
    FwdGetS {
        /// Requester's transaction (owner replies directly to it).
        txn: TxnId,
        /// Current owner (snoop destination).
        owner: CoreId,
        /// Requesting core.
        requester: CoreId,
        /// Line address.
        addr: Addr,
    },
    /// Forward-write snoop to the exclusive owner.
    FwdGetX {
        /// Requester's transaction.
        txn: TxnId,
        /// Current owner (snoop destination).
        owner: CoreId,
        /// Requesting core.
        requester: CoreId,
        /// Line address.
        addr: Addr,
    },
    /// Invalidation snoop to a sharer; the ack returns to this tile.
    Inv {
        /// Collection awaiting this ack.
        mshr: MshrId,
        /// Sharer to invalidate.
        sharer: CoreId,
        /// Line address.
        addr: Addr,
    },
    /// Fetch a line from memory.
    MemRead {
        /// MSHR to resume on [`LlcInput::MemData`].
        mshr: MshrId,
        /// Line address.
        addr: Addr,
    },
    /// Write a dirty victim to memory (no reply).
    MemWrite {
        /// Line address.
        addr: Addr,
    },
}

/// A request merged into an in-flight MSHR, replayed on completion.
pub type LlcWaiter = (TxnId, CoreId, RequestKind);

/// Waiter tags held inline in an MSHR slot before spilling to the
/// slot-owned vector (same threshold as the L1 `MshrFile`).
const TILE_INLINE_WAITERS: usize = 4;

#[derive(Debug, Clone)]
struct TileSlot {
    valid: bool,
    /// Bumped on release so a stale [`MshrId`] from a message still in
    /// flight through the network can never alias a reused slot.
    gen: u16,
    addr: Addr,
    pending_acks: u32,
    pending_mem: bool,
    inline_len: u8,
    inline: [LlcWaiter; TILE_INLINE_WAITERS],
    spill: Vec<LlcWaiter>,
}

impl TileSlot {
    fn free() -> Self {
        TileSlot {
            valid: false,
            gen: 0,
            addr: Addr(0),
            pending_acks: 0,
            pending_mem: false,
            inline_len: 0,
            inline: [(TxnId(0), CoreId(0), RequestKind::GetS); TILE_INLINE_WAITERS],
            spill: Vec::new(),
        }
    }
}

/// Array-backed MSHR file for an LLC tile, modeled on the L1
/// [`crate::mshr::MshrFile`]: a fixed array of `mshr_capacity` slots,
/// linearly scanned (at ≤ 32 entries a scan beats two hash lookups), with
/// the line-index lookup inline in the scan instead of a side
/// `HashMap<u64, u32>`, and waiter tags inline in the slot.
///
/// Unlike the L1 file, tile MSHR ids travel through the network (in
/// [`LlcOutput::Inv`] / [`LlcOutput::MemRead`] and back via
/// [`LlcInput::InvAck`] / [`LlcInput::MemData`]), so ids are
/// generation-tagged: the low 16 bits address the slot, the high 16 carry
/// its allocation generation, and a stale or foreign id resolves to `None`
/// exactly as a missing key did in the `HashMap` it replaces. `capacity`
/// is a sizing hint, not an admission bound — the tile has never
/// back-pressured requests, so on overflow the file grows like the
/// `HashMap` grew.
///
/// # Examples
///
/// ```
/// use nocout_mem::addr::Addr;
/// use nocout_mem::llc::TileMshrFile;
/// use nocout_mem::protocol::{CoreId, RequestKind, TxnId};
///
/// let mut file = TileMshrFile::new(16);
/// let id = file.alloc(Addr(0x40), 0, true);
/// file.push_waiter(id, (TxnId(1), CoreId(0), RequestKind::GetS));
/// assert_eq!(file.lookup_line(Addr(0x40).line_index()), Some(id));
/// let mut waiters = Vec::new();
/// assert_eq!(file.take(id, &mut waiters), Some(Addr(0x40)));
/// assert_eq!(waiters.len(), 1);
/// assert_eq!(file.take(id, &mut waiters), None, "stale id is ignored");
/// ```
#[derive(Debug)]
pub struct TileMshrFile {
    slots: Vec<TileSlot>,
    used: usize,
}

impl TileMshrFile {
    /// Creates a file with `capacity` pre-sized slots.
    pub fn new(capacity: usize) -> Self {
        TileMshrFile {
            slots: (0..capacity.max(1)).map(|_| TileSlot::free()).collect(),
            used: 0,
        }
    }

    /// In-flight entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.used
    }

    /// True when no entry is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Current slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn resolve(&self, id: MshrId) -> Option<usize> {
        let slot = (id.0 & 0xFFFF) as usize;
        let gen = (id.0 >> 16) as u16;
        match self.slots.get(slot) {
            Some(s) if s.valid && s.gen == gen => Some(slot),
            _ => None,
        }
    }

    /// The in-flight entry for `line_index`, if any (the merge probe).
    #[inline]
    pub fn lookup_line(&self, line_index: u64) -> Option<MshrId> {
        for (i, s) in self.slots.iter().enumerate() {
            if s.valid && s.addr.line_index() == line_index {
                return Some(MshrId(((s.gen as u32) << 16) | i as u32));
            }
        }
        None
    }

    /// Allocates an entry for `addr` (no entry for its line may exist).
    pub fn alloc(&mut self, addr: Addr, pending_acks: u32, pending_mem: bool) -> MshrId {
        debug_assert!(self.lookup_line(addr.line_index()).is_none());
        let slot = match self.slots.iter().position(|s| !s.valid) {
            Some(i) => i,
            None => {
                self.slots.push(TileSlot::free());
                self.slots.len() - 1
            }
        };
        assert!(slot < (1 << 16), "mshr slot index overflows the id encoding");
        let s = &mut self.slots[slot];
        s.valid = true;
        s.addr = addr;
        s.pending_acks = pending_acks;
        s.pending_mem = pending_mem;
        s.inline_len = 0;
        debug_assert!(s.spill.is_empty());
        self.used += 1;
        MshrId(((s.gen as u32) << 16) | slot as u32)
    }

    /// Appends a waiter to an entry; `false` if the id is stale.
    pub fn push_waiter(&mut self, id: MshrId, waiter: LlcWaiter) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        let s = &mut self.slots[slot];
        if (s.inline_len as usize) < TILE_INLINE_WAITERS && s.spill.is_empty() {
            s.inline[s.inline_len as usize] = waiter;
            s.inline_len += 1;
        } else {
            s.spill.push(waiter);
        }
        true
    }

    /// The line address an entry is fetching/collecting for.
    #[inline]
    pub fn addr_of(&self, id: MshrId) -> Option<Addr> {
        self.resolve(id).map(|slot| self.slots[slot].addr)
    }

    /// Consumes one invalidation ack. Returns whether the entry is now
    /// complete (no acks or memory data outstanding), or `None` for a
    /// stale id.
    pub fn dec_ack(&mut self, id: MshrId) -> Option<bool> {
        let slot = self.resolve(id)?;
        let s = &mut self.slots[slot];
        debug_assert!(s.pending_acks > 0);
        s.pending_acks -= 1;
        Some(s.pending_acks == 0 && !s.pending_mem)
    }

    /// Records the memory fetch returning. Returns the line address and
    /// whether the entry is now complete, or `None` for a stale id.
    pub fn mem_arrived(&mut self, id: MshrId) -> Option<(Addr, bool)> {
        let slot = self.resolve(id)?;
        let s = &mut self.slots[slot];
        s.pending_mem = false;
        Some((s.addr, s.pending_acks == 0))
    }

    /// Releases an entry, appending its waiters (in merge order) to
    /// `waiters`, and returns its line address. The freed slot's
    /// generation is bumped so the released id goes stale immediately.
    pub fn take(&mut self, id: MshrId, waiters: &mut Vec<LlcWaiter>) -> Option<Addr> {
        let slot = self.resolve(id)?;
        let s = &mut self.slots[slot];
        for i in 0..s.inline_len as usize {
            waiters.push(s.inline[i]);
        }
        waiters.append(&mut s.spill);
        s.valid = false;
        s.gen = s.gen.wrapping_add(1);
        s.inline_len = 0;
        self.used -= 1;
        Some(s.addr)
    }
}

/// A slot-addressed calendar wheel for latency-delayed payloads.
///
/// Replaces the `BinaryHeap<Reverse<(at, seq)>>` + `HashMap<seq, payload>`
/// pair behind [`LlcTile::pop_ready`]: every emission is due within the
/// tile's small, bounded access latency, so scheduling is `at % slots`
/// with the payload stored inline — no comparison heap, no side table, no
/// sequence counter. Entries sharing a cycle land in the same slot in
/// emission order, which reproduces the heap's `(at, seq)` tiebreak
/// exactly; `pop_due`/`earliest` scan the handful of slot fronts, which at
/// 8–16 contiguous slots is cheaper than a heap sift.
///
/// The wheel never misses late pops: entries are stamped with their
/// absolute due cycle, so a consumer that falls behind still drains in
/// global `(at, emission)` order.
///
/// # Examples
///
/// ```
/// use nocout_mem::llc::OutputWheel;
///
/// let mut w: OutputWheel<&str> = OutputWheel::new(5);
/// w.push(3, "b");
/// w.push(2, "a");
/// assert_eq!(w.earliest(), Some(2));
/// assert_eq!(w.pop_due(1), None);
/// assert_eq!(w.pop_due(3), Some("a"));
/// assert_eq!(w.pop_due(3), Some("b"));
/// ```
#[derive(Debug)]
pub struct OutputWheel<T: Copy> {
    slots: Vec<VecDeque<(u64, T)>>,
    pending: usize,
}

impl<T: Copy> OutputWheel<T> {
    /// Creates a wheel covering schedules up to `max_latency` cycles out.
    pub fn new(max_latency: u64) -> Self {
        let n = (max_latency + 2).next_power_of_two().max(4) as usize;
        OutputWheel {
            slots: (0..n).map(|_| VecDeque::new()).collect(),
            pending: 0,
        }
    }

    /// Schedules `payload` for absolute cycle `at`. `at` must be within
    /// `max_latency` of the most recent push's cycle (the tile emits
    /// monotonically), which keeps each slot's queue due-ordered.
    #[inline]
    pub fn push(&mut self, at: u64, payload: T) {
        let slot = (at as usize) & (self.slots.len() - 1);
        debug_assert!(
            self.slots[slot].back().is_none_or(|&(prev, _)| prev <= at),
            "push beyond the wheel horizon would break in-slot ordering"
        );
        self.slots[slot].push_back((at, payload));
        self.pending += 1;
    }

    /// The earliest scheduled cycle, if anything is pending.
    pub fn earliest(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        self.slots.iter().filter_map(|s| s.front().map(|&(at, _)| at)).min()
    }

    /// Pops the earliest payload due at or before `now`, in `(at,
    /// emission order)` priority.
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        if self.pending == 0 {
            return None;
        }
        let mut best: Option<(u64, usize)> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(&(at, _)) = s.front() {
                // Strict `<`: equal cycles share a slot, so no cross-slot
                // tie is possible.
                if best.is_none_or(|(b, _)| at < b) {
                    best = Some((at, i));
                }
            }
        }
        let (at, i) = best?;
        if at > now {
            return None;
        }
        self.pending -= 1;
        self.slots[i].pop_front().map(|(_, v)| v)
    }

    /// Scheduled entries not yet popped.
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when nothing is scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }
}

/// Statistics for one LLC tile.
#[derive(Debug, Default)]
pub struct LlcStats {
    /// Core requests processed (the denominator of Fig. 4).
    pub accesses: Counter,
    /// Requests satisfied from the slice (or by owner forwarding).
    pub hits: Counter,
    /// Requests that went to memory.
    pub misses: Counter,
    /// Snoop messages sent (FwdGetS + FwdGetX + Inv).
    pub snoops_sent: Counter,
    /// Core requests that triggered at least one snoop — Fig. 4's
    /// numerator ("LLC accesses causing a snoop message to be sent").
    pub snooping_accesses: Counter,
    /// Writebacks received from cores.
    pub writebacks: Counter,
    /// Dirty victims written to memory.
    pub mem_writes: Counter,
    /// Cycles any request waited because all banks were busy, summed.
    pub bank_wait_cycles: Counter,
    /// Miss-to-fill latency per memory-bound MSHR: allocation of an MSHR
    /// with a pending memory fetch to the cycle its waiters' data is
    /// emitted. Observational only (see `docs/service-level-metrics.md`).
    pub miss_latency: LatencyHist,
}

impl LlcStats {
    /// Fraction of LLC accesses that triggered at least one snoop message.
    pub fn snoop_fraction(&self) -> f64 {
        if self.accesses.value() == 0 {
            0.0
        } else {
            self.snooping_accesses.value() as f64 / self.accesses.value() as f64
        }
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = LlcStats::default();
    }
}

/// One LLC tile: banked cache slice, directory slice and protocol engine.
///
/// # Examples
///
/// A GetS that misses goes to memory and returns data to the requester:
///
/// ```
/// use nocout_mem::addr::Addr;
/// use nocout_mem::llc::{LlcConfig, LlcInput, LlcOutput, LlcTile};
/// use nocout_mem::protocol::{CoreId, RequestKind, TxnId};
/// use nocout_sim::Cycle;
///
/// let mut tile = LlcTile::new(LlcConfig::nocout_tile());
/// tile.submit(LlcInput::Core {
///     txn: TxnId(1), core: CoreId(0), addr: Addr(0x40),
///     kind: RequestKind::GetS,
/// });
/// let mut now = Cycle(0);
/// let mshr = loop {
///     tile.tick(now);
///     if let Some(LlcOutput::MemRead { mshr, .. }) = tile.pop_ready(now) {
///         break mshr;
///     }
///     now += 1;
///     assert!(now.raw() < 100);
/// };
/// tile.submit(LlcInput::MemData { mshr });
/// let data = loop {
///     tile.tick(now);
///     if let Some(LlcOutput::Data { txn, to }) = tile.pop_ready(now) {
///         break (txn, to);
///     }
///     now += 1;
///     assert!(now.raw() < 200);
/// };
/// assert_eq!(data, (TxnId(1), CoreId(0)));
/// ```
#[derive(Debug)]
pub struct LlcTile {
    cfg: LlcConfig,
    cache: CacheArray,
    dir: Directory,
    banks: Vec<Cycle>,
    queue: Ring<LlcInput>,
    mshrs: TileMshrFile,
    out: OutputWheel<LlcOutput>,
    waiter_scratch: Vec<LlcWaiter>,
    /// Allocation cycle per MSHR slot for miss-to-fill recording
    /// (`u64::MAX` = not a memory-bound allocation / recording off).
    /// Indexed by the slot half of [`MshrId`]; grows only when the MSHR
    /// file itself grows.
    mshr_born: Vec<u64>,
    /// Whether miss-to-fill latencies are recorded into
    /// [`LlcStats::miss_latency`]. Observational only.
    record_tails: bool,
    /// Tile statistics.
    pub stats: LlcStats,
}

impl LlcTile {
    /// Creates a tile.
    pub fn new(cfg: LlcConfig) -> Self {
        let geometry = CacheGeometry {
            capacity_bytes: cfg.slice_bytes,
            ways: cfg.ways,
            line_bytes: 64,
        };
        LlcTile {
            cfg,
            cache: CacheArray::new(geometry),
            // The directory slice mirrors the data slice's geometry, so a
            // lookup is the same shift+mask the tag array uses.
            dir: Directory::with_geometry(geometry.sets(), cfg.ways, cfg.tile_stride as u64),
            banks: vec![Cycle::ZERO; cfg.banks],
            // Sized by the tile's in-flight bound: one queued request per
            // MSHR plus a same-cycle burst of acks/writebacks.
            queue: Ring::with_capacity(2 * cfg.mshr_capacity.max(8)),
            mshrs: TileMshrFile::new(cfg.mshr_capacity),
            out: OutputWheel::new(cfg.access_latency.max(1)),
            waiter_scratch: Vec::new(),
            mshr_born: vec![u64::MAX; cfg.mshr_capacity],
            record_tails: true,
            stats: LlcStats::default(),
        }
    }

    /// Enables or disables miss-to-fill latency recording (default on).
    /// Observational: toggling changes no protocol state or event timing,
    /// only whether [`LlcStats::miss_latency`] fills in.
    pub fn set_tail_recording(&mut self, on: bool) {
        self.record_tails = on;
    }

    /// The configuration.
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// Maps a chip address to this slice's local tag-array address.
    #[inline]
    fn slice_addr(&self, addr: Addr) -> Addr {
        Addr::from_line_index(addr.line_index() / self.cfg.tile_stride as u64)
    }

    /// Maps a slice-local victim address back to the chip address space.
    #[inline]
    fn chip_addr(&self, slice: Addr) -> Addr {
        Addr::from_line_index(
            slice.line_index() * self.cfg.tile_stride as u64 + self.cfg.tile_index as u64,
        )
    }

    /// Installs a line without timing effects or directory state
    /// (checkpoint-style warming of LLC-resident content such as the
    /// instruction footprint, mirroring the paper's warmed checkpoints).
    pub fn warm(&mut self, addr: Addr) {
        let slice = self.slice_addr(addr);
        let _ = self.cache.insert(slice, false);
    }

    /// Queues incoming work (called by the chip model on packet delivery).
    pub fn submit(&mut self, input: LlcInput) {
        self.queue.push_back(input);
    }

    /// Outstanding queued inputs plus in-flight MSHRs (drain check).
    pub fn inflight(&self) -> usize {
        self.queue.len() + self.mshrs.len()
    }

    /// Whether the tile needs servicing at all: queued inputs waiting for
    /// a bank grant, or emitted outputs waiting to be popped. MSHRs parked
    /// on external events (memory data, invalidation acks) do *not* count —
    /// they resume via [`LlcTile::submit`], which re-activates the tile.
    /// This is the membership rule for the chip model's active set.
    pub fn has_pending_work(&self) -> bool {
        !self.queue.is_empty() || !self.out.is_empty()
    }

    /// Whether any input is queued. A tile with queued inputs must be
    /// ticked every cycle (bank arbitration and its wait statistics are
    /// per-cycle); a tile without them is inert between emitted-output
    /// ready times.
    pub fn has_queued_input(&self) -> bool {
        !self.queue.is_empty()
    }

    /// The ready cycle of the earliest emitted output still queued, if
    /// any. With an empty input queue this is the tile's only upcoming
    /// event, which is what the chip-level fast-forward jumps to.
    pub fn next_output_at(&self) -> Option<Cycle> {
        self.out.earliest().map(Cycle)
    }

    fn emit(&mut self, at: Cycle, out: LlcOutput) {
        self.out.push(at.raw(), out);
    }

    /// Pops the next output whose latency has elapsed.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<LlcOutput> {
        self.out.pop_due(now.raw())
    }

    /// Advances the tile: grants queued inputs to free banks.
    pub fn tick(&mut self, now: Cycle) {
        // InvAcks and directory-only work bypass the banks; bank-bound work
        // is granted in order, one per free bank per cycle. Ungranted
        // entries are compacted forward in place (read cursor `r`, write
        // cursor `w`) instead of the old `VecDeque::remove` mid-scan; the
        // examined set, its order, and the per-entry bank-wait charging are
        // identical — in particular, once every bank is granted the
        // unexamined tail takes no wait charge this cycle.
        let mut grants = 0usize;
        let n = self.queue.len();
        let mut r = 0usize;
        let mut w = 0usize;
        while r < n && grants < self.cfg.banks {
            let input = self.queue.get(r);
            r += 1;
            let consumed = match input {
                LlcInput::InvAck { mshr } => {
                    self.handle_inv_ack(mshr, now);
                    true
                }
                LlcInput::Core { addr, .. } | LlcInput::WriteBack { addr, .. } => {
                    if self.try_grant_bank(addr, now).is_some() {
                        grants += 1;
                        let done = now + self.cfg.access_latency;
                        match input {
                            LlcInput::Core {
                                txn,
                                core,
                                addr,
                                kind,
                            } => self.handle_core(txn, core, addr, kind, done),
                            LlcInput::WriteBack { core, addr } => {
                                self.handle_writeback(core, addr, done)
                            }
                            _ => unreachable!(),
                        }
                        true
                    } else {
                        self.stats.bank_wait_cycles.incr();
                        false
                    }
                }
                LlcInput::MemData { mshr } => match self.mshrs.addr_of(mshr) {
                    // Should not happen; drop defensively.
                    None => true,
                    Some(addr) => {
                        if self.try_grant_bank(addr, now).is_some() {
                            grants += 1;
                            let done = now + self.cfg.access_latency;
                            self.handle_mem_data(mshr, done);
                            true
                        } else {
                            self.stats.bank_wait_cycles.incr();
                            false
                        }
                    }
                },
            };
            if !consumed {
                if w != r - 1 {
                    self.queue.set(w, input);
                }
                w += 1;
            }
        }
        if w != r {
            // Shift the unexamined tail down over the consumed prefix.
            while r < n {
                let v = self.queue.get(r);
                self.queue.set(w, v);
                r += 1;
                w += 1;
            }
            self.queue.truncate(w);
        }
    }

    fn try_grant_bank(&mut self, addr: Addr, now: Cycle) -> Option<usize> {
        // Bank selection must use the slice-local index: the chip-level
        // low line bits are constant within a tile (they select the tile).
        let bank = (self.slice_addr(addr).line_index() as usize) % self.cfg.banks;
        if self.banks[bank] <= now {
            self.banks[bank] = now + self.cfg.bank_occupancy;
            Some(bank)
        } else {
            None
        }
    }

    fn handle_core(&mut self, txn: TxnId, core: CoreId, addr: Addr, kind: RequestKind, done: Cycle) {
        self.stats.accesses.incr();
        let line = addr.line();

        // A fetch/collection already in flight for this line: piggyback.
        if let Some(mid) = self.mshrs.lookup_line(line.line_index()) {
            self.mshrs.push_waiter(mid, (txn, core, kind));
            return;
        }

        // Directory first: an exclusive owner elsewhere means forwarding,
        // regardless of whether our data copy is current.
        if let Some(DirState::Exclusive(owner)) = self.dir.state(line) {
            if owner != core {
                self.stats.snoops_sent.incr();
                self.stats.snooping_accesses.incr();
                self.stats.hits.incr();
                match kind {
                    RequestKind::GetS => {
                        self.dir.add_sharer(line, core);
                        self.emit(
                            done,
                            LlcOutput::FwdGetS {
                                txn,
                                owner,
                                requester: core,
                                addr: line,
                            },
                        );
                    }
                    RequestKind::GetX => {
                        self.dir.set_exclusive(line, core);
                        self.emit(
                            done,
                            LlcOutput::FwdGetX {
                                txn,
                                owner,
                                requester: core,
                                addr: line,
                            },
                        );
                    }
                }
                return;
            }
        }

        // Invalidations needed for a write to a shared line.
        let mut pending_acks = 0u32;
        if kind == RequestKind::GetX {
            if let Some(DirState::Shared(sharers)) = self.dir.state(line) {
                // Snoops are emitted below, once the MSHR collecting their
                // acks exists; here we only count them.
                pending_acks = sharers.iter().filter(|&s| s != core).count() as u32;
                self.stats.snoops_sent.add(pending_acks as u64);
            }
        }

        let slice = self.slice_addr(line);
        let hit = self.cache.lookup(slice) == Lookup::Hit;
        if hit && pending_acks == 0 {
            self.stats.hits.incr();
            match kind {
                RequestKind::GetS => self.dir.add_sharer(line, core),
                RequestKind::GetX => self.dir.set_exclusive(line, core),
            }
            self.emit(done, LlcOutput::Data { txn, to: core });
            return;
        }

        // Slow path: memory fetch and/or ack collection.
        if !hit {
            self.stats.misses.incr();
        } else {
            self.stats.hits.incr();
        }
        let mid = self.mshrs.alloc(line, pending_acks, !hit);
        // Stamp the slot's birth cycle for miss-to-fill recording; an
        // ack-only allocation explicitly clears any stale stamp a prior
        // occupant of the reused slot left behind.
        let slot = (mid.0 & 0xFFFF) as usize;
        if slot >= self.mshr_born.len() {
            self.mshr_born.resize(slot + 1, u64::MAX);
        }
        self.mshr_born[slot] = if !hit && self.record_tails {
            done.raw()
        } else {
            u64::MAX
        };
        self.mshrs.push_waiter(mid, (txn, core, kind));
        if pending_acks > 0 {
            self.stats.snooping_accesses.incr();
            if let Some(DirState::Shared(sharers)) = self.dir.state(line) {
                let targets: Vec<CoreId> = sharers.iter().filter(|&s| s != core).collect();
                for sharer in targets {
                    self.emit(
                        done,
                        LlcOutput::Inv {
                            mshr: mid,
                            sharer,
                            addr: line,
                        },
                    );
                }
            }
        }
        if !hit {
            self.emit(done, LlcOutput::MemRead {
                mshr: mid,
                addr: line,
            });
        }
    }

    fn handle_writeback(&mut self, core: CoreId, addr: Addr, done: Cycle) {
        self.stats.writebacks.incr();
        let line = addr.line();
        self.dir.remove_core(line, core);
        let slice = self.slice_addr(line);
        if self.cache.mark_dirty(slice) {
            return;
        }
        // Line was evicted from the LLC meanwhile: re-install it dirty.
        if let Some(victim) = self.cache.insert(slice, true) {
            let victim_addr = self.chip_addr(victim.addr);
            self.dir.drop_line(victim_addr);
            if victim.dirty {
                self.stats.mem_writes.incr();
                self.emit(done, LlcOutput::MemWrite { addr: victim_addr });
            }
        }
    }

    fn handle_inv_ack(&mut self, mshr: MshrId, now: Cycle) {
        let Some(finished) = self.mshrs.dec_ack(mshr) else {
            return;
        };
        if finished {
            self.complete_mshr(mshr, now + 1);
        }
    }

    fn handle_mem_data(&mut self, mshr: MshrId, done: Cycle) {
        let Some((line, finished)) = self.mshrs.mem_arrived(mshr) else {
            return;
        };
        // Install the fetched line.
        let slice = self.slice_addr(line);
        if let Some(victim) = self.cache.insert(slice, false) {
            let victim_addr = self.chip_addr(victim.addr);
            self.dir.drop_line(victim_addr);
            if victim.dirty {
                self.stats.mem_writes.incr();
                self.emit(done, LlcOutput::MemWrite { addr: victim_addr });
            }
        }
        if finished {
            self.complete_mshr(mshr, done);
        }
    }

    fn complete_mshr(&mut self, mshr: MshrId, at: Cycle) {
        let mut waiters = std::mem::take(&mut self.waiter_scratch);
        waiters.clear();
        let Some(addr) = self.mshrs.take(mshr, &mut waiters) else {
            self.waiter_scratch = waiters;
            return;
        };
        let slot = (mshr.0 & 0xFFFF) as usize;
        if let Some(born) = self.mshr_born.get_mut(slot) {
            if *born != u64::MAX {
                self.stats.miss_latency.record(at.raw() - *born);
                *born = u64::MAX;
            }
        }
        let any_write = waiters.iter().any(|&(_, _, k)| k == RequestKind::GetX);
        for &(txn, core, _) in &waiters {
            self.emit(at, LlcOutput::Data { txn, to: core });
        }
        // Final directory state: single writer becomes exclusive; otherwise
        // everyone is a sharer (mixed waiter sets are treated as shared —
        // a timing-model simplification, see DESIGN.md).
        if any_write && waiters.len() == 1 {
            self.dir.set_exclusive(addr, waiters[0].1);
        } else {
            for &(_, core, _) in &waiters {
                self.dir.add_sharer(addr, core);
            }
        }
        self.waiter_scratch = waiters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until<F: FnMut(&LlcOutput) -> bool>(
        tile: &mut LlcTile,
        now: &mut Cycle,
        max: u64,
        mut pred: F,
    ) -> Vec<LlcOutput> {
        let mut seen = Vec::new();
        for _ in 0..max {
            tile.tick(*now);
            while let Some(out) = tile.pop_ready(*now) {
                let done = pred(&out);
                seen.push(out);
                if done {
                    return seen;
                }
            }
            *now += 1;
        }
        panic!("predicate not satisfied; saw {seen:?}");
    }

    fn gets(txn: u32, core: u16, addr: u64) -> LlcInput {
        LlcInput::Core {
            txn: TxnId(txn),
            core: CoreId(core),
            addr: Addr(addr),
            kind: RequestKind::GetS,
        }
    }

    fn getx(txn: u32, core: u16, addr: u64) -> LlcInput {
        LlcInput::Core {
            txn: TxnId(txn),
            core: CoreId(core),
            addr: Addr(addr),
            kind: RequestKind::GetX,
        }
    }

    #[test]
    fn miss_fetches_from_memory_then_replies() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        tile.submit(gets(1, 0, 0x40));
        let outs = run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::MemRead { .. })
        });
        let mshr = match outs.last().unwrap() {
            LlcOutput::MemRead { mshr, addr } => {
                assert_eq!(*addr, Addr(0x40));
                *mshr
            }
            _ => unreachable!(),
        };
        tile.submit(LlcInput::MemData { mshr });
        run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::Data { txn: TxnId(1), to } if *to == CoreId(0))
        });
        assert_eq!(tile.stats.misses.value(), 1);
        assert_eq!(tile.inflight(), 0);
    }

    #[test]
    fn second_access_hits() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        tile.submit(gets(1, 0, 0x40));
        let outs = run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::MemRead { .. })
        });
        let mshr = match outs.last().unwrap() {
            LlcOutput::MemRead { mshr, .. } => *mshr,
            _ => unreachable!(),
        };
        tile.submit(LlcInput::MemData { mshr });
        run_until(&mut tile, &mut now, 100, |o| matches!(o, LlcOutput::Data { .. }));
        tile.submit(gets(2, 1, 0x40));
        run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::Data { txn: TxnId(2), .. })
        });
        assert_eq!(tile.stats.hits.value(), 1);
        assert_eq!(tile.stats.snoops_sent.value(), 0, "read sharing is snoop-free");
    }

    fn prime_line(tile: &mut LlcTile, now: &mut Cycle, addr: u64, input: LlcInput) {
        tile.submit(input);
        let outs = run_until(tile, now, 100, |o| {
            matches!(o, LlcOutput::MemRead { .. } | LlcOutput::Data { .. })
        });
        if let LlcOutput::MemRead { mshr, .. } = outs.last().unwrap() {
            tile.submit(LlcInput::MemData { mshr: *mshr });
            run_until(tile, now, 100, |o| matches!(o, LlcOutput::Data { .. }));
        }
        let _ = addr;
    }

    #[test]
    fn write_then_read_forwards_to_owner() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        prime_line(&mut tile, &mut now, 0x40, getx(1, 3, 0x40));
        // Core 5 reads: directory must forward to owner core 3.
        tile.submit(gets(2, 5, 0x40));
        let outs = run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::FwdGetS { .. })
        });
        match outs.last().unwrap() {
            LlcOutput::FwdGetS {
                txn,
                owner,
                requester,
                addr,
            } => {
                assert_eq!(*txn, TxnId(2));
                assert_eq!(*owner, CoreId(3));
                assert_eq!(*requester, CoreId(5));
                assert_eq!(*addr, Addr(0x40));
            }
            _ => unreachable!(),
        }
        assert_eq!(tile.stats.snoops_sent.value(), 1);
    }

    #[test]
    fn write_to_shared_line_invalidates_sharers() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        prime_line(&mut tile, &mut now, 0x80, gets(1, 0, 0x80));
        tile.submit(gets(2, 1, 0x80));
        run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::Data { txn: TxnId(2), .. })
        });
        // Core 2 writes: cores 0 and 1 must be invalidated before data.
        tile.submit(getx(3, 2, 0x80));
        let outs = run_until(&mut tile, &mut now, 100, |o| matches!(o, LlcOutput::Inv { .. }));
        let mshr = match outs.last().unwrap() {
            LlcOutput::Inv { mshr, .. } => *mshr,
            _ => unreachable!(),
        };
        // Exactly two Invs total; drain the second if still queued.
        let mut inv_count = outs
            .iter()
            .filter(|o| matches!(o, LlcOutput::Inv { .. }))
            .count();
        for _ in 0..50 {
            tile.tick(now);
            if let Some(LlcOutput::Inv { .. }) = tile.pop_ready(now) {
                inv_count += 1;
            }
            now += 1;
        }
        assert_eq!(inv_count, 2);
        // No data until both acks arrive.
        tile.submit(LlcInput::InvAck { mshr });
        for _ in 0..20 {
            tile.tick(now);
            assert!(tile.pop_ready(now).is_none(), "must wait for second ack");
            now += 1;
        }
        tile.submit(LlcInput::InvAck { mshr });
        run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::Data { txn: TxnId(3), to } if *to == CoreId(2))
        });
        assert_eq!(tile.stats.snoops_sent.value(), 2);
    }

    #[test]
    fn writeback_marks_dirty_and_clears_owner() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        prime_line(&mut tile, &mut now, 0xC0, getx(1, 7, 0xC0));
        tile.submit(LlcInput::WriteBack {
            core: CoreId(7),
            addr: Addr(0xC0),
        });
        for _ in 0..20 {
            tile.tick(now);
            now += 1;
        }
        assert_eq!(tile.stats.writebacks.value(), 1);
        // Next read hits without snoops (owner gone).
        tile.submit(gets(2, 1, 0xC0));
        run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::Data { txn: TxnId(2), .. })
        });
        assert_eq!(tile.stats.snoops_sent.value(), 0);
    }

    #[test]
    fn concurrent_misses_same_line_merge() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        tile.submit(gets(1, 0, 0x40));
        tile.submit(gets(2, 1, 0x40));
        let outs = run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::MemRead { .. })
        });
        let mshr = match outs.last().unwrap() {
            LlcOutput::MemRead { mshr, .. } => *mshr,
            _ => unreachable!(),
        };
        // Only one memory read for the two requests.
        tile.submit(LlcInput::MemData { mshr });
        let mut data_count = 0;
        for _ in 0..100 {
            tile.tick(now);
            while let Some(out) = tile.pop_ready(now) {
                match out {
                    LlcOutput::Data { .. } => data_count += 1,
                    LlcOutput::MemRead { .. } => panic!("second fetch must merge"),
                    _ => {}
                }
            }
            now += 1;
        }
        assert_eq!(data_count, 2);
    }

    #[test]
    fn bank_contention_delays_grants() {
        // Single bank, occupancy 2: back-to-back same-bank requests grant
        // one per two cycles.
        let cfg = LlcConfig {
            banks: 1,
            ..LlcConfig::tiled_slice()
        };
        let mut tile = LlcTile::new(cfg);
        let mut now = Cycle(0);
        // Prime two lines so both hit.
        prime_line(&mut tile, &mut now, 0x000, gets(1, 0, 0x000));
        prime_line(&mut tile, &mut now, 0x040, gets(2, 0, 0x040));
        let start = now;
        tile.submit(gets(3, 0, 0x000));
        tile.submit(gets(4, 1, 0x040));
        let mut deliveries = Vec::new();
        for _ in 0..50 {
            tile.tick(now);
            while let Some(LlcOutput::Data { txn, .. }) = tile.pop_ready(now) {
                deliveries.push((txn, now.raw() - start.raw()));
            }
            now += 1;
        }
        assert_eq!(deliveries.len(), 2);
        // Second grant waited for the bank.
        assert!(deliveries[1].1 >= deliveries[0].1 + cfg.bank_occupancy);
        assert!(tile.stats.bank_wait_cycles.value() > 0);
    }

    #[test]
    fn getx_while_memory_fetch_pending_merges() {
        // A write request joining an in-flight read fetch must not issue a
        // second memory read, and both waiters get data.
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        tile.submit(gets(1, 0, 0x40));
        let outs = run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::MemRead { .. })
        });
        let mshr = match outs.last().unwrap() {
            LlcOutput::MemRead { mshr, .. } => *mshr,
            _ => unreachable!(),
        };
        tile.submit(getx(2, 1, 0x40));
        for _ in 0..20 {
            tile.tick(now);
            assert!(
                !matches!(tile.pop_ready(now), Some(LlcOutput::MemRead { .. })),
                "merged request must not refetch"
            );
            now += 1;
        }
        tile.submit(LlcInput::MemData { mshr });
        let mut data = 0;
        for _ in 0..100 {
            tile.tick(now);
            while let Some(out) = tile.pop_ready(now) {
                if matches!(out, LlcOutput::Data { .. }) {
                    data += 1;
                }
            }
            now += 1;
        }
        assert_eq!(data, 2);
    }

    #[test]
    fn writeback_to_evicted_line_reinstalls_dirty() {
        // Tiny slice: stream enough distinct lines through to evict the
        // one a core later writes back; the writeback must re-install it
        // and eventually push a dirty victim toward memory.
        let cfg = LlcConfig {
            slice_bytes: 4096, // 4 sets × 16 ways
            ..LlcConfig::tiled_slice()
        };
        let mut tile = LlcTile::new(cfg);
        let mut now = Cycle(0);
        prime_line(&mut tile, &mut now, 0, getx(1, 0, 0));
        // Evict line 0 by filling its set far beyond associativity.
        for i in 1..=40u32 {
            let addr = (i as u64) * 4096; // same set in a 4-set slice... stride by sets*64
            prime_line(&mut tile, &mut now, addr, gets(100 + i, 1, addr));
        }
        tile.submit(LlcInput::WriteBack {
            core: CoreId(0),
            addr: Addr(0),
        });
        let mut mem_write = false;
        for _ in 0..200 {
            tile.tick(now);
            while let Some(out) = tile.pop_ready(now) {
                if matches!(out, LlcOutput::MemWrite { .. }) {
                    mem_write = true;
                }
            }
            now += 1;
        }
        assert!(
            tile.stats.writebacks.value() == 1,
            "writeback must be processed"
        );
        // Either the re-install evicted a dirty victim now or will later;
        // at minimum the line is present dirty again: a subsequent read
        // hits without memory traffic.
        tile.submit(gets(999, 2, 0));
        let outs = run_until(&mut tile, &mut now, 200, |o| {
            matches!(o, LlcOutput::Data { txn: TxnId(999), .. } | LlcOutput::MemRead { .. })
        });
        assert!(
            matches!(outs.last().unwrap(), LlcOutput::Data { .. }),
            "re-installed line must hit"
        );
        let _ = mem_write;
    }

    #[test]
    fn fwd_getx_transfers_exclusive_ownership() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        prime_line(&mut tile, &mut now, 0x40, getx(1, 3, 0x40));
        // Writer 5 takes the line from writer 3.
        tile.submit(getx(2, 5, 0x40));
        run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::FwdGetX { owner, requester, .. }
                if *owner == CoreId(3) && *requester == CoreId(5))
        });
        // A third writer must now be forwarded to 5, not 3.
        tile.submit(getx(3, 7, 0x40));
        run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::FwdGetX { owner, .. } if *owner == CoreId(5))
        });
    }

    #[test]
    fn owner_rereading_its_own_line_hits_without_snoop() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        prime_line(&mut tile, &mut now, 0x40, getx(1, 3, 0x40));
        let before = tile.stats.snoops_sent.value();
        tile.submit(gets(2, 3, 0x40));
        run_until(&mut tile, &mut now, 100, |o| {
            matches!(o, LlcOutput::Data { txn: TxnId(2), .. })
        });
        assert_eq!(tile.stats.snoops_sent.value(), before);
    }

    #[test]
    fn inv_ack_for_unknown_mshr_is_ignored() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        tile.submit(LlcInput::InvAck { mshr: MshrId(777) });
        for t in 0..10 {
            let now = Cycle(t);
            tile.tick(now);
            assert!(tile.pop_ready(now).is_none());
        }
        assert_eq!(tile.inflight(), 0);
    }

    #[test]
    fn snoop_fraction_reflects_sharing() {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        let mut now = Cycle(0);
        prime_line(&mut tile, &mut now, 0x40, gets(1, 0, 0x40));
        for i in 0..97u32 {
            tile.submit(gets(10 + i, (i % 8) as u16, 0x40));
            run_until(&mut tile, &mut now, 100, |o| matches!(o, LlcOutput::Data { .. }));
        }
        // Two writes → each snoops the accumulated sharers.
        tile.submit(getx(200, 9, 0x40));
        run_until(&mut tile, &mut now, 1000, |o| matches!(o, LlcOutput::Inv { .. }));
        assert!(tile.stats.snoop_fraction() > 0.0);
    }
}
