//! Physical addresses and NUCA address mapping.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cache-line size in bytes (Table 1).
pub const LINE_BYTES: u64 = 64;

/// Log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// A physical byte address.
///
/// # Examples
///
/// ```
/// use nocout_mem::addr::Addr;
///
/// let a = Addr(0x1234);
/// assert_eq!(a.line().0, 0x1200);
/// assert_eq!(a.line_index(), 0x48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u64);

impl Addr {
    /// The address of the cache line containing this address.
    #[inline]
    pub fn line(self) -> Addr {
        Addr(self.0 & !(LINE_BYTES - 1))
    }

    /// The line number (address >> line shift).
    #[inline]
    pub fn line_index(self) -> u64 {
        self.0 >> LINE_SHIFT
    }

    /// Builds an address from a line number.
    #[inline]
    pub fn from_line_index(idx: u64) -> Addr {
        Addr(idx << LINE_SHIFT)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Static NUCA interleaving of lines across LLC tiles, banks and memory
/// channels.
///
/// Tiled CMPs interleave across 64 tiles; NOC-Out interleaves across its
/// 8 LLC tiles, each internally 2-way banked (§5.1). Memory channels are
/// interleaved below the tile bits so traffic spreads over all four
/// DDR3-1667 channels.
///
/// # Examples
///
/// ```
/// use nocout_mem::addr::{Addr, AddressMap};
///
/// let map = AddressMap::new(8, 2, 4);
/// let a = Addr::from_line_index(13);
/// assert_eq!(map.home_tile(a), (13 % 8) as usize);
/// assert!(map.bank_in_tile(a) < 2);
/// assert!(map.memory_channel(a) < 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    llc_tiles: usize,
    banks_per_tile: usize,
    mem_channels: usize,
}

impl AddressMap {
    /// Creates a map over `llc_tiles` tiles with `banks_per_tile` banks
    /// each and `mem_channels` memory channels.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(llc_tiles: usize, banks_per_tile: usize, mem_channels: usize) -> Self {
        assert!(llc_tiles > 0 && banks_per_tile > 0 && mem_channels > 0);
        AddressMap {
            llc_tiles,
            banks_per_tile,
            mem_channels,
        }
    }

    /// Number of LLC tiles.
    pub fn llc_tiles(&self) -> usize {
        self.llc_tiles
    }

    /// Banks within each tile.
    pub fn banks_per_tile(&self) -> usize {
        self.banks_per_tile
    }

    /// Number of memory channels.
    pub fn mem_channels(&self) -> usize {
        self.mem_channels
    }

    /// Home LLC tile of a line (low-order line-interleaved).
    #[inline]
    pub fn home_tile(&self, addr: Addr) -> usize {
        (addr.line_index() % self.llc_tiles as u64) as usize
    }

    /// Bank within the home tile.
    #[inline]
    pub fn bank_in_tile(&self, addr: Addr) -> usize {
        ((addr.line_index() / self.llc_tiles as u64) % self.banks_per_tile as u64) as usize
    }

    /// Memory channel servicing this line.
    #[inline]
    pub fn memory_channel(&self, addr: Addr) -> usize {
        (addr.line_index() % self.mem_channels as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        assert_eq!(Addr(0).line(), Addr(0));
        assert_eq!(Addr(63).line(), Addr(0));
        assert_eq!(Addr(64).line(), Addr(64));
        assert_eq!(Addr(0xFFFF).line(), Addr(0xFFC0));
    }

    #[test]
    fn line_index_round_trip() {
        for i in [0u64, 1, 77, 1 << 30] {
            assert_eq!(Addr::from_line_index(i).line_index(), i);
        }
    }

    #[test]
    fn interleave_covers_all_tiles() {
        let map = AddressMap::new(8, 2, 4);
        let mut seen = [false; 8];
        for i in 0..64 {
            seen[map.home_tile(Addr::from_line_index(i))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn banks_cycle_within_tile() {
        let map = AddressMap::new(8, 2, 4);
        // Lines 0 and 8 share tile 0 but use different banks.
        let a = Addr::from_line_index(0);
        let b = Addr::from_line_index(8);
        assert_eq!(map.home_tile(a), map.home_tile(b));
        assert_ne!(map.bank_in_tile(a), map.bank_in_tile(b));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr(0xABC0).to_string(), "0xabc0");
    }

    #[test]
    #[should_panic]
    fn zero_tiles_rejected() {
        let _ = AddressMap::new(0, 1, 1);
    }
}
