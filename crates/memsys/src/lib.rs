//! Memory-system substrate for the NOC-Out reproduction.
//!
//! Everything between the cores and DRAM, built from scratch:
//!
//! * [`addr`] — physical addresses and NUCA interleaving,
//! * [`cache`] — set-associative LRU tag arrays,
//! * [`l1`] — private 32 KB L1-I/L1-D caches with MSHRs,
//! * [`mshr`] — the fixed, array-backed MSHR file behind the L1s,
//! * [`directory`] — full-map sharer tracking co-located with the LLC,
//! * [`llc`] — banked LLC tiles with the directory protocol engine
//!   (GetS/GetX, forwards, invalidations, memory fetches),
//! * [`mem_ctrl`] — DDR3-1667 channel timing,
//! * [`protocol`] — the message vocabulary shared with the interconnect.
//!
//! The paper's coherence traffic analysis (§3, Fig. 4) is reproduced by
//! running these components against the synthetic workloads of
//! `nocout-workloads`: instruction lines are read-shared and served from
//! the LLC; the vast data stream misses to memory; only the small
//! shared-writable fraction produces snoops.
//!
//! # Examples
//!
//! ```
//! use nocout_mem::addr::{Addr, AddressMap};
//! use nocout_mem::l1::{L1Access, L1Cache, L1Config};
//!
//! let map = AddressMap::new(8, 2, 4);
//! let mut l1 = L1Cache::new(L1Config::a15());
//! let addr = Addr(0x1040);
//! assert_eq!(l1.access(addr, false, 0), L1Access::Miss);
//! assert!(map.home_tile(addr) < 8);
//! ```

pub mod addr;
pub mod cache;
pub mod directory;
pub mod l1;
pub mod llc;
pub mod mem_ctrl;
pub mod mshr;
pub mod protocol;

pub use addr::{Addr, AddressMap, LINE_BYTES};
pub use cache::{CacheArray, CacheGeometry};
pub use directory::{DirState, Directory};
pub use l1::{L1Access, L1Cache, L1Config};
pub use llc::{LlcConfig, LlcInput, LlcOutput, LlcTile};
pub use mem_ctrl::{MemChannelConfig, MemRequest, MemoryChannel};
pub use protocol::{AccessKind, CoreId, Msg, MsgSlab, RequestKind, TxnId};
