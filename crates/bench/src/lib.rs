//! Benchmark support crate.
//!
//! The benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion benchmark per paper table/figure
//!   (`bench_fig1`, `bench_fig4`, `bench_fig7`, `bench_fig8`,
//!   `bench_fig9`, `bench_power`, `bench_table1`, `bench_banking`,
//!   `bench_scalability`), each exercising a scaled-down version of the
//!   corresponding experiment pipeline,
//! * `micro` — microbenchmarks of the simulator's hot paths (network
//!   tick, LLC tile, L1, workload generation, RNG).
//!
//! Run with `cargo bench -p nocout-bench`. The full-fidelity experiment
//! binaries live in `nocout-experiments`.

/// A short measurement window for benchmark-scale simulations.
pub fn bench_window() -> nocout_sim::config::MeasurementWindow {
    nocout_sim::config::MeasurementWindow::new(500, 1_500)
}

/// The core/L1 memory-path microbench operations, defined once so the
/// criterion bench (`benches/micro.rs`) and the recorded trajectory
/// keys (`benches/batch.rs`, `micro_*` in `BENCH_batch.json`) can never
/// drift apart in what "one op" means.
pub mod memopt {
    use nocout_cpu::model::{Core, CoreConfig};
    use nocout_cpu::rob::{RingRob, WakeupIndex};
    use nocout_cpu::source::{FetchedInstr, Op, ScriptedSource};
    use nocout_cpu::MissRequest;
    use nocout_mem::addr::Addr;
    use nocout_mem::l1::{L1Access, L1Cache, L1Config};
    use nocout_sim::Cycle;

    /// One ROB round: 8 waiting dispatches across 8 lines, 8 fills, 8
    /// retires — the paper-configuration MSHR-bound MLP pattern.
    #[inline]
    pub fn rob_fill_wakeup_round(rob: &mut RingRob, idx: &mut WakeupIndex, round: u64) {
        for l in 0..8u64 {
            let slot = rob.push_waiting();
            idx.enqueue(l, slot, rob);
        }
        for l in 0..8u64 {
            idx.wake_line(l, Cycle(round), rob);
        }
        for _ in 0..8 {
            rob.pop_front();
        }
    }

    /// One MSHR op: allocate → merge → out-param fill on an always-cold
    /// line (`next_line` advances so every round misses).
    #[inline]
    pub fn mshr_alloc_merge_fill(l1: &mut L1Cache, scratch: &mut Vec<u64>, next_line: &mut u64) {
        let a = Addr::from_line_index(*next_line);
        *next_line += 1;
        assert_eq!(l1.access(a, false, 0), L1Access::Miss);
        assert_eq!(l1.access(a, true, 1), L1Access::MergedMiss);
        scratch.clear();
        let _ = l1.fill(a, false, scratch);
    }

    /// A warmed core on an L1-resident single-line ALU stream: every
    /// tick is pure ring push/pop at full width (no misses possible).
    pub fn resident_alu_core() -> (Core, ScriptedSource) {
        let src = ScriptedSource::new(vec![FetchedInstr {
            fetch_line: Addr(0),
            op: Op::Alu { latency: 1 },
        }]);
        let mut core = Core::new(CoreConfig::a15());
        core.warm_l1i(Addr(0));
        (core, src)
    }

    /// Ticks a [`resident_alu_core`] once; `out` must stay empty.
    #[inline]
    pub fn resident_alu_tick(
        core: &mut Core,
        src: &mut ScriptedSource,
        out: &mut Vec<MissRequest>,
        now: Cycle,
    ) {
        core.tick(now, src, out);
        debug_assert!(out.is_empty(), "resident stream must not miss");
    }

    /// A fresh paper-configuration ROB + wakeup index pair.
    pub fn rob_and_index() -> (RingRob, WakeupIndex) {
        (RingRob::new(64), WakeupIndex::new(8))
    }

    /// A fresh paper-configuration L1.
    pub fn a15_l1() -> L1Cache {
        L1Cache::new(L1Config::a15())
    }
}
