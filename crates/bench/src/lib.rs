//! Benchmark support crate.
//!
//! The benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion benchmark per paper table/figure
//!   (`bench_fig1`, `bench_fig4`, `bench_fig7`, `bench_fig8`,
//!   `bench_fig9`, `bench_power`, `bench_table1`, `bench_banking`,
//!   `bench_scalability`), each exercising a scaled-down version of the
//!   corresponding experiment pipeline,
//! * `micro` — microbenchmarks of the simulator's hot paths (network
//!   tick, LLC tile, L1, workload generation, RNG).
//!
//! Run with `cargo bench -p nocout-bench`. The full-fidelity experiment
//! binaries live in `nocout-experiments`.

/// A short measurement window for benchmark-scale simulations.
pub fn bench_window() -> nocout_sim::config::MeasurementWindow {
    nocout_sim::config::MeasurementWindow::new(500, 1_500)
}

/// The core/L1 memory-path microbench operations, defined once so the
/// criterion bench (`benches/micro.rs`) and the recorded trajectory
/// keys (`benches/batch.rs`, `micro_*` in `BENCH_batch.json`) can never
/// drift apart in what "one op" means.
pub mod memopt {
    use nocout_cpu::model::{Core, CoreConfig};
    use nocout_cpu::rob::{RingRob, WakeupIndex};
    use nocout_cpu::source::{FetchedInstr, Op, ScriptedSource};
    use nocout_cpu::MissRequest;
    use nocout_mem::addr::Addr;
    use nocout_mem::l1::{L1Access, L1Cache, L1Config};
    use nocout_sim::Cycle;

    /// One ROB round: 8 waiting dispatches across 8 lines, 8 fills, 8
    /// retires — the paper-configuration MSHR-bound MLP pattern.
    #[inline]
    pub fn rob_fill_wakeup_round(rob: &mut RingRob, idx: &mut WakeupIndex, round: u64) {
        for l in 0..8u64 {
            let slot = rob.push_waiting();
            idx.enqueue(l, slot, rob);
        }
        for l in 0..8u64 {
            idx.wake_line(l, Cycle(round), rob);
        }
        for _ in 0..8 {
            rob.pop_front();
        }
    }

    /// One MSHR op: allocate → merge → out-param fill on an always-cold
    /// line (`next_line` advances so every round misses).
    #[inline]
    pub fn mshr_alloc_merge_fill(l1: &mut L1Cache, scratch: &mut Vec<u64>, next_line: &mut u64) {
        let a = Addr::from_line_index(*next_line);
        *next_line += 1;
        assert_eq!(l1.access(a, false, 0), L1Access::Miss);
        assert_eq!(l1.access(a, true, 1), L1Access::MergedMiss);
        scratch.clear();
        let _ = l1.fill(a, false, scratch);
    }

    /// A warmed core on an L1-resident single-line ALU stream: every
    /// tick is pure ring push/pop at full width (no misses possible).
    pub fn resident_alu_core() -> (Core, ScriptedSource) {
        let src = ScriptedSource::new(vec![FetchedInstr {
            fetch_line: Addr(0),
            op: Op::Alu { latency: 1 },
        }]);
        let mut core = Core::new(CoreConfig::a15());
        core.warm_l1i(Addr(0));
        (core, src)
    }

    /// Ticks a [`resident_alu_core`] once; `out` must stay empty.
    #[inline]
    pub fn resident_alu_tick(
        core: &mut Core,
        src: &mut ScriptedSource,
        out: &mut Vec<MissRequest>,
        now: Cycle,
    ) {
        core.tick(now, src, out);
        debug_assert!(out.is_empty(), "resident stream must not miss");
    }

    /// A fresh paper-configuration ROB + wakeup index pair.
    pub fn rob_and_index() -> (RingRob, WakeupIndex) {
        (RingRob::new(64), WakeupIndex::new(8))
    }

    /// A fresh paper-configuration L1.
    pub fn a15_l1() -> L1Cache {
        L1Cache::new(L1Config::a15())
    }
}

/// The uncore microbench operations — LLC tile service, directory
/// tracking, and the analytic-fabric event wheel — defined once for the
/// same reason as [`memopt`]: the criterion bench and the recorded
/// trajectory keys (`micro_llc_tile_rate`, `micro_directory_rate`,
/// `micro_fabric_wheel_rate`) must agree on what "one op" means.
pub mod uncoreopt {
    use nocout_mem::addr::Addr;
    use nocout_mem::directory::Directory;
    use nocout_mem::llc::{LlcConfig, LlcInput, LlcTile};
    use nocout_mem::protocol::{CoreId, RequestKind, TxnId};
    use nocout_noc::fabric::Fabric;
    use nocout_noc::latency::LatencyFabric;
    use nocout_noc::types::{MessageClass, TerminalId};
    use nocout_sim::Cycle;

    /// Lines warmed into the benchmark tile, so every submitted request
    /// hits.
    pub const LLC_WARM_LINES: u64 = 1000;

    /// A NOC-Out LLC tile with [`LLC_WARM_LINES`] resident lines.
    pub fn warmed_nocout_tile() -> LlcTile {
        let mut tile = LlcTile::new(LlcConfig::nocout_tile());
        for i in 0..LLC_WARM_LINES {
            tile.warm(Addr::from_line_index(i));
        }
        tile
    }

    /// One LLC op: submit a GetS that hits, then tick and drain the tile
    /// across two cycles — one trip through the input ring, the MSHR-file
    /// merge probe, bank arbitration, the directory update and the
    /// calendar-wheel output stage. Two cycles per request is the tile's
    /// exact service capacity (2 banks × 4-cycle occupancy, consecutive
    /// line indices alternating banks), so the input queue stays bounded
    /// and every request is granted on its submit tick.
    #[inline]
    pub fn llc_tile_hit_round(tile: &mut LlcTile, now: &mut Cycle, i: u64) {
        tile.submit(LlcInput::Core {
            txn: TxnId(i as u32),
            core: CoreId((i % 64) as u16),
            addr: Addr::from_line_index(i % LLC_WARM_LINES),
            kind: RequestKind::GetS,
        });
        for _ in 0..2 {
            tile.tick(*now);
            while tile.pop_ready(*now).is_some() {}
            *now += 1;
        }
    }

    /// A directory with the default standalone slice geometry (256 sets
    /// × 16 ways).
    pub fn bench_directory() -> Directory {
        Directory::new()
    }

    /// One directory op over a 4096-line space: track a line for two
    /// sharers, probe its state, then invalidate both — an insert, three
    /// set-indexed finds, and an entry drop per round, so population
    /// churns the way L1 fills and evictions churn it.
    #[inline]
    pub fn directory_round(dir: &mut Directory, i: u64) {
        let addr = Addr((i % 4096) * 64);
        let a = CoreId((i % 64) as u16);
        let b = CoreId(((i + 1) % 64) as u16);
        dir.add_sharer(addr, a);
        dir.add_sharer(addr, b);
        debug_assert!(dir.state(addr).is_some());
        dir.remove_core(addr, a);
        dir.remove_core(addr, b);
    }

    /// A 64-terminal contention-free fabric with a fixed 10-cycle head
    /// latency.
    pub fn tencycle_fabric() -> LatencyFabric {
        LatencyFabric::new(64, 128, Box::new(|_, _| 10))
    }

    /// One fabric op: inject a single-flit packet, advance one cycle and
    /// drain deliveries. After the first 10 ops the wheel carries a
    /// steady 10 packets in flight, so each round is one scheduled push,
    /// one slot drain and one delivery pop.
    #[inline]
    pub fn fabric_wheel_round(fab: &mut LatencyFabric, i: u64) {
        let src = TerminalId((i % 64) as u16);
        let dst = TerminalId(((i * 7 + 3) % 64) as u16);
        fab.inject(src, dst, MessageClass::Request, 0, i);
        fab.tick();
        while let Some(t) = fab.take_ready_terminal() {
            while fab.poll(t).is_some() {}
        }
    }
}

/// The flit-level network microbench operations — the saturated
/// router-pair switch hop and the per-topology loaded network tick —
/// defined once for the same reason as [`memopt`]: the criterion bench
/// (`benches/micro.rs`) and the recorded trajectory keys
/// (`micro_switch_hop_rate`, `micro_loaded_tick_rate_*` in
/// `BENCH_batch.json`) must agree on what "one op" means.
pub mod nocopt {
    use nocout_noc::network::{Network, NetworkBuilder};
    use nocout_noc::router::RouterConfig;
    use nocout_noc::topology::fbfly::{build_fbfly, FbflySpec};
    use nocout_noc::topology::mesh::{build_mesh, MeshSpec};
    use nocout_noc::topology::nocout::{build_nocout, NocOutSpec};
    use nocout_noc::types::{MessageClass, TerminalId};
    use nocout_sim::rng::SimRng;

    /// A two-mesh-router bidirectional pair carrying 5-flit response
    /// streams both ways, pre-filled so the switch allocator grants on
    /// every cycle. One *switch hop* is one granted flit traversal (the
    /// callers measure `stats().flit_hops` over the timed loop rather
    /// than counting rounds, so the key is ns-per-hop honest).
    pub fn saturated_pair() -> (Network, [TerminalId; 2]) {
        let mut b = NetworkBuilder::new(128);
        let r0 = b.add_router(RouterConfig::mesh());
        let r1 = b.add_router(RouterConfig::mesh());
        b.add_bidi_link(r0, r1, 1, 2.0);
        let t0 = b.add_terminal(r0).terminal;
        let t1 = b.add_terminal(r1).terminal;
        b.compute_routes_bfs();
        let mut net = b.build();
        for _ in 0..4 {
            net.inject(t0, t1, MessageClass::Response, 64, 0);
            net.inject(t1, t0, MessageClass::Response, 64, 0);
        }
        (net, [t0, t1])
    }

    /// One saturated-pair round: a tick, then re-inject one packet per
    /// delivery so both directions stay backlogged forever.
    #[inline]
    pub fn switch_hop_round(net: &mut Network, terms: &[TerminalId; 2]) {
        net.tick();
        for k in 0..2 {
            while net.poll(terms[k]).is_some() {
                net.inject(terms[k], terms[1 - k], MessageClass::Response, 64, 0);
            }
        }
    }

    /// A paper-scale network under the sustained random load of the
    /// `benches/micro.rs` loaded-tick benchmarks (~0.5 packets injected
    /// per cycle); one op is one `Network::tick`.
    pub struct LoadedNet {
        /// Trajectory-key suffix (`mesh`, `flattened_butterfly`,
        /// `noc_out`), matching `org_key` naming in `benches/batch.rs`.
        pub key: &'static str,
        net: Network,
        srcs: Vec<TerminalId>,
        dsts: Vec<TerminalId>,
        all: Vec<TerminalId>,
        class: MessageClass,
        payload_bytes: u32,
        rng: SimRng,
    }

    /// The three evaluated paper topologies under their loaded-tick
    /// traffic shapes: uniform-random 64-byte responses between tiles on
    /// the mesh and the flattened butterfly, and core→LLC requests on
    /// NOC-Out (the tree direction whose many low-radix routers the
    /// dirty-list scan targets).
    pub fn loaded_networks() -> Vec<LoadedNet> {
        let mesh = build_mesh(&MeshSpec::paper_64());
        let fb = build_fbfly(&FbflySpec::paper_64());
        let n = build_nocout(&NocOutSpec::paper_64());
        vec![
            LoadedNet {
                key: "mesh",
                srcs: mesh.tile_terminals.clone(),
                dsts: mesh.tile_terminals.clone(),
                all: mesh.tile_terminals.clone(),
                net: mesh.network,
                class: MessageClass::Response,
                payload_bytes: 64,
                rng: SimRng::new(1),
            },
            LoadedNet {
                key: "flattened_butterfly",
                srcs: fb.tile_terminals.clone(),
                dsts: fb.tile_terminals.clone(),
                all: fb.tile_terminals.clone(),
                net: fb.network,
                class: MessageClass::Response,
                payload_bytes: 64,
                rng: SimRng::new(1),
            },
            LoadedNet {
                key: "noc_out",
                srcs: n.core_terminals.clone(),
                dsts: n.llc_terminals.clone(),
                all: n
                    .core_terminals
                    .iter()
                    .chain(n.llc_terminals.iter())
                    .copied()
                    .collect(),
                net: n.network,
                class: MessageClass::Request,
                payload_bytes: 0,
                rng: SimRng::new(1),
            },
        ]
    }

    /// One loaded-network op: maybe inject (p = 0.5), tick, drain.
    #[inline]
    pub fn loaded_tick(ln: &mut LoadedNet) {
        if ln.rng.chance(0.5) {
            let s = ln.rng.next_below(ln.srcs.len() as u64) as usize;
            let d = ln.rng.next_below(ln.dsts.len() as u64) as usize;
            ln.net.inject(ln.srcs[s], ln.dsts[d], ln.class, ln.payload_bytes, 0);
        }
        ln.net.tick();
        for t in &ln.all {
            while ln.net.poll(*t).is_some() {}
        }
    }

    /// Flit hops performed so far (the switch-hop op count).
    pub fn flit_hops(net: &Network) -> u64 {
        net.stats().flit_hops.value()
    }

    /// Flit hops performed so far by a loaded network.
    pub fn flit_hops_loaded(ln: &LoadedNet) -> u64 {
        ln.net.stats().flit_hops.value()
    }
}

/// The service-level statistics microbench operation, defined once for
/// the same reason as [`memopt`]: the criterion bench and the recorded
/// trajectory key (`micro_latency_hist_rate`) must agree on what "one
/// op" means.
pub mod statopt {
    use nocout_sim::stats::LatencyHist;

    /// One latency-histogram round: 64 records spanning the linear and
    /// log-linear bucket ranges into `scratch`, a bucket-wise merge of
    /// `scratch` into `acc` (then a scratch reset), and a p99 read-back
    /// — the per-window record/merge/query mix of the chip's
    /// tail-metric aggregation.
    #[inline]
    pub fn latency_hist_round(scratch: &mut LatencyHist, acc: &mut LatencyHist, round: u64) {
        let mut x = round.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for _ in 0..64 {
            // splitmix64-style scramble; shifting by the low bits
            // spreads samples over every bucket magnitude.
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            scratch.record(x >> (x & 63));
        }
        acc.merge(scratch);
        scratch.reset();
        std::hint::black_box(acc.percentile(0.99));
    }
}
