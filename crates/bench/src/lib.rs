//! Benchmark support crate.
//!
//! The benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion benchmark per paper table/figure
//!   (`bench_fig1`, `bench_fig4`, `bench_fig7`, `bench_fig8`,
//!   `bench_fig9`, `bench_power`, `bench_table1`, `bench_banking`,
//!   `bench_scalability`), each exercising a scaled-down version of the
//!   corresponding experiment pipeline,
//! * `micro` — microbenchmarks of the simulator's hot paths (network
//!   tick, LLC tile, L1, workload generation, RNG).
//!
//! Run with `cargo bench -p nocout-bench`. The full-fidelity experiment
//! binaries live in `nocout-experiments`.

/// A short measurement window for benchmark-scale simulations.
pub fn bench_window() -> nocout_sim::config::MeasurementWindow {
    nocout_sim::config::MeasurementWindow::new(500, 1_500)
}
