//! One Criterion benchmark per table/figure of the paper's evaluation.
//!
//! Each benchmark executes a scaled-down version of the corresponding
//! experiment pipeline (short window, single seed, representative subset
//! of points), so `cargo bench` continuously exercises the code that
//! regenerates every published result and tracks its cost over time. The
//! full-fidelity runs live in the `nocout-experiments` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use nocout::prelude::*;
use nocout_bench::bench_window;
use nocout_noc::topology::fbfly::FbflySpec;
use nocout_noc::topology::mesh::MeshSpec;
use nocout_noc::topology::nocout::NocOutSpec;
use nocout_tech::area::{NocAreaModel, OrganizationArea};
use nocout_tech::{BufferTech, NocEnergyModel};
use std::hint::black_box;

fn run_point(org: Organization, workload: Workload, cores: usize) -> f64 {
    let spec = RunSpec {
        chip: ChipConfig::with_cores(org, cores),
        workload: workload.into(),
        window: bench_window(),
        seed: 1,
    };
    nocout::run(&spec).aggregate_ipc()
}

/// Fig. 1: core-count sweep on the analytic fabrics.
fn bench_fig1(c: &mut Criterion) {
    c.bench_function("bench_fig1", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [4usize, 16, 64] {
                acc += run_point(Organization::IdealWire, Workload::DataServing, n);
                acc += run_point(Organization::ZeroLoadMesh, Workload::DataServing, n);
            }
            black_box(acc)
        })
    });
}

/// Fig. 4: snoop-rate measurement.
fn bench_fig4(c: &mut Criterion) {
    c.bench_function("bench_fig4", |b| {
        b.iter(|| {
            let spec = RunSpec {
                chip: ChipConfig::paper(Organization::Mesh),
                workload: Workload::SatSolver.into(),
                window: bench_window(),
                seed: 1,
            };
            black_box(nocout::run(&spec).llc.snoop_percent())
        })
    });
}

/// Fig. 7: one workload across the three organizations.
fn bench_fig7(c: &mut Criterion) {
    c.bench_function("bench_fig7", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for org in Organization::EVALUATED {
                acc += run_point(org, Workload::WebSearch, 64);
            }
            black_box(acc)
        })
    });
}

/// Fig. 8: the full area breakdown of all three organizations.
fn bench_fig8(c: &mut Criterion) {
    let model = NocAreaModel::paper_32nm();
    c.bench_function("bench_fig8", |b| {
        b.iter(|| {
            let mesh = model.area(&OrganizationArea::mesh(&MeshSpec::paper_64()));
            let fb = model.area(&OrganizationArea::fbfly(&FbflySpec::paper_64()));
            let no = model.area(&OrganizationArea::nocout(&NocOutSpec::paper_64()));
            black_box(mesh.total_mm2() + fb.total_mm2() + no.total_mm2())
        })
    });
}

/// Fig. 9: the width-fitting search plus one area-normalized run.
fn bench_fig9(c: &mut Criterion) {
    let model = NocAreaModel::paper_32nm();
    c.bench_function("bench_fig9", |b| {
        b.iter(|| {
            let budget = model
                .area(&OrganizationArea::nocout(&NocOutSpec::paper_64()))
                .total_mm2();
            let (mesh_w, _) = model.fit_width_to_budget(budget, |w| {
                OrganizationArea::mesh_with_width(&MeshSpec::paper_64(), w)
            });
            let spec = RunSpec {
                chip: ChipConfig::paper(Organization::Mesh).with_link_width(mesh_w),
                workload: Workload::WebSearch.into(),
                window: bench_window(),
                seed: 1,
            };
            black_box(nocout::run(&spec).aggregate_ipc())
        })
    });
}

/// §6.4: energy accounting over measured activity.
fn bench_power(c: &mut Criterion) {
    c.bench_function("bench_power", |b| {
        let spec = RunSpec {
            chip: ChipConfig::paper(Organization::NocOut),
            workload: Workload::MapReduceC.into(),
            window: bench_window(),
            seed: 1,
        };
        let metrics = nocout::run(&spec);
        let model = NocEnergyModel::paper_32nm(128, BufferTech::FlipFlop).with_radix(2.8);
        b.iter(|| black_box(model.energy(&metrics.noc_activity()).power_w()))
    });
}

/// Table 1: configuration construction (kept honest and cheap).
fn bench_table1(c: &mut Criterion) {
    c.bench_function("bench_table1", |b| {
        b.iter(|| {
            let cfg = ChipConfig::paper(Organization::NocOut);
            black_box((cfg.nocout_spec().cores(), cfg.llc_tiles()))
        })
    });
}

/// §4.3: the banking sweep at one point.
fn bench_banking(c: &mut Criterion) {
    c.bench_function("bench_banking", |b| {
        b.iter(|| {
            let mut cfg = ChipConfig::paper(Organization::NocOut);
            cfg.banks_per_llc_tile = 4;
            let spec = RunSpec {
                chip: cfg,
                workload: Workload::DataServing.into(),
                window: bench_window(),
                seed: 1,
            };
            black_box(nocout::run(&spec).aggregate_ipc())
        })
    });
}

/// §7.1: a concentrated 128-core NOC-Out build + short run.
fn bench_scalability(c: &mut Criterion) {
    c.bench_function("bench_scalability", |b| {
        b.iter(|| {
            let mut cfg = ChipConfig::with_cores(Organization::NocOut, 128);
            cfg.concentration = 2;
            cfg.active_core_override = Some(128);
            cfg.mem_channels = 8;
            let spec = RunSpec {
                chip: cfg,
                workload: Workload::MapReduceC.into(),
                window: bench_window(),
                seed: 1,
            };
            black_box(nocout::run(&spec).aggregate_ipc())
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = figures;
    config = config();
    targets = bench_fig1, bench_fig4, bench_fig7, bench_fig8, bench_fig9,
              bench_power, bench_table1, bench_banking, bench_scalability
}
criterion_main!(figures);
