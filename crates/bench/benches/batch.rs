//! Batch-engine benchmark: single-thread tick throughput per organization,
//! the idle-scan microbenchmark (active-set vs full-scan tick at the
//! paper's 16-of-64 active-core point), trace-replay throughput against
//! the synthetic generator, plus serial-vs-parallel wall clock on a
//! sweep-style grid, recorded as a trajectory in `BENCH_batch.json` at
//! the workspace root so the speedup is tracked across PRs.
//!
//! Run with `cargo bench -p nocout-bench --bench batch`; `-- --test` runs
//! a seconds-scale smoke version (used by CI) that still verifies the
//! parallel/serial outputs are bit-identical but records nothing.

use nocout::prelude::*;
use nocout::runner::BatchRunner;
use nocout::ScaleOutChip;
use nocout_sim::config::MeasurementWindow;
use std::fmt::Write as _;
use std::time::Instant;

/// Single-thread end-to-end tick throughput (simulated cycles per second).
fn tick_throughput(org: Organization, cycles: u64) -> f64 {
    let mut chip = ScaleOutChip::new(ChipConfig::paper(org), Workload::MapReduceC, 1);
    // Warm the caches and the allocator's steady state.
    for _ in 0..2_000 {
        chip.tick();
    }
    let t = Instant::now();
    for _ in 0..cycles {
        chip.tick();
    }
    cycles as f64 / t.elapsed().as_secs_f64()
}

/// Idle-scan microbenchmark: tick throughput at the paper's common case
/// of 16 active cores on a 64-tile die (Web Search activates 16), where
/// most LLC tiles and memory channels are idle most cycles. Measures the
/// active-set scheduler (`tick`) against the full-scan reference
/// (`tick_reference`, the pre-event-driven behaviour), asserting along
/// the way that both chips stay in lockstep.
fn idle16_throughput(org: Organization, cycles: u64) -> (f64, f64) {
    let mut active = ScaleOutChip::new(ChipConfig::paper(org), Workload::WebSearch, 1);
    let mut full = ScaleOutChip::new(ChipConfig::paper(org), Workload::WebSearch, 1);
    assert_eq!(active.active_cores(), 16, "{org}: paper case is 16-of-64");
    for _ in 0..2_000 {
        active.tick();
        full.tick_reference();
    }
    let t = Instant::now();
    for _ in 0..cycles {
        active.tick();
    }
    let active_rate = cycles as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..cycles {
        full.tick_reference();
    }
    let full_rate = cycles as f64 / t.elapsed().as_secs_f64();
    let (a, f) = (active.metrics(), full.metrics());
    assert_eq!(a.instructions, f.instructions, "{org}: paths diverged");
    assert_eq!(a.network.packets, f.network.packets, "{org}: paths diverged");
    (active_rate, full_rate)
}

/// Block-dispatch microbenchmark at *full load* (64 active cores, where
/// the active-set scan advantage is near zero and the difference is the
/// instruction-delivery path): the block-fed `tick` against the
/// per-instruction `tick_reference` oracle, interleaved so machine drift
/// hits both sides equally. Asserts lockstep along the way.
fn fullload_block_vs_perinstr(org: Organization, cycles: u64) -> (f64, f64) {
    let mut block = ScaleOutChip::new(ChipConfig::paper(org), Workload::MapReduceC, 1);
    let mut perinstr = ScaleOutChip::new(ChipConfig::paper(org), Workload::MapReduceC, 1);
    for _ in 0..2_000 {
        block.tick();
        perinstr.tick_reference();
    }
    let (mut tb, mut tp) = (0.0f64, 0.0f64);
    let rounds = 4u64;
    let per_round = cycles / rounds;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..per_round {
            block.tick();
        }
        tb += t.elapsed().as_secs_f64();
        let t = Instant::now();
        for _ in 0..per_round {
            perinstr.tick_reference();
        }
        tp += t.elapsed().as_secs_f64();
    }
    let (b, p) = (block.metrics(), perinstr.metrics());
    assert_eq!(b.instructions, p.instructions, "{org}: paths diverged");
    let total = (rounds * per_round) as f64;
    (total / tb, total / tp)
}

/// Core/L1 structure microbenches (the memory-path hot structures:
/// ring-buffer ROB + line-indexed wakeup, array-backed MSHR file, and
/// the end-to-end core tick on an L1-resident ALU stream). Returns
/// operations per second for each: one ROB "op" is a full
/// dispatch→fill→retire round over 8 lines at the paper's MSHR bound,
/// one MSHR "op" is an allocate→merge→fill cycle on a cold line, one
/// core "op" is a tick.
fn core_l1_micro(iters: u64) -> (f64, f64, f64) {
    use nocout_bench::memopt;
    use nocout_sim::Cycle;

    let (mut rob, mut idx) = memopt::rob_and_index();
    let t = Instant::now();
    for round in 0..iters {
        memopt::rob_fill_wakeup_round(&mut rob, &mut idx, round);
    }
    let rob_rate = iters as f64 / t.elapsed().as_secs_f64();
    assert!(rob.is_empty());

    let mut l1 = memopt::a15_l1();
    let mut scratch = Vec::new();
    let mut next_line = 0u64;
    let t = Instant::now();
    for _ in 0..iters {
        memopt::mshr_alloc_merge_fill(&mut l1, &mut scratch, &mut next_line);
    }
    let mshr_rate = iters as f64 / t.elapsed().as_secs_f64();

    let (mut core, mut src) = memopt::resident_alu_core();
    let mut out = Vec::new();
    let t = Instant::now();
    for c in 1..=iters {
        memopt::resident_alu_tick(&mut core, &mut src, &mut out, Cycle(c));
    }
    let core_rate = iters as f64 / t.elapsed().as_secs_f64();
    (rob_rate, mshr_rate, core_rate)
}

/// Uncore structure microbenches (the LLC tile's input ring, MSHR file
/// and calendar-wheel output stage, the set-associative directory, and
/// the analytic-fabric event wheel). Returns operations per second for
/// each; one op is defined by `nocout_bench::uncoreopt`, shared with
/// `benches/micro.rs`.
fn uncore_micro(iters: u64) -> (f64, f64, f64) {
    use nocout_bench::uncoreopt;
    use nocout_noc::fabric::Fabric as _;
    use nocout_sim::Cycle;

    let mut tile = uncoreopt::warmed_nocout_tile();
    let mut now = Cycle(0);
    let t = Instant::now();
    for i in 0..iters {
        uncoreopt::llc_tile_hit_round(&mut tile, &mut now, i);
    }
    let llc_rate = iters as f64 / t.elapsed().as_secs_f64();
    assert_eq!(tile.stats.accesses.value(), iters);

    let mut dir = uncoreopt::bench_directory();
    let t = Instant::now();
    for i in 0..iters {
        uncoreopt::directory_round(&mut dir, i);
    }
    let dir_rate = iters as f64 / t.elapsed().as_secs_f64();
    assert_eq!(dir.tracked_lines(), 0);

    let mut fab = uncoreopt::tencycle_fabric();
    let t = Instant::now();
    for i in 0..iters {
        uncoreopt::fabric_wheel_round(&mut fab, i);
    }
    let fabric_rate = iters as f64 / t.elapsed().as_secs_f64();
    assert_eq!(fab.now(), Cycle(iters));
    (llc_rate, dir_rate, fabric_rate)
}

/// Flit-level network microbenches: the saturated router-pair switch hop
/// (rate counts granted flit traversals, not rounds, so it is directly
/// the inverse of ns-per-hop) and the per-topology loaded network tick.
/// One op is defined by `nocout_bench::nocopt`, shared with
/// `benches/micro.rs`.
fn noc_micro(hop_rounds: u64, loaded_ticks: u64) -> (f64, Vec<(&'static str, f64)>) {
    use nocout_bench::nocopt;

    let (mut net, terms) = nocopt::saturated_pair();
    for _ in 0..1_000 {
        nocopt::switch_hop_round(&mut net, &terms);
    }
    net.reset_stats();
    let t = Instant::now();
    for _ in 0..hop_rounds {
        nocopt::switch_hop_round(&mut net, &terms);
    }
    let hop_rate = nocopt::flit_hops(&net) as f64 / t.elapsed().as_secs_f64();

    let mut loaded = Vec::new();
    for mut ln in nocopt::loaded_networks() {
        for _ in 0..2_000 {
            nocopt::loaded_tick(&mut ln);
        }
        let t = Instant::now();
        for _ in 0..loaded_ticks {
            nocopt::loaded_tick(&mut ln);
        }
        loaded.push((ln.key, loaded_ticks as f64 / t.elapsed().as_secs_f64()));
    }
    (hop_rate, loaded)
}

/// Latency-histogram microbench: the service-level stats structure's
/// record/merge/reset/p99 round (`nocout_bench::statopt`), in rounds
/// per second.
fn latency_hist_micro(iters: u64) -> f64 {
    use nocout_bench::statopt;
    use nocout_sim::stats::LatencyHist;

    let mut scratch = LatencyHist::new();
    let mut acc = LatencyHist::new();
    for round in 0..1_000 {
        statopt::latency_hist_round(&mut scratch, &mut acc, round);
    }
    let t = Instant::now();
    for round in 0..iters {
        statopt::latency_hist_round(&mut scratch, &mut acc, round);
    }
    let rate = iters as f64 / t.elapsed().as_secs_f64();
    assert_eq!(acc.total(), (1_000 + iters) * 64);
    rate
}

/// Full-load tick rate per organization on the *data-miss-heavy* Data
/// Serving workload (vast LLC-missing dataset → the L1-D MSHR file and
/// the fill-wakeup path run hot, unlike the instruction-bound MapReduce
/// stream behind `tick_rate_*`). The cross-PR delta of this key is the
/// measured end-to-end win of the memory-path structures.
fn fullload_memheavy_rates(cycles: u64) -> Vec<(Organization, f64)> {
    [
        Organization::Mesh,
        Organization::FlattenedButterfly,
        Organization::NocOut,
    ]
    .into_iter()
    .map(|org| {
        let mut chip = ScaleOutChip::new(ChipConfig::paper(org), Workload::DataServing, 1);
        for _ in 0..2_000 {
            chip.tick();
        }
        let t = Instant::now();
        for _ in 0..cycles {
            chip.tick();
        }
        (org, cycles as f64 / t.elapsed().as_secs_f64())
    })
    .collect()
}

/// Trace-replay throughput: tick rate of a full-load Mesh chip replaying
/// a captured (looping) MapReduce-C trace, next to the same chip driven
/// by the synthetic generator — the decode-from-disk cost of the trace
/// workload class versus batched RNG generation.
fn trace_replay_throughput(cycles: u64) -> (f64, f64) {
    let cfg = ChipConfig::paper(Organization::Mesh);
    let dir = std::env::temp_dir().join(format!("nocout-bench-trace-{}", std::process::id()));
    let set = nocout::capture_synthetic_trace(cfg, Workload::MapReduceC, 1, &dir, 32_768)
        .expect("trace capture");
    let mut replay = ScaleOutChip::new(cfg, WorkloadClass::Trace(set), 1);
    let mut synth = ScaleOutChip::new(cfg, Workload::MapReduceC, 1);
    for _ in 0..2_000 {
        replay.tick();
        synth.tick();
    }
    // The capture covers the warm cycles before looping, so up to here
    // both chips consumed the same stream and progress must agree (the
    // timed sections below run for different wall-clock slices, so only
    // the warm phase is comparable).
    assert_eq!(
        replay.metrics().instructions,
        synth.metrics().instructions,
        "trace replay diverged from the synthetic stream during warm-up"
    );
    let t = Instant::now();
    for _ in 0..cycles {
        replay.tick();
    }
    let replay_rate = cycles as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..cycles {
        synth.tick();
    }
    let synth_rate = cycles as f64 / t.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    (replay_rate, synth_rate)
}

/// The sweep binary's 12-point grid (4 widths × 3 organizations) at a
/// reduced window, as one batch.
fn sweep_grid(window: MeasurementWindow) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for w in [128u32, 64, 32, 16] {
        for org in Organization::EVALUATED {
            specs.push(RunSpec {
                chip: ChipConfig::paper(org).with_link_width(w),
                workload: Workload::MapReduceW.into(),
                window,
                seed: 1,
            });
        }
    }
    specs
}

/// Appends one record line to the `BENCH_batch.json` trajectory.
fn append_record(record: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let body = existing.trim_end().trim_end_matches(']').trim_end();
    let out = if body.is_empty() || body == "[" {
        format!("[\n{record}\n]\n")
    } else {
        format!("{},\n{record}\n]\n", body.trim_end_matches(','))
    };
    match std::fs::write(path, out) {
        Ok(()) => println!("recorded trajectory point in BENCH_batch.json"),
        Err(e) => eprintln!("could not write BENCH_batch.json: {e}"),
    }
}

fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn org_key(org: Organization) -> String {
    format!("{org}").to_lowercase().replace([' ', '-'], "_")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let micro_quick = std::env::args().any(|a| a == "--micro-quick");
    let (mut tick_cycles, window) = if smoke || micro_quick {
        (5_000, MeasurementWindow::new(500, 1_000))
    } else {
        (50_000, MeasurementWindow::new(5_000, 10_000))
    };
    // A/B harnesses interleaving two builds override the measured-cycle
    // count so a quick run can still integrate long enough to be stable.
    if let Some(c) = std::env::var("NOCOUT_BENCH_TICK_CYCLES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        tick_cycles = c;
    }

    if micro_quick {
        // CI's core/L1 bench smoke: seconds-scale iteration counts, but
        // unlike `--test` the measured keys ARE appended to
        // BENCH_batch.json, so every CI run demonstrates the microbench
        // keys land in the trajectory (the absolute numbers of a quick
        // run are noisy; the committed trajectory points come from full
        // `cargo bench -p nocout-bench --bench batch` runs).
        let (rob, mshr, core) = core_l1_micro(200_000);
        println!("micro/rob_fill_wakeup     {rob:>12.0} rounds/s");
        println!("micro/l1_mshr_cycle       {mshr:>12.0} ops/s");
        println!("micro/core_alu_tick       {core:>12.0} ticks/s");
        let (llc, dir, fabric) = uncore_micro(200_000);
        println!("micro/llc_tile_hit        {llc:>12.0} ops/s");
        println!("micro/directory_round     {dir:>12.0} ops/s");
        println!("micro/fabric_wheel        {fabric:>12.0} ops/s");
        let (hop, loaded) = noc_micro(200_000, 20_000);
        println!("micro/switch_hop          {hop:>12.0} hops/s");
        let hist = latency_hist_micro(200_000);
        println!("micro/latency_hist        {hist:>12.0} rounds/s");
        let mut record = String::from("  {");
        let _ = write!(
            record,
            "\"unix_time\": {}, \"quick\": true, \
             \"micro_rob_wakeup_rate\": {rob:.0}, \
             \"micro_l1_mshr_rate\": {mshr:.0}, \
             \"micro_core_alu_tick_rate\": {core:.0}, \
             \"micro_llc_tile_rate\": {llc:.0}, \
             \"micro_directory_rate\": {dir:.0}, \
             \"micro_fabric_wheel_rate\": {fabric:.0}, \
             \"micro_switch_hop_rate\": {hop:.0}, \
             \"micro_latency_hist_rate\": {hist:.0}",
            unix_time()
        );
        for (key, rate) in &loaded {
            println!("micro/loaded_tick_{key:<20} {rate:>12.0} cycles/s");
            let _ = write!(record, ", \"micro_loaded_tick_rate_{key}\": {rate:.0}");
        }
        for (org, rate) in fullload_memheavy_rates(tick_cycles) {
            println!("fullload_memheavy/{org:<20} {rate:>12.0} cycles/s");
            let _ = write!(record, ", \"fullload_memheavy_rate_{}\": {rate:.0}", org_key(org));
        }
        record.push('}');
        append_record(&record);
        return;
    }

    let orgs = [
        Organization::Mesh,
        Organization::FlattenedButterfly,
        Organization::NocOut,
    ];
    let mut tick_rates = Vec::new();
    for org in orgs {
        let rate = tick_throughput(org, tick_cycles);
        println!("chip_tick/{org:<20} {rate:>12.0} cycles/s (single thread)");
        tick_rates.push((org, rate));
    }

    // Idle-scan microbenchmark: the paper's common case of 16 active
    // cores on a 64-tile die, active-set tick vs full-scan reference.
    let mut idle16_rates = Vec::new();
    for org in [Organization::Mesh, Organization::NocOut] {
        let (active, full) = idle16_throughput(org, tick_cycles);
        println!(
            "idle16/{org:<20} {active:>12.0} cycles/s (active-set) vs \
             {full:>12.0} (full scan): {:+.1}%",
            100.0 * (active / full - 1.0)
        );
        idle16_rates.push((org, active, full));
    }

    // Block dispatch vs the per-instruction oracle at full load.
    let mut fullload_rates = Vec::new();
    for org in [Organization::Mesh, Organization::NocOut] {
        let (block, perinstr) = fullload_block_vs_perinstr(org, tick_cycles);
        println!(
            "fullload_block/{org:<20} {block:>12.0} cycles/s (block dispatch) vs \
             {perinstr:>12.0} (per-instr oracle): {:+.1}%",
            100.0 * (block / perinstr - 1.0)
        );
        fullload_rates.push((org, block, perinstr));
    }

    // Trace replay vs synthetic generation at full load.
    let (trace_replay_rate, trace_synth_rate) = trace_replay_throughput(tick_cycles);
    println!(
        "trace_replay/mesh         {trace_replay_rate:>12.0} cycles/s (replay) vs \
         {trace_synth_rate:>12.0} (synthetic): {:+.1}%",
        100.0 * (trace_replay_rate / trace_synth_rate - 1.0)
    );

    // Core/L1 memory-path structure microbenches.
    let (rob_rate, mshr_rate, core_alu_rate) = core_l1_micro(2_000_000);
    println!("micro/rob_fill_wakeup     {rob_rate:>12.0} rounds/s");
    println!("micro/l1_mshr_cycle       {mshr_rate:>12.0} ops/s");
    println!("micro/core_alu_tick       {core_alu_rate:>12.0} ticks/s");

    // Uncore structure microbenches.
    let (llc_rate, dir_rate, fabric_rate) = uncore_micro(2_000_000);
    println!("micro/llc_tile_hit        {llc_rate:>12.0} ops/s");
    println!("micro/directory_round     {dir_rate:>12.0} ops/s");
    println!("micro/fabric_wheel        {fabric_rate:>12.0} ops/s");

    // Flit-level network microbenches.
    let (switch_hop_rate, loaded_tick_rates) = noc_micro(2_000_000, 200_000);
    println!("micro/switch_hop          {switch_hop_rate:>12.0} hops/s");
    for (key, rate) in &loaded_tick_rates {
        println!("micro/loaded_tick_{key:<20} {rate:>12.0} cycles/s");
    }

    // Service-level statistics microbench.
    let latency_hist_rate = latency_hist_micro(2_000_000);
    println!("micro/latency_hist        {latency_hist_rate:>12.0} rounds/s");

    // Full-load, data-miss-heavy end-to-end tick rate.
    let memheavy = fullload_memheavy_rates(tick_cycles);
    for (org, rate) in &memheavy {
        println!("fullload_memheavy/{org:<20} {rate:>12.0} cycles/s");
    }

    let specs = sweep_grid(window);
    let t = Instant::now();
    let serial = BatchRunner::serial().run_batch(&specs);
    let serial_s = t.elapsed().as_secs_f64();

    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel_runner = BatchRunner::new(jobs.clamp(2, 4));
    let t = Instant::now();
    let parallel = parallel_runner.run_batch(&specs);
    let parallel_s = t.elapsed().as_secs_f64();

    // The engine's contract: scheduling never changes results.
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.instructions, b.instructions, "spec {i} diverged");
        assert_eq!(a.network.packets, b.network.packets, "spec {i} diverged");
    }
    let speedup = serial_s / parallel_s;
    println!(
        "batch sweep grid: serial {serial_s:.2}s, {}-way parallel {parallel_s:.2}s \
         ({speedup:.2}x, {jobs} hardware thread(s)) — outputs bit-identical",
        parallel_runner.jobs()
    );

    if smoke {
        println!("smoke mode: not recording BENCH_batch.json");
        return;
    }

    // Append one record to the cross-PR trajectory.
    let mut record = String::from("  {");
    let _ = write!(
        record,
        "\"unix_time\": {}, \"hardware_threads\": {jobs}, \"parallel_jobs\": {}, \
         \"sweep_serial_s\": {serial_s:.3}, \"sweep_parallel_s\": {parallel_s:.3}, \
         \"sweep_speedup\": {speedup:.3}",
        unix_time(),
        parallel_runner.jobs()
    );
    for (org, rate) in &tick_rates {
        let _ = write!(record, ", \"tick_rate_{}\": {rate:.0}", org_key(*org));
    }
    for (org, active, full) in &idle16_rates {
        let key = org_key(*org);
        let _ = write!(
            record,
            ", \"idle16_tick_rate_{key}\": {active:.0}, \
             \"idle16_fullscan_rate_{key}\": {full:.0}"
        );
    }
    for (org, block, perinstr) in &fullload_rates {
        let key = org_key(*org);
        let _ = write!(
            record,
            ", \"fullload_block_rate_{key}\": {block:.0}, \
             \"fullload_perinstr_rate_{key}\": {perinstr:.0}"
        );
    }
    let _ = write!(
        record,
        ", \"trace_replay_tick_rate_mesh\": {trace_replay_rate:.0}, \
         \"trace_replay_synth_rate_mesh\": {trace_synth_rate:.0}, \
         \"micro_rob_wakeup_rate\": {rob_rate:.0}, \
         \"micro_l1_mshr_rate\": {mshr_rate:.0}, \
         \"micro_core_alu_tick_rate\": {core_alu_rate:.0}, \
         \"micro_llc_tile_rate\": {llc_rate:.0}, \
         \"micro_directory_rate\": {dir_rate:.0}, \
         \"micro_fabric_wheel_rate\": {fabric_rate:.0}, \
         \"micro_switch_hop_rate\": {switch_hop_rate:.0}, \
         \"micro_latency_hist_rate\": {latency_hist_rate:.0}"
    );
    for (key, rate) in &loaded_tick_rates {
        let _ = write!(record, ", \"micro_loaded_tick_rate_{key}\": {rate:.0}");
    }
    for (org, rate) in &memheavy {
        let _ = write!(record, ", \"fullload_memheavy_rate_{}\": {rate:.0}", org_key(*org));
    }
    record.push('}');
    append_record(&record);
}
