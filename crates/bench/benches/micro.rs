//! Microbenchmarks of the simulator's hot paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nocout_cpu::source::InstructionSource;
use nocout_mem::addr::Addr;
use nocout_mem::cache::{CacheArray, CacheGeometry};
use nocout_sim::rng::{SimRng, Zipf};
use nocout_sim::Cycle;
use nocout_workloads::{Workload, WorkloadGen};
use std::hint::black_box;

/// Flit-level networks under sustained random traffic (all three
/// evaluated topologies), plus the saturated router-pair switch-hop op.
/// The op definitions live in `nocout_bench::nocopt`, shared with the
/// recorded trajectory keys (`micro_switch_hop_rate`,
/// `micro_loaded_tick_rate_*`) in `benches/batch.rs`.
fn bench_network_tick(c: &mut Criterion) {
    use nocout_bench::nocopt;

    let mut g = c.benchmark_group("network");
    g.throughput(Throughput::Elements(1000));
    for mut ln in nocopt::loaded_networks() {
        g.bench_function(format!("{}_64_tick_1k_cycles_loaded", ln.key), |b| {
            b.iter(|| {
                for _ in 0..1000 {
                    nocopt::loaded_tick(&mut ln);
                }
                black_box(nocopt::flit_hops_loaded(&ln))
            })
        });
    }
    g.bench_function("switch_hop_1k_rounds_saturated_pair", |b| {
        let (mut net, terms) = nocopt::saturated_pair();
        b.iter(|| {
            for _ in 0..1000 {
                nocopt::switch_hop_round(&mut net, &terms);
            }
            black_box(nocopt::flit_hops(&net))
        })
    });
    g.finish();
}

/// Full-system cycle cost: end-to-end `chip.tick()` for every
/// organization (the detailed flit-level fabrics and both analytic
/// fabrics), so a hot-path regression in any organization's tick loop is
/// visible in `cargo bench` output.
fn bench_chip_tick(c: &mut Criterion) {
    use nocout::prelude::*;
    let mut g = c.benchmark_group("chip");
    g.throughput(Throughput::Elements(1000));
    for org in [
        Organization::Mesh,
        Organization::FlattenedButterfly,
        Organization::NocOut,
        Organization::IdealWire,
        Organization::ZeroLoadMesh,
    ] {
        g.bench_function(format!("{org}_tick_1k_cycles"), |b| {
            let mut chip = nocout::ScaleOutChip::new(
                ChipConfig::paper(org),
                Workload::MapReduceC,
                1,
            );
            b.iter(|| {
                for _ in 0..1000 {
                    chip.tick();
                }
                black_box(chip.now())
            })
        });
    }
    g.finish();
}

/// Core hot-path structures: the ring-buffer ROB with line-indexed
/// wakeup (dispatch → fill → retire round trips) and the end-to-end core
/// tick on an L1-resident ALU stream (pure ring push/pop at full width).
/// The op definitions live in `nocout_bench::memopt`, shared with the
/// recorded trajectory keys in `benches/batch.rs`.
fn bench_core_structs(c: &mut Criterion) {
    use nocout_bench::memopt;

    let mut g = c.benchmark_group("core");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("rob_fill_wakeup_1k_rounds", |b| {
        let (mut rob, mut idx) = memopt::rob_and_index();
        b.iter(|| {
            for round in 0..1000u64 {
                memopt::rob_fill_wakeup_round(&mut rob, &mut idx, round);
            }
            black_box(rob.len())
        })
    });
    g.bench_function("core_tick_1k_resident_alu", |b| {
        let (mut core, mut src) = memopt::resident_alu_core();
        let mut out = Vec::new();
        let mut now = Cycle(0);
        b.iter(|| {
            for _ in 0..1000 {
                now += 1;
                memopt::resident_alu_tick(&mut core, &mut src, &mut out, now);
            }
            black_box(core.stats.retired.value())
        })
    });
    g.finish();
}

/// L1 MSHR file: the allocate → merge → fill cycle on always-cold lines
/// (each op exercises a slot claim, a waiter merge and an out-param
/// release plus the tag-array install).
fn bench_l1_mshr(c: &mut Criterion) {
    use nocout_bench::memopt;

    let mut g = c.benchmark_group("l1");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("mshr_alloc_merge_fill_1k", |b| {
        let mut l1 = memopt::a15_l1();
        let mut scratch = Vec::new();
        let mut next_line = 0u64;
        b.iter(|| {
            for _ in 0..1000u64 {
                memopt::mshr_alloc_merge_fill(&mut l1, &mut scratch, &mut next_line);
            }
            black_box(l1.outstanding_misses())
        })
    });
    g.finish();
}

/// Uncore hot-path structures: LLC tile service (input ring, MSHR file
/// and calendar-wheel output stage), the set-associative directory, and
/// the analytic-fabric event wheel. The op definitions live in
/// `nocout_bench::uncoreopt`, shared with the recorded trajectory keys
/// in `benches/batch.rs`.
fn bench_uncore(c: &mut Criterion) {
    use nocout_bench::uncoreopt;

    let mut g = c.benchmark_group("uncore");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("llc_tile_1k_hits", |b| {
        let mut tile = uncoreopt::warmed_nocout_tile();
        let mut now = Cycle(0);
        b.iter(|| {
            for i in 0..1000u64 {
                uncoreopt::llc_tile_hit_round(&mut tile, &mut now, i);
            }
            black_box(tile.stats.accesses.value())
        })
    });
    g.bench_function("directory_1k_rounds", |b| {
        let mut dir = uncoreopt::bench_directory();
        b.iter(|| {
            for i in 0..1000u64 {
                uncoreopt::directory_round(&mut dir, i);
            }
            black_box(dir.tracked_lines())
        })
    });
    g.bench_function("fabric_wheel_1k_rounds", |b| {
        use nocout_noc::fabric::Fabric;
        let mut fab = uncoreopt::tencycle_fabric();
        b.iter(|| {
            for i in 0..1000u64 {
                uncoreopt::fabric_wheel_round(&mut fab, i);
            }
            black_box(fab.now())
        })
    });
    g.finish();
}

/// Tag-array operations.
fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("cache_array_lookup_insert", |b| {
        let mut cache = CacheArray::new(CacheGeometry::llc_slice(1024 * 1024));
        let mut rng = SimRng::new(3);
        b.iter(|| {
            for _ in 0..1000 {
                let a = Addr::from_line_index(rng.next_below(100_000));
                if cache.lookup(a) == nocout_mem::cache::Lookup::Miss {
                    cache.insert(a, false);
                }
            }
            black_box(cache.valid_lines())
        })
    });
}

/// Workload stream generation.
fn bench_workload_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("data_serving_next_instr", |b| {
        let mut gen = WorkloadGen::new(Workload::DataServing.profile(), 0, 1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= gen.next_instr().fetch_line.0;
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Service-level latency histogram: the record/merge/reset/p99 round
/// shared with the `micro_latency_hist_rate` trajectory key
/// (`nocout_bench::statopt`).
fn bench_latency_hist(c: &mut Criterion) {
    use nocout_bench::statopt;
    use nocout_sim::stats::LatencyHist;

    let mut g = c.benchmark_group("stats");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("latency_hist_1k_rounds", |b| {
        let mut scratch = LatencyHist::new();
        let mut acc = LatencyHist::new();
        let mut round = 0u64;
        b.iter(|| {
            for _ in 0..1000 {
                statopt::latency_hist_round(&mut scratch, &mut acc, round);
                round += 1;
            }
            black_box(acc.total())
        })
    });
    g.finish();
}

/// RNG and Zipf sampling.
fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_next_u64_x1000", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
    c.bench_function("zipf_sample_x1000", |b| {
        let zipf = Zipf::new(96 * 1024, 0.6);
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc ^= zipf.sample(&mut rng);
            }
            black_box(acc)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = micro;
    config = config();
    targets = bench_network_tick, bench_chip_tick, bench_core_structs, bench_l1_mshr,
              bench_uncore, bench_cache_array, bench_workload_gen, bench_latency_hist,
              bench_rng
}
criterion_main!(micro);
