//! The network container: terminals, routers, links, and the per-cycle
//! engine.
//!
//! A [`Network`] is assembled by a [`NetworkBuilder`] (usually through one
//! of the [`crate::topology`] constructors), after which clients interact
//! with it only through terminals: [`Network::inject`] queues a packet at a
//! terminal's network interface and [`Network::poll`] retrieves delivered
//! packets. [`Network::tick`] advances the whole fabric by one cycle.
//!
//! ## Cycle semantics
//!
//! * Flits scheduled to arrive at cycle *t* become visible to arbitration at
//!   *t*.
//! * A flit granted an output at *t* arrives downstream at
//!   *t + pipeline_delay + link_delay*; per-hop zero-load latency is
//!   therefore 3 cycles for the mesh (2-stage router + 1-cycle link) and
//!   1 cycle for reduction/dispersion tree nodes, as in Table 1.
//! * Credits are consumed at grant time and returned `credit_delay` cycles
//!   after the flit departs the downstream buffer.
//!
//! ## Flat storage
//!
//! The per-cycle engine runs on a structure-of-arrays core: `build()`
//! hoists every router's input ports, output ports, and route table into
//! network-level contiguous arrays (`vcs`, `in_occ`, `in_credit`,
//! `out_ports`, `route`), indexed through per-router base offsets kept in a
//! small `RouterMeta` header. A flit-hop then touches a handful of adjacent
//! cache lines instead of chasing per-router heap `Vec`s. Routers with
//! buffered flits are tracked in an `active_routers` bitmap whose
//! ascending-bit scan reproduces the ascending-index full scan it replaced
//! bit for bit, and each hop's arrival and credit return ride a single
//! event wheel — fused into one event when both land on the same cycle.

use crate::flit::Flit;
use crate::packet::{Delivery, Packet, PacketId, PacketSlab};
use crate::router::{
    arbitrate, Feeder, InPort, OutPort, OutTarget, Router, RouterConfig, VcQueue, UNROUTED,
};
use crate::stats::NetStats;
use crate::types::{MessageClass, PortIndex, RouterId, TerminalId, CLASS_COUNT};
use crate::wheel::EventWheel;
use nocout_sim::ring::Ring;
use nocout_sim::Cycle;

/// Maximum supported hop delay (pipeline + link) in cycles. The event wheel
/// is sized to this; topology builders assert their delays fit, so the
/// wheel never takes its growth path here.
pub const MAX_HOP_DELAY: u64 = 32;

#[derive(Debug, Clone, Copy)]
enum ArrivalDest {
    RouterPort { router: RouterId, port: PortIndex },
    Terminal(TerminalId),
}

#[derive(Debug, Clone, Copy)]
enum CreditDest {
    RouterPort { router: RouterId, port: PortIndex },
    Terminal(TerminalId),
}

/// One scheduled consequence of a flit send, all carried by a single event
/// wheel. Within a cycle, credit application (which only touches credit
/// counters) and arrival application (which only touches buffers, terminals
/// and delivery state) commute, so draining them interleaved in push order
/// is indistinguishable from the credits-then-arrivals phase split this
/// replaced.
#[derive(Debug, Clone, Copy)]
enum HopEvent {
    /// A flit reaching its downstream buffer or ejecting at a terminal.
    Arrival { dest: ArrivalDest, flit: Flit },
    /// A credit returning upstream after a downstream buffer slot freed.
    Credit {
        dest: CreditDest,
        class: MessageClass,
    },
    /// Both halves of one hop whose delays land on the same cycle (the
    /// credit class is the flit's class): one wheel push instead of two.
    Fused {
        dest: ArrivalDest,
        flit: Flit,
        credit: CreditDest,
    },
}

/// Precomputed credit-return path of an input port: where the credit goes
/// and how long it takes (already clamped to ≥ 1 at build time).
#[derive(Debug, Clone, Copy)]
struct CreditReturn {
    dest: CreditDest,
    delay: u8,
}

/// Per-router header of the flat network core: the configuration plus the
/// base offsets of this router's slices in the network-level arrays, and
/// the two per-router occupancy summaries the switch allocator consults.
#[derive(Debug)]
struct RouterMeta {
    cfg: RouterConfig,
    /// First input-port index in `in_occ`/`in_credit`; the same port's VC
    /// rings start at `in_base * CLASS_COUNT` in `vcs`.
    in_base: u32,
    /// First output-port index in `out_ports`.
    out_base: u32,
    in_count: u8,
    out_count: u8,
    /// Number of flits currently buffered anywhere in this router.
    buffered: u32,
    /// Occupancy bitmask over input ports (bit `p` set ⇔ some VC at input
    /// port `p` holds flits) — the routers here top out at 16 ports (the
    /// 15×15 flattened-butterfly radix), so a `u64` covers any topology.
    port_occ: u64,
}

#[derive(Debug)]
struct InjectLane {
    queue: Ring<PacketId>,
    /// Flits of the head packet already pushed into the router.
    sent_flits: u16,
}

impl Default for InjectLane {
    fn default() -> Self {
        InjectLane {
            queue: Ring::with_capacity(4),
            sent_flits: 0,
        }
    }
}

#[derive(Debug)]
struct Terminal {
    /// Router and input port this terminal injects into.
    attach_router: RouterId,
    attach_port: PortIndex,
    /// Router holding this terminal's ejection port (differs from
    /// `attach_router` for split terminals such as NOC-Out cores).
    eject_router: RouterId,
    lanes: [InjectLane; CLASS_COUNT],
    /// Credits into the attached input port's VCs.
    inject_credits: [u8; CLASS_COUNT],
    /// Round-robin pointer over classes for the single NI link.
    rr_class: u8,
    /// Per-class reassembly: flits received of the in-flight packet.
    rx_progress: [u16; CLASS_COUNT],
    delivered: Ring<Delivery>,
    queued_packets: u64,
    /// Whether this terminal sits in the network's ready list.
    in_ready: bool,
}

/// Handle returned when attaching a terminal: the terminal id plus the
/// router ports created for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TerminalAttachment {
    /// The new terminal.
    pub terminal: TerminalId,
    /// Input port allocated on the router (injection side).
    pub in_port: PortIndex,
    /// Output port allocated on the router (ejection side).
    pub out_port: PortIndex,
}

/// Incrementally builds a [`Network`].
///
/// # Examples
///
/// Build a two-router network and send a packet across it:
///
/// ```
/// use nocout_noc::network::NetworkBuilder;
/// use nocout_noc::router::RouterConfig;
/// use nocout_noc::types::MessageClass;
///
/// let mut b = NetworkBuilder::new(128);
/// let r0 = b.add_router(RouterConfig::mesh());
/// let r1 = b.add_router(RouterConfig::mesh());
/// b.add_link(r0, r1, 1, 1.8);
/// b.add_link(r1, r0, 1, 1.8);
/// let t0 = b.add_terminal(r0).terminal;
/// let t1 = b.add_terminal(r1).terminal;
/// b.compute_routes_bfs();
/// let mut net = b.build();
///
/// net.inject(t0, t1, MessageClass::Request, 0, 42);
/// let d = loop {
///     net.tick();
///     if let Some(d) = net.poll(t1) {
///         break d;
///     }
///     assert!(net.now().raw() < 100, "packet must arrive quickly");
/// };
/// assert_eq!(d.packet.token, 42);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    routers: Vec<Router>,
    terminals: Vec<Terminal>,
    link_width_bits: u32,
    /// Ejection/injection link geometry.
    terminal_link_delay: u8,
    terminal_link_mm: f32,
}

impl NetworkBuilder {
    /// Starts a network whose links are `link_width_bits` wide (one flit per
    /// cycle per link; packets are serialized into
    /// `ceil(bits / link_width_bits)` flits).
    pub fn new(link_width_bits: u32) -> Self {
        assert!(link_width_bits > 0);
        NetworkBuilder {
            routers: Vec::new(),
            terminals: Vec::new(),
            link_width_bits,
            terminal_link_delay: 1,
            terminal_link_mm: 0.5,
        }
    }

    /// Overrides the delay/length of terminal attachment links.
    pub fn terminal_link(&mut self, delay: u8, length_mm: f32) -> &mut Self {
        self.terminal_link_delay = delay;
        self.terminal_link_mm = length_mm;
        self
    }

    /// Adds a router, returning its id.
    pub fn add_router(&mut self, cfg: RouterConfig) -> RouterId {
        self.routers.push(Router::new(cfg, 0));
        RouterId((self.routers.len() - 1) as u16)
    }

    /// Adds a unidirectional link from `from` to `to`, returning
    /// `(out_port at from, in_port at to)`. The downstream buffer depth
    /// (and thus the sender's credit count) is the downstream router's
    /// configured `vc_depth`.
    ///
    /// # Panics
    ///
    /// Panics if the hop delay (downstream pipeline + link) would exceed
    /// [`MAX_HOP_DELAY`].
    pub fn add_link(
        &mut self,
        from: RouterId,
        to: RouterId,
        link_delay: u8,
        length_mm: f32,
    ) -> (PortIndex, PortIndex) {
        let depth = self.routers[to.index()].cfg.vc_depth;
        self.add_link_with_depth(from, to, link_delay, length_mm, depth)
    }

    /// Like [`add_link`](Self::add_link) but with an explicit downstream
    /// buffer depth for this port, used by the flattened butterfly where VC
    /// depth is sized per link to cover its round-trip credit time
    /// (Table 1: "variable flits/VC").
    pub fn add_link_with_depth(
        &mut self,
        from: RouterId,
        to: RouterId,
        link_delay: u8,
        length_mm: f32,
        depth: u8,
    ) -> (PortIndex, PortIndex) {
        let from_cfg = self.routers[from.index()].cfg;
        assert!(
            (from_cfg.pipeline_delay as u64 + link_delay as u64) < MAX_HOP_DELAY,
            "hop delay exceeds event-wheel capacity"
        );
        let to_depth = depth;
        let in_port = {
            let rt = &mut self.routers[to.index()];
            rt.in_ports.push(InPort::new(
                to_depth,
                Feeder::Router {
                    router: from,
                    port: PortIndex::MAX, // patched below
                },
                1 + link_delay,
            ));
            (rt.in_ports.len() - 1) as PortIndex
        };
        let out_port = {
            let rf = &mut self.routers[from.index()];
            rf.out_ports.push(OutPort {
                target: OutTarget::Router {
                    router: to,
                    port: in_port,
                    link_delay,
                    length_mm,
                },
                credits: [to_depth; CLASS_COUNT],
                max_credits: [to_depth; CLASS_COUNT],
                owner: [None; CLASS_COUNT],
                rr_next: 0,
                flits_sent: 0,
            });
            (rf.out_ports.len() - 1) as PortIndex
        };
        // Patch the feeder back-reference now that the out port exists.
        if let Feeder::Router { port, .. } =
            &mut self.routers[to.index()].in_ports[in_port as usize].feeder
        {
            *port = out_port;
        }
        (out_port, in_port)
    }

    /// Adds two links forming a bidirectional channel; returns the
    /// `(out@a→b, in@b)` and `(out@b→a, in@a)` port pairs.
    pub fn add_bidi_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        link_delay: u8,
        length_mm: f32,
    ) -> ((PortIndex, PortIndex), (PortIndex, PortIndex)) {
        let ab = self.add_link(a, b, link_delay, length_mm);
        let ba = self.add_link(b, a, link_delay, length_mm);
        (ab, ba)
    }

    /// Attaches a terminal (core, LLC tile, or memory controller) to a
    /// router, allocating an injection input port and an ejection output
    /// port on it.
    pub fn add_terminal(&mut self, router: RouterId) -> TerminalAttachment {
        self.add_terminal_split(router, router)
    }

    /// Attaches a terminal whose injection and ejection sides live on
    /// *different* routers. NOC-Out cores use this: they inject into their
    /// reduction-tree node but receive from their dispersion-tree node.
    pub fn add_terminal_split(
        &mut self,
        inject_router: RouterId,
        eject_router: RouterId,
    ) -> TerminalAttachment {
        let router = inject_router;
        let terminal = TerminalId(self.terminals.len() as u16);
        let depth = self.routers[router.index()].cfg.vc_depth;
        let in_port = {
            let r = &mut self.routers[router.index()];
            r.in_ports.push(InPort::new(
                depth,
                Feeder::Terminal(terminal),
                1 + self.terminal_link_delay,
            ));
            (r.in_ports.len() - 1) as PortIndex
        };
        let out_port = {
            let r = &mut self.routers[eject_router.index()];
            r.out_ports.push(OutPort {
                target: OutTarget::Terminal {
                    terminal,
                    link_delay: self.terminal_link_delay,
                    length_mm: self.terminal_link_mm,
                },
                credits: [u8::MAX; CLASS_COUNT],
                max_credits: [u8::MAX; CLASS_COUNT],
                owner: [None; CLASS_COUNT],
                rr_next: 0,
                flits_sent: 0,
            });
            (r.out_ports.len() - 1) as PortIndex
        };
        self.terminals.push(Terminal {
            attach_router: router,
            attach_port: in_port,
            eject_router,
            lanes: Default::default(),
            inject_credits: [depth; CLASS_COUNT],
            rr_class: 0,
            rx_progress: [0; CLASS_COUNT],
            delivered: Ring::with_capacity(4),
            queued_packets: 0,
            in_ready: false,
        });
        TerminalAttachment {
            terminal,
            in_port,
            out_port,
        }
    }

    /// Sets the routing-table entry at `router` for packets destined to
    /// `terminal`.
    pub fn set_route(&mut self, router: RouterId, terminal: TerminalId, out_port: PortIndex) {
        let r = &mut self.routers[router.index()];
        if r.route.len() <= terminal.index() {
            r.route.resize(terminal.index() + 1, UNROUTED);
        }
        r.route[terminal.index()] = out_port;
    }

    /// Computes shortest-path routing tables for every (router, terminal)
    /// pair by BFS over hop delays, breaking ties by lowest port index.
    ///
    /// Suitable for topologies with unique or symmetric shortest paths
    /// (trees, rings, the 1-D LLC butterfly). The 2-D mesh and flattened
    /// butterfly builders install explicit dimension-order tables instead,
    /// which BFS cannot guarantee.
    pub fn compute_routes_bfs(&mut self) {
        let nr = self.routers.len();
        // adjacency: for each router, (out_port, dest router, hop_delay)
        let mut adj: Vec<Vec<(PortIndex, usize, u64)>> = vec![Vec::new(); nr];
        let mut max_hop = 1u64;
        for (ri, r) in self.routers.iter().enumerate() {
            for (pi, o) in r.out_ports.iter().enumerate() {
                if let OutTarget::Router {
                    router, link_delay, ..
                } = o.target
                {
                    let hop = (r.cfg.pipeline_delay as u64 + link_delay as u64).max(1);
                    max_hop = max_hop.max(hop);
                    adj[ri].push((pi as PortIndex, router.index(), hop));
                }
            }
        }
        // Reversed adjacency, built once for all terminals (it was
        // formerly rebuilt inside the per-terminal loop).
        let mut radj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nr];
        for (ri, edges) in adj.iter().enumerate() {
            for &(_, to, w) in edges {
                radj[to].push((ri, w));
            }
        }
        // Dial's bucket queue in place of a BinaryHeap Dijkstra: hop
        // delays are small integers, so every finite distance is below
        // (nr - 1) * max_hop and scanning buckets in index order settles
        // nodes in the same nondecreasing-distance order the heap did,
        // producing identical `dist` and therefore identical routes.
        // Buckets drain completely per terminal, so the allocation is
        // reused across the whole loop.
        let bound = (nr as u64).saturating_sub(1) * max_hop + 1;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); bound as usize];
        let mut dist = vec![u64::MAX; nr];
        for t in 0..self.terminals.len() {
            let term = TerminalId(t as u16);
            // Shortest paths from the terminal's ejection router backwards
            // over reversed edges.
            let target_router = self.terminals[t].eject_router.index();
            dist.iter_mut().for_each(|d| *d = u64::MAX);
            dist[target_router] = 0;
            buckets[0].push(target_router);
            let mut remaining = 1usize;
            let mut d = 0u64;
            while remaining > 0 {
                while let Some(u) = buckets[d as usize].pop() {
                    remaining -= 1;
                    if d > dist[u] {
                        continue; // stale entry superseded by a shorter path
                    }
                    for &(v, w) in &radj[u] {
                        if d + w < dist[v] {
                            dist[v] = d + w;
                            buckets[(d + w) as usize].push(v);
                            remaining += 1;
                        }
                    }
                }
                d += 1;
            }
            // Choose, at each router, the lowest-index out port on a
            // shortest path.
            for ri in 0..nr {
                if ri == target_router {
                    // Route to the terminal's ejection port.
                    let eject = self.routers[ri]
                        .out_ports
                        .iter()
                        .position(|o| {
                            matches!(o.target, OutTarget::Terminal { terminal, .. } if terminal == term)
                        })
                        .expect("terminal must have an ejection port") as PortIndex;
                    self.set_route(RouterId(ri as u16), term, eject);
                    continue;
                }
                if dist[ri] == u64::MAX {
                    continue; // unreachable; leave UNROUTED
                }
                let mut best: Option<PortIndex> = None;
                for &(pi, to, w) in &adj[ri] {
                    if dist[to] != u64::MAX && dist[to] + w == dist[ri] && best.is_none() {
                        best = Some(pi);
                    }
                }
                if let Some(p) = best {
                    self.set_route(RouterId(ri as u16), term, p);
                }
            }
        }
    }

    /// Finalizes the network, flattening every router's ports and route
    /// table into the network-level contiguous arrays (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if a router's radix exceeds the 64-port occupancy word
    /// (routes may still be `UNROUTED` for genuinely unreachable pairs;
    /// using such a route at runtime panics with a diagnostic).
    pub fn build(mut self) -> Network {
        let nt = self.terminals.len();
        for r in &mut self.routers {
            if r.route.len() < nt {
                r.route.resize(nt, UNROUTED);
            }
        }
        let nr = self.routers.len();
        let total_in: usize = self.routers.iter().map(|r| r.in_ports.len()).sum();
        let total_out: usize = self.routers.iter().map(|r| r.out_ports.len()).sum();
        let mut rmeta = Vec::with_capacity(nr);
        let mut vcs = Vec::with_capacity(total_in * CLASS_COUNT);
        let mut in_occ = Vec::with_capacity(total_in);
        let mut in_credit = Vec::with_capacity(total_in);
        let mut out_ports = Vec::with_capacity(total_out);
        let mut route = Vec::with_capacity(nr * nt);
        for r in self.routers {
            assert!(
                r.in_ports.len() <= 64,
                "router radix exceeds the 64-bit port-occupancy word"
            );
            rmeta.push(RouterMeta {
                cfg: r.cfg,
                in_base: in_occ.len() as u32,
                out_base: out_ports.len() as u32,
                in_count: r.in_ports.len() as u8,
                out_count: r.out_ports.len() as u8,
                buffered: 0,
                port_occ: 0,
            });
            for ip in r.in_ports {
                in_occ.push(0u8);
                in_credit.push(CreditReturn {
                    dest: match ip.feeder {
                        Feeder::Router { router, port } => CreditDest::RouterPort { router, port },
                        Feeder::Terminal(t) => CreditDest::Terminal(t),
                    },
                    delay: ip.credit_delay.max(1),
                });
                vcs.extend(ip.vcs);
            }
            out_ports.extend(r.out_ports);
            route.extend_from_slice(&r.route);
        }
        Network {
            rmeta,
            vcs,
            in_occ,
            in_credit,
            out_ports,
            route,
            active_routers: vec![0u64; nr.div_ceil(64)],
            terminals: self.terminals,
            slab: PacketSlab::new(),
            hops: EventWheel::with_slots(MAX_HOP_DELAY as usize * 2),
            stats: NetStats::new(),
            now: Cycle::ZERO,
            link_width_bits: self.link_width_bits,
            active_terms: Vec::new(),
            ready_terms: Ring::with_capacity(16),
            buffered_flits: 0,
            hop_scratch: Vec::new(),
            candidate_scratch: Vec::new(),
            per_out_scratch: Vec::new(),
        }
    }
}

/// A flit-level network-on-chip instance.
///
/// See the [module documentation](crate::network) for cycle semantics, the
/// flat storage layout, and the [`NetworkBuilder`] example for usage.
#[derive(Debug)]
pub struct Network {
    /// Per-router headers: config, slice offsets, buffered count, port mask.
    rmeta: Vec<RouterMeta>,
    /// Every VC ring in the network, laid out `[router][in port][class]`;
    /// a port's rings start at `(in_base + port) * CLASS_COUNT`.
    vcs: Vec<VcQueue>,
    /// Per-input-port VC occupancy bytes (bit `vc` set ⇔ queue non-empty),
    /// indexed `in_base + port`.
    in_occ: Vec<u8>,
    /// Per-input-port credit-return routes, indexed `in_base + port`.
    in_credit: Vec<CreditReturn>,
    /// Every output port in the network, indexed `out_base + port`.
    out_ports: Vec<OutPort>,
    /// Concatenated route tables, indexed `router * num_terminals + dst`
    /// (every router's table is resized to the terminal count at build).
    route: Vec<PortIndex>,
    /// Dirty bitmap over routers (bit `ri` set ⇔ `rmeta[ri].buffered > 0`),
    /// maintained at the flit push sites and in `send_flit`. The switch
    /// allocator scans set bits in ascending order, which reproduces the
    /// ascending full router scan it replaced exactly.
    active_routers: Vec<u64>,
    terminals: Vec<Terminal>,
    slab: PacketSlab,
    /// Single wheel carrying both halves of every hop (arrival downstream,
    /// credit upstream): one drain per tick, one push per hop when the
    /// delays coincide.
    hops: EventWheel<HopEvent>,
    stats: NetStats,
    now: Cycle,
    link_width_bits: u32,
    /// Terminals with non-empty injection lanes (dirty list: only these
    /// are visited by `inject_flits`).
    active_terms: Vec<u16>,
    /// Terminals with undelivered packets, in arrival order (dirty list
    /// consumed by `take_ready_terminal`).
    ready_terms: Ring<u16>,
    /// Flits currently buffered in router input VCs (sum of per-router
    /// `buffered`), maintained for the drained-network fast path.
    buffered_flits: u64,
    /// Reusable per-cycle scratch buffers (hoisted out of the hot path so
    /// steady state allocates nothing).
    hop_scratch: Vec<HopEvent>,
    /// `(desired out port, in port, class)` triples gathered per router.
    candidate_scratch: Vec<(PortIndex, PortIndex, MessageClass)>,
    /// Per-out-port candidate list handed to the arbiter.
    per_out_scratch: Vec<(PortIndex, MessageClass)>,
}

/// Read-only view of one router in the flat network core (topology
/// inspection, tests).
#[derive(Clone, Copy)]
pub struct RouterView<'a> {
    net: &'a Network,
    ri: usize,
}

impl RouterView<'_> {
    fn meta(&self) -> &RouterMeta {
        &self.net.rmeta[self.ri]
    }

    /// The configured microarchitecture of this router.
    pub fn config(&self) -> RouterConfig {
        self.meta().cfg
    }

    /// Number of input ports.
    pub fn num_in_ports(&self) -> usize {
        self.meta().in_count as usize
    }

    /// Number of output ports.
    pub fn num_out_ports(&self) -> usize {
        self.meta().out_count as usize
    }

    /// The routing-table entry for `terminal`, if routed.
    pub fn route_to(&self, terminal: TerminalId) -> Option<PortIndex> {
        let p = self.net.route[self.ri * self.net.terminals.len() + terminal.index()];
        (p != UNROUTED).then_some(p)
    }

    /// Total flits currently buffered in this router's input VCs.
    pub fn buffered_flits(&self) -> u32 {
        self.meta().buffered
    }

    /// Flits sent per output port since construction.
    pub fn flits_sent_per_port(&self) -> Vec<u64> {
        self.net
            .out_slice(self.ri)
            .iter()
            .map(|o| o.flits_sent)
            .collect()
    }
}

impl Network {
    /// Current network cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Link width in bits (flit size).
    pub fn link_width_bits(&self) -> u32 {
        self.link_width_bits
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    /// Number of routers (including tree nodes).
    pub fn num_routers(&self) -> usize {
        self.rmeta.len()
    }

    /// Read-only access to a router (topology inspection, tests).
    pub fn router(&self, id: RouterId) -> RouterView<'_> {
        assert!(id.index() < self.rmeta.len(), "router id out of range");
        RouterView {
            net: self,
            ri: id.index(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets statistics at the warmup/measurement boundary.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Packets currently anywhere in the network (injection queues,
    /// buffers, links).
    pub fn packets_in_flight(&self) -> usize {
        self.slab.len()
    }

    /// This router's output ports as a slice of the flat array.
    #[inline]
    fn out_slice(&self, ri: usize) -> &[OutPort] {
        let m = &self.rmeta[ri];
        let base = m.out_base as usize;
        &self.out_ports[base..base + m.out_count as usize]
    }

    /// Queues a packet for injection at terminal `src`. The payload is
    /// serialized into flits according to the network's link width.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn inject(
        &mut self,
        src: TerminalId,
        dst: TerminalId,
        class: MessageClass,
        payload_bytes: u32,
        token: u64,
    ) {
        assert!(dst.index() < self.terminals.len(), "dst out of range");
        let packet = Packet::new(
            src,
            dst,
            class,
            payload_bytes,
            self.link_width_bits,
            token,
            self.now,
        );
        let id = self.slab.insert(packet);
        let term = &mut self.terminals[src.index()];
        let was_idle = term.queued_packets == 0;
        term.lanes[class.vc()].queue.push_back(id);
        term.queued_packets += 1;
        if was_idle {
            self.active_terms.push(src.0);
        }
        self.stats.packets_injected.incr();
        // `queued_packets` is maintained as exactly the sum of the lane
        // queue lengths, so the peak-depth stat reads the counter instead
        // of re-summing the lanes.
        if term.queued_packets > self.stats.peak_inject_queue {
            self.stats.peak_inject_queue = term.queued_packets;
        }
    }

    /// Takes the next delivered packet at `terminal`, if any.
    pub fn poll(&mut self, terminal: TerminalId) -> Option<Delivery> {
        self.terminals[terminal.index()].delivered.pop_front()
    }

    /// Pops a terminal that has undelivered packets, in arrival order.
    ///
    /// The caller is expected to drain the terminal with [`Network::poll`]
    /// before the next call; a terminal reappears in the ready list when a
    /// later packet arrives for it. This lets clients visit only busy
    /// terminals instead of scanning every terminal every cycle (on big
    /// chips most terminals are idle in most cycles).
    pub fn take_ready_terminal(&mut self) -> Option<TerminalId> {
        while let Some(t) = self.ready_terms.pop_front() {
            let term = &mut self.terminals[t as usize];
            term.in_ready = false;
            // Skip entries made stale by direct `poll` calls.
            if !term.delivered.is_empty() {
                return Some(TerminalId(t));
            }
        }
        None
    }

    /// Advances the network by one cycle.
    pub fn tick(&mut self) {
        self.deliver_hops();
        self.inject_flits();
        self.switch_flits();
        if cfg!(debug_assertions) && (self.now.0 & 0x3F) == 0 {
            self.check_invariants();
        }
        self.now.0 += 1;
    }

    /// Advances the network by one cycle through the reference switch path:
    /// a full ascending scan over every router, candidates gathered by
    /// probing every (port, VC) queue front, and the general grant loop with
    /// no fast paths. Bit-identical to [`Network::tick`] by construction —
    /// the differential tests drive two networks in lockstep, one per path,
    /// and compare every observable.
    pub fn tick_reference(&mut self) {
        self.deliver_hops();
        self.inject_flits();
        self.switch_flits_reference();
        if cfg!(debug_assertions) && (self.now.0 & 0x3F) == 0 {
            self.check_invariants();
        }
        self.now.0 += 1;
    }

    /// When the network next needs a normal tick: every cycle while flits
    /// are buffered in routers or terminals hold queued injections;
    /// otherwise the earliest event in the hop wheel (the same condition
    /// [`Network::run_until_drained`] fast-forwards on), or idle when the
    /// wheel is empty too.
    pub fn next_event(&self) -> crate::fabric::NextEvent {
        use crate::fabric::NextEvent;
        if self.buffered_flits > 0 || !self.active_terms.is_empty() {
            return NextEvent::EveryCycle;
        }
        match self.hops.next_occupied_delta(self.now) {
            Some(d) => NextEvent::At(self.now + d),
            None => NextEvent::Idle,
        }
    }

    /// Advances the clock by `delta` cycles with no per-cycle work.
    /// Callers must not skip *past* a scheduled wheel event (see
    /// [`Network::next_event`]) — that would both lose it and alias the
    /// wheel's modular slot indexing. Skipping exactly *to* the event
    /// cycle is fine: its tick runs after the skip and drains the slot.
    pub fn skip_idle(&mut self, delta: u64) {
        debug_assert_eq!(self.buffered_flits, 0);
        debug_assert!(self.active_terms.is_empty());
        debug_assert!(
            self.hops
                .next_occupied_delta(self.now)
                .is_none_or(|d| d >= delta),
            "cannot skip past a scheduled event"
        );
        self.now.0 += delta;
    }

    /// Runs until all in-flight packets are delivered or `max_cycles`
    /// elapse; returns `true` if the network drained.
    ///
    /// When nothing is buffered in any router and no terminal has queued
    /// injections, the only pending work lives in the event wheel; the
    /// clock then fast-forwards to the next scheduled event instead of
    /// burning full no-op ticks (the skipped cycles still count against
    /// `max_cycles`).
    pub fn run_until_drained(&mut self, max_cycles: u64) -> bool {
        use crate::fabric::NextEvent;
        let mut budget = max_cycles;
        while budget > 0 {
            if self.slab.is_empty() {
                return true;
            }
            match self.next_event() {
                NextEvent::EveryCycle => {}
                // Packets in flight but no buffered flits, queued
                // injections, or scheduled events: nothing can ever
                // progress.
                NextEvent::Idle => return false,
                NextEvent::At(at) => {
                    // Jump to the cycle of the event; its tick runs below
                    // and needs one cycle of budget of its own.
                    let skip = at.raw() - self.now.raw();
                    if skip >= budget {
                        self.now.0 += budget;
                        return self.slab.is_empty();
                    }
                    self.skip_idle(skip);
                    budget -= skip;
                }
            }
            self.tick();
            budget -= 1;
        }
        self.slab.is_empty()
    }

    /// Drains every hop event due this cycle. Credits and arrivals apply in
    /// push order; see [`HopEvent`] for why that interleaving is
    /// indistinguishable from the former credits-then-arrivals phases.
    fn deliver_hops(&mut self) {
        let mut scratch = std::mem::take(&mut self.hop_scratch);
        self.hops.drain_into(self.now, &mut scratch);
        for ev in scratch.drain(..) {
            match ev {
                HopEvent::Credit { dest, class } => self.apply_credit(dest, class),
                HopEvent::Arrival { dest, flit } => self.apply_arrival(dest, flit),
                HopEvent::Fused { dest, flit, credit } => {
                    self.apply_credit(credit, flit.class);
                    self.apply_arrival(dest, flit);
                }
            }
        }
        self.hop_scratch = scratch;
    }

    #[inline]
    fn apply_credit(&mut self, dest: CreditDest, class: MessageClass) {
        match dest {
            CreditDest::RouterPort { router, port } => {
                let base = self.rmeta[router.index()].out_base as usize;
                let o = &mut self.out_ports[base + port as usize];
                let c = &mut o.credits[class.vc()];
                debug_assert!(*c < o.max_credits[class.vc()]);
                *c += 1;
            }
            CreditDest::Terminal(t) => {
                self.terminals[t.index()].inject_credits[class.vc()] += 1;
            }
        }
    }

    #[inline]
    fn apply_arrival(&mut self, dest: ArrivalDest, flit: Flit) {
        match dest {
            ArrivalDest::RouterPort { router, port } => {
                self.push_flit(router, port, flit);
            }
            ArrivalDest::Terminal(t) => {
                let term = &mut self.terminals[t.index()];
                let prog = &mut term.rx_progress[flit.class.vc()];
                debug_assert_eq!(
                    *prog, flit.seq,
                    "per-class wormhole delivery must be in order"
                );
                *prog += 1;
                if flit.is_tail() {
                    *prog = 0;
                    let packet = self.slab.remove(flit.packet);
                    let latency = self.now.saturating_since(packet.injected_at);
                    self.stats
                        .record_delivery(packet.class, latency, packet.size_flits);
                    term.delivered.push_back(Delivery {
                        packet,
                        delivered_at: self.now,
                    });
                    if !term.in_ready {
                        term.in_ready = true;
                        self.ready_terms.push_back(t.0);
                    }
                }
            }
        }
    }

    /// Pushes a flit into a router input VC, maintaining the occupancy
    /// masks, the buffered counters, and the active-router bitmap (one of
    /// the dirty-list push sites; the others are injection below and the
    /// arrival path above, which lands here too).
    #[inline]
    fn push_flit(&mut self, router: RouterId, port: PortIndex, flit: Flit) {
        let ri = router.index();
        let gp = self.rmeta[ri].in_base as usize + port as usize;
        let cv = flit.class.vc();
        self.vcs[gp * CLASS_COUNT + cv].push_back(flit);
        self.in_occ[gp] |= 1 << cv;
        let m = &mut self.rmeta[ri];
        m.port_occ |= 1u64 << port;
        m.buffered += 1;
        self.active_routers[ri >> 6] |= 1u64 << (ri & 63);
        self.buffered_flits += 1;
        self.stats.buffer_writes.incr();
    }

    fn inject_flits(&mut self) {
        // Dirty list: visit only terminals with queued packets. A terminal
        // leaves the list the cycle its last queued packet finishes
        // serializing (order within the list is irrelevant — each terminal
        // feeds its own private router input port).
        let mut i = 0;
        while i < self.active_terms.len() {
            let ti = self.active_terms[i] as usize;
            let term = &mut self.terminals[ti];
            debug_assert!(term.queued_packets > 0, "stale active-terminal entry");
            // One flit per cycle over the NI link; round-robin over classes
            // with queued traffic and available credits.
            for k in 0..CLASS_COUNT {
                let c = (term.rr_class as usize + k) % CLASS_COUNT;
                let lane_has_work = !term.lanes[c].queue.is_empty();
                if !lane_has_work || term.inject_credits[c] == 0 {
                    continue;
                }
                let pid = term.lanes[c].queue.get(0);
                let packet = self.slab.get(pid);
                let flit = Flit {
                    packet: pid,
                    seq: term.lanes[c].sent_flits,
                    size: packet.size_flits,
                    dst: packet.dst,
                    class: packet.class,
                };
                let router = term.attach_router;
                let port = term.attach_port;
                term.inject_credits[c] -= 1;
                term.lanes[c].sent_flits += 1;
                if term.lanes[c].sent_flits == packet.size_flits {
                    term.lanes[c].queue.pop_front();
                    term.lanes[c].sent_flits = 0;
                    term.queued_packets -= 1;
                }
                term.rr_class = ((c + 1) % CLASS_COUNT) as u8;
                // The NI link is modelled as immediate visibility this
                // cycle; the first hop's arbitration applies the usual
                // router + link delay.
                self.push_flit(router, port, flit);
                break;
            }
            if self.terminals[ti].queued_packets == 0 {
                self.active_terms.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Evaluates one (input port, VC) pair as a switch candidate: the
    /// queue-front flit must satisfy routing, wormhole ownership and
    /// credits. Returns the `(desired out, in port, class)` triple, or
    /// `None` (also when the queue is empty, so the reference gather can
    /// probe unconditionally).
    #[inline]
    fn candidate_at(
        &self,
        ri: usize,
        in_base: usize,
        out_base: usize,
        ipi: usize,
        cv: usize,
    ) -> Option<(PortIndex, PortIndex, MessageClass)> {
        let vc = &self.vcs[(in_base + ipi) * CLASS_COUNT + cv];
        let flit = *vc.front()?;
        let desired = match vc.current_out {
            Some(p) => p,
            None => {
                debug_assert!(flit.is_head());
                let p = self.route[ri * self.terminals.len() + flit.dst.index()];
                assert!(p != UNROUTED, "router {ri} has no route to {}", flit.dst);
                p
            }
        };
        let o = &self.out_ports[out_base + desired as usize];
        // Ownership: heads need a free downstream VC, bodies must own it.
        match o.owner[cv] {
            None if !flit.is_head() => return None,
            Some(owner) if owner != ipi as PortIndex => return None,
            _ => {}
        }
        let is_terminal_target = matches!(o.target, OutTarget::Terminal { .. });
        if !is_terminal_target && o.credits[cv] == 0 {
            return None;
        }
        Some((desired, ipi as PortIndex, MessageClass::from_vc(cv)))
    }

    /// One pass over the occupied input VCs of router `ri`: each queue-front
    /// flit that satisfies routing, wormhole ownership and credits becomes a
    /// `(desired out, in port, class)` candidate. (A VC therefore offers at
    /// most one flit per cycle — one crossbar input per input VC.)
    ///
    /// Candidate order — ascending port, then ascending VC within a port —
    /// reproduces the plain nested scan exactly (`MessageClass::ALL` is
    /// ascending-VC order), on both paths below, so arbitration is
    /// bit-identical to probing every queue front.
    fn gather_candidates(
        &self,
        ri: usize,
        candidates: &mut Vec<(PortIndex, PortIndex, MessageClass)>,
    ) {
        let m = &self.rmeta[ri];
        let in_base = m.in_base as usize;
        let out_base = m.out_base as usize;
        if m.in_count <= 2 {
            // Radix-≤2 fast path (NOC-Out tree nodes): probe the one or two
            // per-port occupancy bytes directly instead of walking the
            // port-mask word. Skipping a zero byte is exactly skipping a
            // clear port bit, so the order is unchanged.
            for ipi in 0..m.in_count as usize {
                let mut cm = self.in_occ[in_base + ipi];
                while cm != 0 {
                    let cv = cm.trailing_zeros() as usize;
                    cm &= cm - 1;
                    if let Some(c) = self.candidate_at(ri, in_base, out_base, ipi, cv) {
                        candidates.push(c);
                    }
                }
            }
        } else {
            // Walk only occupied (port, VC) pairs via the occupancy masks.
            let mut pm = m.port_occ;
            while pm != 0 {
                let ipi = pm.trailing_zeros() as usize;
                pm &= pm - 1;
                let mut cm = self.in_occ[in_base + ipi];
                while cm != 0 {
                    let cv = cm.trailing_zeros() as usize;
                    cm &= cm - 1;
                    if let Some(c) = self.candidate_at(ri, in_base, out_base, ipi, cv) {
                        candidates.push(c);
                    }
                }
            }
        }
    }

    /// Reference candidate gather: probe every (port, VC) queue front with
    /// no occupancy masks and no radix fast path. The invariant checker
    /// asserts this agrees with [`Network::gather_candidates`] on every
    /// router.
    fn gather_candidates_reference(
        &self,
        ri: usize,
        candidates: &mut Vec<(PortIndex, PortIndex, MessageClass)>,
    ) {
        let m = &self.rmeta[ri];
        let in_base = m.in_base as usize;
        let out_base = m.out_base as usize;
        for ipi in 0..m.in_count as usize {
            for cv in 0..CLASS_COUNT {
                if let Some(c) = self.candidate_at(ri, in_base, out_base, ipi, cv) {
                    candidates.push(c);
                }
            }
        }
    }

    /// Runs the configured arbiter for output port `out` of router `ri`
    /// over the flat state.
    fn arbitrate_at(
        &mut self,
        ri: usize,
        out: PortIndex,
        candidates: &[(PortIndex, MessageClass)],
    ) -> (PortIndex, MessageClass) {
        let m = &self.rmeta[ri];
        let (arbiter, in_count) = (m.cfg.arbiter, m.in_count as usize);
        let o = &mut self.out_ports[m.out_base as usize + out as usize];
        arbitrate(arbiter, in_count, &mut o.rr_next, candidates)
    }

    fn switch_flits(&mut self) {
        let now = self.now;
        // Reusable scratch buffers (per-cycle allocation here used to
        // dominate the tick's allocator traffic).
        let mut candidates = std::mem::take(&mut self.candidate_scratch);
        let mut per_out = std::mem::take(&mut self.per_out_scratch);
        // Scan only routers holding flits, in ascending index order. The
        // word snapshot stays valid while its routers are processed: a send
        // can clear only the *current* router's bit (arrivals to other
        // routers go through the wheel with delay ≥ 1, never directly into
        // a buffer this cycle).
        for wi in 0..self.active_routers.len() {
            let mut word = self.active_routers[wi];
            while word != 0 {
                let ri = (wi << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                candidates.clear();
                self.gather_candidates(ri, &mut candidates);
                // Grant one flit per out port among its gathered
                // candidates. Lone candidate — the common case on a lightly
                // contended router — skips the per-out-port grouping
                // machinery; the arbiter still runs so round-robin state
                // advances exactly as the general path would.
                if let [(out, p, c)] = candidates[..] {
                    let (win_port, win_class) = self.arbitrate_at(ri, out, &[(p, c)]);
                    self.send_flit(ri, out, win_port, win_class, now);
                    continue;
                }
                while let Some(&(out, _, _)) = candidates.first() {
                    per_out.clear();
                    candidates.retain(|&(o, p, c)| {
                        if o == out {
                            per_out.push((p, c));
                            false
                        } else {
                            true
                        }
                    });
                    let (win_port, win_class) = self.arbitrate_at(ri, out, &per_out);
                    self.send_flit(ri, out, win_port, win_class, now);
                }
            }
        }
        self.candidate_scratch = candidates;
        self.per_out_scratch = per_out;
    }

    /// Reference switch pass (see [`Network::tick_reference`]): ascending
    /// full scan, reference gather, general grant loop only.
    fn switch_flits_reference(&mut self) {
        let now = self.now;
        let mut candidates = std::mem::take(&mut self.candidate_scratch);
        let mut per_out = std::mem::take(&mut self.per_out_scratch);
        for ri in 0..self.rmeta.len() {
            if self.rmeta[ri].buffered == 0 {
                continue;
            }
            candidates.clear();
            self.gather_candidates_reference(ri, &mut candidates);
            while let Some(&(out, _, _)) = candidates.first() {
                per_out.clear();
                candidates.retain(|&(o, p, c)| {
                    if o == out {
                        per_out.push((p, c));
                        false
                    } else {
                        true
                    }
                });
                let (win_port, win_class) = self.arbitrate_at(ri, out, &per_out);
                self.send_flit(ri, out, win_port, win_class, now);
            }
        }
        self.candidate_scratch = candidates;
        self.per_out_scratch = per_out;
    }

    fn send_flit(
        &mut self,
        router: usize,
        out: PortIndex,
        in_port: PortIndex,
        class: MessageClass,
        now: Cycle,
    ) {
        let cv = class.vc();
        let (in_base, out_base, pipeline_delay) = {
            let m = &self.rmeta[router];
            (
                m.in_base as usize,
                m.out_base as usize,
                m.cfg.pipeline_delay,
            )
        };
        let gp = in_base + in_port as usize;
        let vc = &mut self.vcs[gp * CLASS_COUNT + cv];
        let flit = vc.pop_front().expect("winner queue non-empty");
        if flit.is_head() {
            vc.current_out = Some(out);
        }
        if flit.is_tail() {
            vc.current_out = None;
        }
        if vc.len() == 0 {
            let occ = &mut self.in_occ[gp];
            *occ &= !(1 << cv);
            if *occ == 0 {
                self.rmeta[router].port_occ &= !(1u64 << in_port);
            }
        }
        self.rmeta[router].buffered -= 1;
        if self.rmeta[router].buffered == 0 {
            self.active_routers[router >> 6] &= !(1u64 << (router & 63));
        }
        let o = &mut self.out_ports[out_base + out as usize];
        if flit.is_head() {
            o.owner[cv] = Some(in_port);
        }
        if flit.is_tail() {
            o.owner[cv] = None;
        }
        if let OutTarget::Router { .. } = o.target {
            debug_assert!(o.credits[cv] > 0);
            o.credits[cv] -= 1;
        }
        o.flits_sent += 1;
        let target = o.target;
        self.buffered_flits -= 1;
        self.stats.buffer_reads.incr();
        self.stats.xbar_traversals.incr();
        self.stats.flit_hops.incr();
        self.stats.flit_mm += target.length_mm() as f64;
        // Schedule the arrival downstream and the credit return upstream.
        // When both are due the same cycle they fuse into one wheel push;
        // otherwise two events go into the same wheel (still one drain per
        // tick, versus the former separate arrival and credit wheels).
        let hop = (pipeline_delay + target.link_delay()).max(1) as u64;
        let dest = match target {
            OutTarget::Router { router, port, .. } => ArrivalDest::RouterPort { router, port },
            OutTarget::Terminal { terminal, .. } => ArrivalDest::Terminal(terminal),
        };
        let ret = self.in_credit[gp];
        let arrive_at = now + hop;
        let credit_at = now + ret.delay as u64;
        if credit_at == arrive_at {
            self.hops.push(
                now,
                arrive_at,
                HopEvent::Fused {
                    dest,
                    flit,
                    credit: ret.dest,
                },
            );
        } else {
            self.hops.push(now, arrive_at, HopEvent::Arrival { dest, flit });
            self.hops.push(
                now,
                credit_at,
                HopEvent::Credit {
                    dest: ret.dest,
                    class,
                },
            );
        }
    }

    /// Walks the routing tables and verifies that every terminal can reach
    /// every other terminal without loops, returning the hop count matrix
    /// indexed `[src][dst]`.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if any route is missing, leads through a
    /// dangling port, or loops.
    pub fn validate_routes(&self) -> Vec<Vec<u32>> {
        let nt = self.terminals.len();
        let mut hops = vec![vec![0u32; nt]; nt];
        for (s, term) in self.terminals.iter().enumerate() {
            for (d, row) in hops[s].iter_mut().enumerate() {
                let dst = TerminalId(d as u16);
                let mut router = term.attach_router;
                let mut count = 0u32;
                loop {
                    assert!(
                        count as usize <= self.rmeta.len(),
                        "routing loop from t{s} to t{d}"
                    );
                    let ri = router.index();
                    let port = self.route[ri * nt + d];
                    assert!(
                        port != UNROUTED,
                        "router {} has no route from t{s} to t{d}",
                        router
                    );
                    let out_base = self.rmeta[ri].out_base as usize;
                    match self.out_ports[out_base + port as usize].target {
                        OutTarget::Terminal { terminal, .. } => {
                            assert_eq!(terminal, dst, "route from t{s} ejects at wrong terminal");
                            break;
                        }
                        OutTarget::Router { router: next, .. } => {
                            router = next;
                            count += 1;
                        }
                    }
                }
                *row = count;
            }
        }
        hops
    }

    /// Round-robin arbiter pointers of every output port, in flat port
    /// order (observability for the differential layout tests).
    pub fn debug_rr_state(&self) -> Vec<u16> {
        self.out_ports.iter().map(|o| o.rr_next).collect()
    }

    /// Validates internal invariants (used by tests and, sampled, by the
    /// debug-assertion tick path): credit counters never exceed their
    /// maxima; the buffered-flit counters, the occupancy masks, and the
    /// active-router dirty bitmap all match what the queue contents imply;
    /// and the masked candidate gather (with its radix-≤2 fast path) agrees
    /// with a first-principles probe of every queue front.
    pub fn check_invariants(&self) {
        let mut grand_total = 0u64;
        let mut expect_active = vec![0u64; self.active_routers.len()];
        let mut fast = Vec::new();
        let mut reference = Vec::new();
        for ri in 0..self.rmeta.len() {
            let m = &self.rmeta[ri];
            let in_base = m.in_base as usize;
            let mut total = 0u32;
            let mut expect_port_occ = 0u64;
            for ipi in 0..m.in_count as usize {
                let mut expect_occ = 0u8;
                for cv in 0..CLASS_COUNT {
                    let vc = &self.vcs[(in_base + ipi) * CLASS_COUNT + cv];
                    total += vc.len() as u32;
                    if vc.len() > 0 {
                        expect_occ |= 1 << cv;
                    }
                }
                assert_eq!(
                    self.in_occ[in_base + ipi],
                    expect_occ,
                    "router {ri} port {ipi} VC occupancy drifted"
                );
                if expect_occ != 0 {
                    expect_port_occ |= 1u64 << ipi;
                }
            }
            assert_eq!(total, m.buffered, "router {ri} buffered count drifted");
            assert_eq!(
                m.port_occ, expect_port_occ,
                "router {ri} port occupancy drifted"
            );
            if total > 0 {
                expect_active[ri >> 6] |= 1u64 << (ri & 63);
            }
            grand_total += u64::from(m.buffered);
            for o in self.out_slice(ri) {
                for c in 0..CLASS_COUNT {
                    assert!(
                        o.credits[c] <= o.max_credits[c],
                        "router {ri} credit overflow"
                    );
                }
            }
            fast.clear();
            reference.clear();
            self.gather_candidates(ri, &mut fast);
            self.gather_candidates_reference(ri, &mut reference);
            assert_eq!(
                fast, reference,
                "router {ri} masked candidate gather diverged from the reference probe"
            );
        }
        assert_eq!(
            self.active_routers, expect_active,
            "active-router dirty bitmap drifted"
        );
        assert_eq!(
            grand_total, self.buffered_flits,
            "network buffered-flit counter drifted"
        );
        for (ti, term) in self.terminals.iter().enumerate() {
            let queued: u64 = term.lanes.iter().map(|l| l.queue.len() as u64).sum();
            assert_eq!(
                queued, term.queued_packets,
                "terminal {ti} queue count drifted"
            );
            assert_eq!(
                queued > 0,
                self.active_terms.contains(&(ti as u16)),
                "terminal {ti} active-list membership drifted"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ArbiterKind;

    fn two_router_net(link_delay: u8, pipeline: u8) -> (Network, TerminalId, TerminalId) {
        let mut b = NetworkBuilder::new(128);
        let cfg = RouterConfig {
            pipeline_delay: pipeline,
            vc_depth: 5,
            arbiter: ArbiterKind::RoundRobin,
        };
        let r0 = b.add_router(cfg);
        let r1 = b.add_router(cfg);
        b.add_bidi_link(r0, r1, link_delay, 2.0);
        let t0 = b.add_terminal(r0).terminal;
        let t1 = b.add_terminal(r1).terminal;
        b.compute_routes_bfs();
        (b.build(), t0, t1)
    }

    #[test]
    fn single_packet_crosses_one_hop() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        net.inject(t0, t1, MessageClass::Request, 0, 7);
        let mut delivered = None;
        for _ in 0..50 {
            net.tick();
            if let Some(d) = net.poll(t1) {
                delivered = Some(d);
                break;
            }
        }
        let d = delivered.expect("packet must be delivered");
        assert_eq!(d.packet.token, 7);
        assert_eq!(d.packet.src, t0);
        // Zero-load: inject(visible t=0) + hop (2+1) + eject (2+1) = 6.
        assert_eq!(d.latency(), 6);
        net.check_invariants();
    }

    #[test]
    fn multi_flit_packet_serializes() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        // 64B payload on 128-bit links = 5 flits.
        net.inject(t0, t1, MessageClass::Response, 64, 1);
        let mut latency = None;
        for _ in 0..60 {
            net.tick();
            if let Some(d) = net.poll(t1) {
                latency = Some(d.latency());
                break;
            }
        }
        // Head takes 6 cycles; 4 more flits drain at 1/cycle behind it.
        assert_eq!(latency, Some(10));
    }

    #[test]
    fn packets_same_class_do_not_interleave() {
        let (mut net, t0, t1) = two_router_net(1, 0);
        for i in 0..4 {
            net.inject(t0, t1, MessageClass::Response, 64, i);
        }
        let mut tokens = Vec::new();
        for _ in 0..200 {
            net.tick();
            while let Some(d) = net.poll(t1) {
                tokens.push(d.packet.token);
            }
        }
        assert_eq!(tokens, vec![0, 1, 2, 3], "wormhole must deliver in order");
        net.check_invariants();
    }

    #[test]
    fn classes_share_link_fairly() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        net.inject(t0, t1, MessageClass::Request, 0, 10);
        net.inject(t0, t1, MessageClass::Response, 0, 20);
        net.inject(t0, t1, MessageClass::Snoop, 0, 30);
        let mut got = Vec::new();
        for _ in 0..100 {
            net.tick();
            while let Some(d) = net.poll(t1) {
                got.push(d.packet.token);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn backpressure_does_not_lose_flits() {
        // Tiny buffers, long stream: credits must throttle without loss.
        let mut b = NetworkBuilder::new(128);
        let cfg = RouterConfig {
            pipeline_delay: 2,
            vc_depth: 2,
            arbiter: ArbiterKind::RoundRobin,
        };
        let r0 = b.add_router(cfg);
        let r1 = b.add_router(cfg);
        let r2 = b.add_router(cfg);
        b.add_bidi_link(r0, r1, 1, 2.0);
        b.add_bidi_link(r1, r2, 1, 2.0);
        let t0 = b.add_terminal(r0).terminal;
        let t2 = b.add_terminal(r2).terminal;
        b.compute_routes_bfs();
        let mut net = b.build();
        for i in 0..20 {
            net.inject(t0, t2, MessageClass::Response, 64, i);
        }
        let mut count = 0;
        for _ in 0..2000 {
            net.tick();
            while net.poll(t2).is_some() {
                count += 1;
            }
            net.check_invariants();
        }
        assert_eq!(count, 20);
        assert!(net.packets_in_flight() == 0);
    }

    #[test]
    fn contention_two_sources_one_sink() {
        let mut b = NetworkBuilder::new(128);
        let cfg = RouterConfig::mesh();
        let rs: Vec<_> = (0..3).map(|_| b.add_router(cfg)).collect();
        b.add_bidi_link(rs[0], rs[2], 1, 2.0);
        b.add_bidi_link(rs[1], rs[2], 1, 2.0);
        let ta = b.add_terminal(rs[0]).terminal;
        let tb = b.add_terminal(rs[1]).terminal;
        let tc = b.add_terminal(rs[2]).terminal;
        b.compute_routes_bfs();
        let mut net = b.build();
        for i in 0..10 {
            net.inject(ta, tc, MessageClass::Response, 64, 100 + i);
            net.inject(tb, tc, MessageClass::Response, 64, 200 + i);
        }
        let mut from_a = 0;
        let mut from_b = 0;
        for _ in 0..2000 {
            net.tick();
            while let Some(d) = net.poll(tc) {
                if d.packet.token >= 200 {
                    from_b += 1;
                } else {
                    from_a += 1;
                }
            }
        }
        assert_eq!(from_a, 10);
        assert_eq!(from_b, 10);
        // Throughput shared: the sink saw 20 * 5 = 100 flits over one
        // ejection port, so at least 100 cycles must have elapsed — always
        // true here; the real check is that round-robin served both.
        net.check_invariants();
    }

    #[test]
    fn stats_track_flit_activity() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        net.inject(t0, t1, MessageClass::Request, 0, 1);
        net.run_until_drained(100);
        let s = net.stats();
        assert_eq!(s.packets_injected.value(), 1);
        assert_eq!(s.packets_delivered.value(), 1);
        // 1 flit crosses two out-ports (r0->r1, r1->terminal).
        assert_eq!(s.flit_hops.value(), 2);
        assert_eq!(s.buffer_reads.value(), 2);
        assert!(s.flit_mm > 0.0);
    }

    #[test]
    fn run_until_drained_reports_failure_when_stuck() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        net.inject(t0, t1, MessageClass::Request, 0, 1);
        // 2 cycles is not enough to deliver.
        assert!(!net.run_until_drained(2));
        assert!(net.run_until_drained(100));
    }

    #[test]
    fn route_validation_walks_cleanly() {
        let (net, _t0, _t1) = two_router_net(1, 2);
        let hops = net.validate_routes();
        // Cross-router pairs take one inter-router hop; self pairs zero.
        assert_eq!(hops[0][0], 0);
        assert_eq!(hops[0][1], 1);
        assert_eq!(hops[1][0], 1);
    }

    #[test]
    fn router_view_exposes_topology() {
        let (net, _t0, t1) = two_router_net(1, 2);
        let r0 = net.router(RouterId(0));
        // One link from r1 plus the terminal injection port; one link to r1
        // plus the terminal ejection port.
        assert_eq!(r0.num_in_ports(), 2);
        assert_eq!(r0.num_out_ports(), 2);
        assert_eq!(r0.config().pipeline_delay, 2);
        assert_eq!(r0.buffered_flits(), 0);
        assert!(r0.route_to(t1).is_some());
        assert_eq!(r0.flits_sent_per_port(), vec![0, 0]);
    }

    #[test]
    fn fused_hop_events_round_trip() {
        // pipeline 1 + link 1 makes every hop delay equal its credit delay
        // (1 + link), so all traffic exercises the fused single-push event.
        let (mut net, t0, t1) = two_router_net(1, 1);
        net.inject(t0, t1, MessageClass::Request, 0, 9);
        let mut delivered = None;
        for _ in 0..50 {
            net.tick();
            if let Some(d) = net.poll(t1) {
                delivered = Some(d);
                break;
            }
        }
        // Zero-load: hop (1+1) + eject (1+1) = 4.
        assert_eq!(delivered.expect("delivered").latency(), 4);
        // Enough multi-flit packets to force credit round trips through the
        // fused events.
        for i in 0..12 {
            net.inject(t0, t1, MessageClass::Response, 64, i);
        }
        assert!(net.run_until_drained(2_000));
        let mut count = 0;
        while net.poll(t1).is_some() {
            count += 1;
        }
        assert_eq!(count, 12);
        net.check_invariants();
    }

    #[test]
    fn reference_tick_matches_fast_tick() {
        // Drive two identical contended networks in lockstep — one through
        // the masked/dirty-list switch, one through the reference full
        // scan — and compare every observable each cycle.
        let build = || {
            let mut b = NetworkBuilder::new(128);
            let cfg = RouterConfig::mesh();
            let rs: Vec<_> = (0..3).map(|_| b.add_router(cfg)).collect();
            b.add_bidi_link(rs[0], rs[2], 1, 2.0);
            b.add_bidi_link(rs[1], rs[2], 1, 2.0);
            let ta = b.add_terminal(rs[0]).terminal;
            let tb = b.add_terminal(rs[1]).terminal;
            let tc = b.add_terminal(rs[2]).terminal;
            b.compute_routes_bfs();
            (b.build(), [ta, tb, tc])
        };
        let (mut fast, terms) = build();
        let (mut reference, _) = build();
        for i in 0..6 {
            for &src in &terms[..2] {
                fast.inject(src, terms[2], MessageClass::Response, 64, i);
                reference.inject(src, terms[2], MessageClass::Response, 64, i);
            }
            fast.inject(terms[2], terms[0], MessageClass::Snoop, 0, i);
            reference.inject(terms[2], terms[0], MessageClass::Snoop, 0, i);
        }
        for _ in 0..400 {
            fast.tick();
            reference.tick_reference();
            assert_eq!(fast.packets_in_flight(), reference.packets_in_flight());
            for &t in &terms {
                loop {
                    let (a, b) = (fast.poll(t), reference.poll(t));
                    assert_eq!(a, b, "deliveries diverged at {}", fast.now());
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
        assert_eq!(fast.packets_in_flight(), 0);
        assert_eq!(fast.debug_rr_state(), reference.debug_rr_state());
        for r in 0..fast.num_routers() {
            let id = RouterId(r as u16);
            assert_eq!(
                fast.router(id).flits_sent_per_port(),
                reference.router(id).flits_sent_per_port()
            );
        }
    }

    #[test]
    fn response_class_unimpeded_by_request_congestion() {
        // Saturate the request VC with a long burst, then inject a single
        // response: with per-class VCs it must not wait for the backlog.
        let (mut net, t0, t1) = two_router_net(1, 2);
        for i in 0..50 {
            net.inject(t0, t1, MessageClass::Request, 64, i);
        }
        // Let the request backlog form.
        for _ in 0..10 {
            net.tick();
        }
        let start = net.now();
        net.inject(t0, t1, MessageClass::Response, 0, 999);
        let mut resp_latency = None;
        for _ in 0..2000 {
            net.tick();
            while let Some(d) = net.poll(t1) {
                if d.packet.token == 999 {
                    resp_latency = Some(d.delivered_at.saturating_since(start));
                }
            }
            if resp_latency.is_some() {
                break;
            }
        }
        let lat = resp_latency.expect("response delivered");
        // 50 five-flit requests need 250+ cycles of link time; the
        // response must cut far ahead of that on its own VC.
        assert!(lat < 40, "response waited {lat} cycles behind requests");
    }

    #[test]
    fn wormhole_keeps_packets_atomic_per_class() {
        // Two sources streaming multi-flit responses to one sink: flits of
        // different packets must never interleave at the ejection port
        // (checked internally by the reassembly debug assertion; here we
        // also verify both streams complete).
        let mut b = NetworkBuilder::new(64); // 9-flit responses
        let cfg = RouterConfig::mesh();
        let r0 = b.add_router(cfg);
        let r1 = b.add_router(cfg);
        let r2 = b.add_router(cfg);
        b.add_bidi_link(r0, r2, 1, 2.0);
        b.add_bidi_link(r1, r2, 1, 2.0);
        let ta = b.add_terminal(r0).terminal;
        let tb = b.add_terminal(r1).terminal;
        let tc = b.add_terminal(r2).terminal;
        b.compute_routes_bfs();
        let mut net = b.build();
        for i in 0..8 {
            net.inject(ta, tc, MessageClass::Response, 64, 100 + i);
            net.inject(tb, tc, MessageClass::Response, 64, 200 + i);
        }
        assert!(net.run_until_drained(5_000));
        let mut count = 0;
        while net.poll(tc).is_some() {
            count += 1;
        }
        assert_eq!(count, 16);
    }

    #[test]
    fn self_send_round_trips_through_router() {
        let (mut net, t0, _t1) = two_router_net(1, 2);
        net.inject(t0, t0, MessageClass::Request, 0, 5);
        assert!(net.run_until_drained(50));
        // poll own terminal
        let mut found = false;
        while let Some(d) = net.poll(t0) {
            assert_eq!(d.packet.token, 5);
            found = true;
        }
        assert!(found);
    }
}
