//! The network container: terminals, routers, links, and the per-cycle
//! engine.
//!
//! A [`Network`] is assembled by a [`NetworkBuilder`] (usually through one
//! of the [`crate::topology`] constructors), after which clients interact
//! with it only through terminals: [`Network::inject`] queues a packet at a
//! terminal's network interface and [`Network::poll`] retrieves delivered
//! packets. [`Network::tick`] advances the whole fabric by one cycle.
//!
//! ## Cycle semantics
//!
//! * Flits scheduled to arrive at cycle *t* become visible to arbitration at
//!   *t*.
//! * A flit granted an output at *t* arrives downstream at
//!   *t + pipeline_delay + link_delay*; per-hop zero-load latency is
//!   therefore 3 cycles for the mesh (2-stage router + 1-cycle link) and
//!   1 cycle for reduction/dispersion tree nodes, as in Table 1.
//! * Credits are consumed at grant time and returned `credit_delay` cycles
//!   after the flit departs the downstream buffer.

use crate::flit::Flit;
use crate::packet::{Delivery, Packet, PacketId, PacketSlab};
use crate::router::{
    Feeder, InPort, OutPort, OutTarget, Router, RouterConfig, UNROUTED,
};
use crate::stats::NetStats;
use crate::types::{MessageClass, PortIndex, RouterId, TerminalId, CLASS_COUNT};
use crate::wheel::EventWheel;
use nocout_sim::Cycle;
use std::collections::VecDeque;

/// Maximum supported hop delay (pipeline + link) in cycles. The event wheels
/// are sized to this; topology builders assert their delays fit, so the
/// wheels never take their growth path here.
pub const MAX_HOP_DELAY: u64 = 32;

#[derive(Debug, Clone, Copy)]
enum ArrivalDest {
    RouterPort { router: RouterId, port: PortIndex },
    Terminal(TerminalId),
}

#[derive(Debug, Clone, Copy)]
struct ArrivalEvent {
    dest: ArrivalDest,
    flit: Flit,
}

#[derive(Debug, Clone, Copy)]
enum CreditDest {
    RouterPort { router: RouterId, port: PortIndex },
    Terminal(TerminalId),
}

#[derive(Debug, Clone, Copy)]
struct CreditEvent {
    dest: CreditDest,
    class: MessageClass,
}

#[derive(Debug, Default)]
struct InjectLane {
    queue: VecDeque<PacketId>,
    /// Flits of the head packet already pushed into the router.
    sent_flits: u16,
}

#[derive(Debug)]
struct Terminal {
    /// Router and input port this terminal injects into.
    attach_router: RouterId,
    attach_port: PortIndex,
    /// Router holding this terminal's ejection port (differs from
    /// `attach_router` for split terminals such as NOC-Out cores).
    eject_router: RouterId,
    lanes: [InjectLane; CLASS_COUNT],
    /// Credits into the attached input port's VCs.
    inject_credits: [u8; CLASS_COUNT],
    /// Round-robin pointer over classes for the single NI link.
    rr_class: u8,
    /// Per-class reassembly: flits received of the in-flight packet.
    rx_progress: [u16; CLASS_COUNT],
    delivered: VecDeque<Delivery>,
    queued_packets: u64,
    /// Whether this terminal sits in the network's ready list.
    in_ready: bool,
}

/// Handle returned when attaching a terminal: the terminal id plus the
/// router ports created for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TerminalAttachment {
    /// The new terminal.
    pub terminal: TerminalId,
    /// Input port allocated on the router (injection side).
    pub in_port: PortIndex,
    /// Output port allocated on the router (ejection side).
    pub out_port: PortIndex,
}

/// Incrementally builds a [`Network`].
///
/// # Examples
///
/// Build a two-router network and send a packet across it:
///
/// ```
/// use nocout_noc::network::NetworkBuilder;
/// use nocout_noc::router::RouterConfig;
/// use nocout_noc::types::MessageClass;
///
/// let mut b = NetworkBuilder::new(128);
/// let r0 = b.add_router(RouterConfig::mesh());
/// let r1 = b.add_router(RouterConfig::mesh());
/// b.add_link(r0, r1, 1, 1.8);
/// b.add_link(r1, r0, 1, 1.8);
/// let t0 = b.add_terminal(r0).terminal;
/// let t1 = b.add_terminal(r1).terminal;
/// b.compute_routes_bfs();
/// let mut net = b.build();
///
/// net.inject(t0, t1, MessageClass::Request, 0, 42);
/// let d = loop {
///     net.tick();
///     if let Some(d) = net.poll(t1) {
///         break d;
///     }
///     assert!(net.now().raw() < 100, "packet must arrive quickly");
/// };
/// assert_eq!(d.packet.token, 42);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    routers: Vec<Router>,
    terminals: Vec<Terminal>,
    link_width_bits: u32,
    /// Ejection/injection link geometry.
    terminal_link_delay: u8,
    terminal_link_mm: f32,
}

impl NetworkBuilder {
    /// Starts a network whose links are `link_width_bits` wide (one flit per
    /// cycle per link; packets are serialized into
    /// `ceil(bits / link_width_bits)` flits).
    pub fn new(link_width_bits: u32) -> Self {
        assert!(link_width_bits > 0);
        NetworkBuilder {
            routers: Vec::new(),
            terminals: Vec::new(),
            link_width_bits,
            terminal_link_delay: 1,
            terminal_link_mm: 0.5,
        }
    }

    /// Overrides the delay/length of terminal attachment links.
    pub fn terminal_link(&mut self, delay: u8, length_mm: f32) -> &mut Self {
        self.terminal_link_delay = delay;
        self.terminal_link_mm = length_mm;
        self
    }

    /// Adds a router, returning its id.
    pub fn add_router(&mut self, cfg: RouterConfig) -> RouterId {
        self.routers.push(Router::new(cfg, 0));
        RouterId((self.routers.len() - 1) as u16)
    }

    /// Adds a unidirectional link from `from` to `to`, returning
    /// `(out_port at from, in_port at to)`. The downstream buffer depth
    /// (and thus the sender's credit count) is the downstream router's
    /// configured `vc_depth`.
    ///
    /// # Panics
    ///
    /// Panics if the hop delay (downstream pipeline + link) would exceed
    /// [`MAX_HOP_DELAY`].
    pub fn add_link(
        &mut self,
        from: RouterId,
        to: RouterId,
        link_delay: u8,
        length_mm: f32,
    ) -> (PortIndex, PortIndex) {
        let depth = self.routers[to.index()].cfg.vc_depth;
        self.add_link_with_depth(from, to, link_delay, length_mm, depth)
    }

    /// Like [`add_link`](Self::add_link) but with an explicit downstream
    /// buffer depth for this port, used by the flattened butterfly where VC
    /// depth is sized per link to cover its round-trip credit time
    /// (Table 1: "variable flits/VC").
    pub fn add_link_with_depth(
        &mut self,
        from: RouterId,
        to: RouterId,
        link_delay: u8,
        length_mm: f32,
        depth: u8,
    ) -> (PortIndex, PortIndex) {
        let from_cfg = self.routers[from.index()].cfg;
        assert!(
            (from_cfg.pipeline_delay as u64 + link_delay as u64) < MAX_HOP_DELAY,
            "hop delay exceeds event-wheel capacity"
        );
        let to_depth = depth;
        let in_port = {
            let rt = &mut self.routers[to.index()];
            rt.in_ports.push(InPort::new(
                to_depth,
                Feeder::Router {
                    router: from,
                    port: PortIndex::MAX, // patched below
                },
                1 + link_delay,
            ));
            (rt.in_ports.len() - 1) as PortIndex
        };
        let out_port = {
            let rf = &mut self.routers[from.index()];
            rf.out_ports.push(OutPort {
                target: OutTarget::Router {
                    router: to,
                    port: in_port,
                    link_delay,
                    length_mm,
                },
                credits: [to_depth; CLASS_COUNT],
                max_credits: [to_depth; CLASS_COUNT],
                owner: [None; CLASS_COUNT],
                rr_next: 0,
                flits_sent: 0,
            });
            (rf.out_ports.len() - 1) as PortIndex
        };
        // Patch the feeder back-reference now that the out port exists.
        if let Feeder::Router { port, .. } =
            &mut self.routers[to.index()].in_ports[in_port as usize].feeder
        {
            *port = out_port;
        }
        (out_port, in_port)
    }

    /// Adds two links forming a bidirectional channel; returns the
    /// `(out@a→b, in@b)` and `(out@b→a, in@a)` port pairs.
    pub fn add_bidi_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        link_delay: u8,
        length_mm: f32,
    ) -> ((PortIndex, PortIndex), (PortIndex, PortIndex)) {
        let ab = self.add_link(a, b, link_delay, length_mm);
        let ba = self.add_link(b, a, link_delay, length_mm);
        (ab, ba)
    }

    /// Attaches a terminal (core, LLC tile, or memory controller) to a
    /// router, allocating an injection input port and an ejection output
    /// port on it.
    pub fn add_terminal(&mut self, router: RouterId) -> TerminalAttachment {
        self.add_terminal_split(router, router)
    }

    /// Attaches a terminal whose injection and ejection sides live on
    /// *different* routers. NOC-Out cores use this: they inject into their
    /// reduction-tree node but receive from their dispersion-tree node.
    pub fn add_terminal_split(
        &mut self,
        inject_router: RouterId,
        eject_router: RouterId,
    ) -> TerminalAttachment {
        let router = inject_router;
        let terminal = TerminalId(self.terminals.len() as u16);
        let depth = self.routers[router.index()].cfg.vc_depth;
        let in_port = {
            let r = &mut self.routers[router.index()];
            r.in_ports.push(InPort::new(
                depth,
                Feeder::Terminal(terminal),
                1 + self.terminal_link_delay,
            ));
            (r.in_ports.len() - 1) as PortIndex
        };
        let out_port = {
            let r = &mut self.routers[eject_router.index()];
            r.out_ports.push(OutPort {
                target: OutTarget::Terminal {
                    terminal,
                    link_delay: self.terminal_link_delay,
                    length_mm: self.terminal_link_mm,
                },
                credits: [u8::MAX; CLASS_COUNT],
                max_credits: [u8::MAX; CLASS_COUNT],
                owner: [None; CLASS_COUNT],
                rr_next: 0,
                flits_sent: 0,
            });
            (r.out_ports.len() - 1) as PortIndex
        };
        self.terminals.push(Terminal {
            attach_router: router,
            attach_port: in_port,
            eject_router,
            lanes: Default::default(),
            inject_credits: [depth; CLASS_COUNT],
            rr_class: 0,
            rx_progress: [0; CLASS_COUNT],
            delivered: VecDeque::new(),
            queued_packets: 0,
            in_ready: false,
        });
        TerminalAttachment {
            terminal,
            in_port,
            out_port,
        }
    }

    /// Sets the routing-table entry at `router` for packets destined to
    /// `terminal`.
    pub fn set_route(&mut self, router: RouterId, terminal: TerminalId, out_port: PortIndex) {
        let r = &mut self.routers[router.index()];
        if r.route.len() <= terminal.index() {
            r.route.resize(terminal.index() + 1, UNROUTED);
        }
        r.route[terminal.index()] = out_port;
    }

    /// Computes shortest-path routing tables for every (router, terminal)
    /// pair by BFS over hop delays, breaking ties by lowest port index.
    ///
    /// Suitable for topologies with unique or symmetric shortest paths
    /// (trees, rings, the 1-D LLC butterfly). The 2-D mesh and flattened
    /// butterfly builders install explicit dimension-order tables instead,
    /// which BFS cannot guarantee.
    pub fn compute_routes_bfs(&mut self) {
        let nr = self.routers.len();
        // adjacency: for each router, (out_port, dest router, hop_delay)
        let mut adj: Vec<Vec<(PortIndex, usize, u64)>> = vec![Vec::new(); nr];
        let mut max_hop = 1u64;
        for (ri, r) in self.routers.iter().enumerate() {
            for (pi, o) in r.out_ports.iter().enumerate() {
                if let OutTarget::Router {
                    router, link_delay, ..
                } = o.target
                {
                    let hop = (r.cfg.pipeline_delay as u64 + link_delay as u64).max(1);
                    max_hop = max_hop.max(hop);
                    adj[ri].push((pi as PortIndex, router.index(), hop));
                }
            }
        }
        // Reversed adjacency, built once for all terminals (it was
        // formerly rebuilt inside the per-terminal loop).
        let mut radj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nr];
        for (ri, edges) in adj.iter().enumerate() {
            for &(_, to, w) in edges {
                radj[to].push((ri, w));
            }
        }
        // Dial's bucket queue in place of a BinaryHeap Dijkstra: hop
        // delays are small integers, so every finite distance is below
        // (nr - 1) * max_hop and scanning buckets in index order settles
        // nodes in the same nondecreasing-distance order the heap did,
        // producing identical `dist` and therefore identical routes.
        // Buckets drain completely per terminal, so the allocation is
        // reused across the whole loop.
        let bound = (nr as u64).saturating_sub(1) * max_hop + 1;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); bound as usize];
        let mut dist = vec![u64::MAX; nr];
        for t in 0..self.terminals.len() {
            let term = TerminalId(t as u16);
            // Shortest paths from the terminal's ejection router backwards
            // over reversed edges.
            let target_router = self.terminals[t].eject_router.index();
            dist.iter_mut().for_each(|d| *d = u64::MAX);
            dist[target_router] = 0;
            buckets[0].push(target_router);
            let mut remaining = 1usize;
            let mut d = 0u64;
            while remaining > 0 {
                while let Some(u) = buckets[d as usize].pop() {
                    remaining -= 1;
                    if d > dist[u] {
                        continue; // stale entry superseded by a shorter path
                    }
                    for &(v, w) in &radj[u] {
                        if d + w < dist[v] {
                            dist[v] = d + w;
                            buckets[(d + w) as usize].push(v);
                            remaining += 1;
                        }
                    }
                }
                d += 1;
            }
            // Choose, at each router, the lowest-index out port on a
            // shortest path.
            for ri in 0..nr {
                if ri == target_router {
                    // Route to the terminal's ejection port.
                    let eject = self.routers[ri]
                        .out_ports
                        .iter()
                        .position(|o| {
                            matches!(o.target, OutTarget::Terminal { terminal, .. } if terminal == term)
                        })
                        .expect("terminal must have an ejection port") as PortIndex;
                    self.set_route(RouterId(ri as u16), term, eject);
                    continue;
                }
                if dist[ri] == u64::MAX {
                    continue; // unreachable; leave UNROUTED
                }
                let mut best: Option<PortIndex> = None;
                for &(pi, to, w) in &adj[ri] {
                    if dist[to] != u64::MAX && dist[to] + w == dist[ri] && best.is_none() {
                        best = Some(pi);
                    }
                }
                if let Some(p) = best {
                    self.set_route(RouterId(ri as u16), term, p);
                }
            }
        }
    }

    /// Finalizes the network.
    ///
    /// # Panics
    ///
    /// Panics if any router's route table is shorter than the terminal
    /// count (routes may still be `UNROUTED` for genuinely unreachable
    /// pairs; using such a route at runtime panics with a diagnostic).
    pub fn build(mut self) -> Network {
        let nt = self.terminals.len();
        for r in &mut self.routers {
            if r.route.len() < nt {
                r.route.resize(nt, UNROUTED);
            }
        }
        Network {
            routers: self.routers,
            terminals: self.terminals,
            slab: PacketSlab::new(),
            arrivals: EventWheel::with_slots(MAX_HOP_DELAY as usize * 2),
            credits: EventWheel::with_slots(MAX_HOP_DELAY as usize * 2),
            stats: NetStats::new(),
            now: Cycle::ZERO,
            link_width_bits: self.link_width_bits,
            active_terms: Vec::new(),
            ready_terms: VecDeque::new(),
            buffered_flits: 0,
            arrival_scratch: Vec::new(),
            credit_scratch: Vec::new(),
            candidate_scratch: Vec::new(),
            per_out_scratch: Vec::new(),
        }
    }
}

/// A flit-level network-on-chip instance.
///
/// See the [module documentation](crate::network) for cycle semantics and
/// the [`NetworkBuilder`] example for usage.
#[derive(Debug)]
pub struct Network {
    routers: Vec<Router>,
    terminals: Vec<Terminal>,
    slab: PacketSlab,
    arrivals: EventWheel<ArrivalEvent>,
    credits: EventWheel<CreditEvent>,
    stats: NetStats,
    now: Cycle,
    link_width_bits: u32,
    /// Terminals with non-empty injection lanes (dirty list: only these
    /// are visited by `inject_flits`).
    active_terms: Vec<u16>,
    /// Terminals with undelivered packets, in arrival order (dirty list
    /// consumed by `take_ready_terminal`).
    ready_terms: VecDeque<u16>,
    /// Flits currently buffered in router input VCs (sum of per-router
    /// `buffered`), maintained for the drained-network fast path.
    buffered_flits: u64,
    /// Reusable per-cycle scratch buffers (hoisted out of the hot path so
    /// steady state allocates nothing).
    arrival_scratch: Vec<ArrivalEvent>,
    credit_scratch: Vec<CreditEvent>,
    /// `(desired out port, in port, class)` triples gathered per router.
    candidate_scratch: Vec<(PortIndex, PortIndex, MessageClass)>,
    /// Per-out-port candidate list handed to the arbiter.
    per_out_scratch: Vec<(PortIndex, MessageClass)>,
}

impl Network {
    /// Current network cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Link width in bits (flit size).
    pub fn link_width_bits(&self) -> u32 {
        self.link_width_bits
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    /// Number of routers (including tree nodes).
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Read-only access to a router (topology inspection, tests).
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets statistics at the warmup/measurement boundary.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Packets currently anywhere in the network (injection queues,
    /// buffers, links).
    pub fn packets_in_flight(&self) -> usize {
        self.slab.len()
    }

    /// Queues a packet for injection at terminal `src`. The payload is
    /// serialized into flits according to the network's link width.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn inject(
        &mut self,
        src: TerminalId,
        dst: TerminalId,
        class: MessageClass,
        payload_bytes: u32,
        token: u64,
    ) {
        assert!(dst.index() < self.terminals.len(), "dst out of range");
        let packet = Packet::new(
            src,
            dst,
            class,
            payload_bytes,
            self.link_width_bits,
            token,
            self.now,
        );
        let id = self.slab.insert(packet);
        let term = &mut self.terminals[src.index()];
        let was_idle = term.queued_packets == 0;
        term.lanes[class.vc()].queue.push_back(id);
        term.queued_packets += 1;
        if was_idle {
            self.active_terms.push(src.0);
        }
        self.stats.packets_injected.incr();
        let depth: u64 = term.lanes.iter().map(|l| l.queue.len() as u64).sum();
        if depth > self.stats.peak_inject_queue {
            self.stats.peak_inject_queue = depth;
        }
    }

    /// Takes the next delivered packet at `terminal`, if any.
    pub fn poll(&mut self, terminal: TerminalId) -> Option<Delivery> {
        self.terminals[terminal.index()].delivered.pop_front()
    }

    /// Pops a terminal that has undelivered packets, in arrival order.
    ///
    /// The caller is expected to drain the terminal with [`Network::poll`]
    /// before the next call; a terminal reappears in the ready list when a
    /// later packet arrives for it. This lets clients visit only busy
    /// terminals instead of scanning every terminal every cycle (on big
    /// chips most terminals are idle in most cycles).
    pub fn take_ready_terminal(&mut self) -> Option<TerminalId> {
        while let Some(t) = self.ready_terms.pop_front() {
            let term = &mut self.terminals[t as usize];
            term.in_ready = false;
            // Skip entries made stale by direct `poll` calls.
            if !term.delivered.is_empty() {
                return Some(TerminalId(t));
            }
        }
        None
    }

    /// Advances the network by one cycle.
    pub fn tick(&mut self) {
        self.deliver_credits();
        self.deliver_arrivals();
        self.inject_flits();
        self.switch_flits();
        self.now.0 += 1;
    }

    /// When the network next needs a normal tick: every cycle while flits
    /// are buffered in routers or terminals hold queued injections;
    /// otherwise the earliest event in the arrival/credit wheels (the same
    /// condition [`Network::run_until_drained`] fast-forwards on), or idle
    /// when the wheels are empty too.
    pub fn next_event(&self) -> crate::fabric::NextEvent {
        use crate::fabric::NextEvent;
        if self.buffered_flits > 0 || !self.active_terms.is_empty() {
            return NextEvent::EveryCycle;
        }
        let next = match (
            self.arrivals.next_occupied_delta(self.now),
            self.credits.next_occupied_delta(self.now),
        ) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => return NextEvent::Idle,
        };
        NextEvent::At(self.now + next)
    }

    /// Advances the clock by `delta` cycles with no per-cycle work.
    /// Callers must not skip *past* a scheduled wheel event (see
    /// [`Network::next_event`]) — that would both lose it and alias the
    /// wheel's modular slot indexing. Skipping exactly *to* the event
    /// cycle is fine: its tick runs after the skip and drains the slot.
    pub fn skip_idle(&mut self, delta: u64) {
        debug_assert_eq!(self.buffered_flits, 0);
        debug_assert!(self.active_terms.is_empty());
        debug_assert!(
            [
                self.arrivals.next_occupied_delta(self.now),
                self.credits.next_occupied_delta(self.now)
            ]
            .into_iter()
            .flatten()
            .all(|d| d >= delta),
            "cannot skip past a scheduled event"
        );
        self.now.0 += delta;
    }

    /// Runs until all in-flight packets are delivered or `max_cycles`
    /// elapse; returns `true` if the network drained.
    ///
    /// When nothing is buffered in any router and no terminal has queued
    /// injections, the only pending work lives in the event wheels; the
    /// clock then fast-forwards to the next scheduled event instead of
    /// burning full no-op ticks (the skipped cycles still count against
    /// `max_cycles`).
    pub fn run_until_drained(&mut self, max_cycles: u64) -> bool {
        use crate::fabric::NextEvent;
        let mut budget = max_cycles;
        while budget > 0 {
            if self.slab.is_empty() {
                return true;
            }
            match self.next_event() {
                NextEvent::EveryCycle => {}
                // Packets in flight but no buffered flits, queued
                // injections, or scheduled events: nothing can ever
                // progress.
                NextEvent::Idle => return false,
                NextEvent::At(at) => {
                    // Jump to the cycle of the event; its tick runs below
                    // and needs one cycle of budget of its own.
                    let skip = at.raw() - self.now.raw();
                    if skip >= budget {
                        self.now.0 += budget;
                        return self.slab.is_empty();
                    }
                    self.skip_idle(skip);
                    budget -= skip;
                }
            }
            self.tick();
            budget -= 1;
        }
        self.slab.is_empty()
    }

    fn deliver_credits(&mut self) {
        let mut scratch = std::mem::take(&mut self.credit_scratch);
        self.credits.drain_into(self.now, &mut scratch);
        for ev in scratch.drain(..) {
            match ev.dest {
                CreditDest::RouterPort { router, port } => {
                    let o = &mut self.routers[router.index()].out_ports[port as usize];
                    let c = &mut o.credits[ev.class.vc()];
                    debug_assert!(*c < o.max_credits[ev.class.vc()]);
                    *c += 1;
                }
                CreditDest::Terminal(t) => {
                    self.terminals[t.index()].inject_credits[ev.class.vc()] += 1;
                }
            }
        }
        self.credit_scratch = scratch;
    }

    fn deliver_arrivals(&mut self) {
        let mut scratch = std::mem::take(&mut self.arrival_scratch);
        self.arrivals.drain_into(self.now, &mut scratch);
        for ev in scratch.drain(..) {
            match ev.dest {
                ArrivalDest::RouterPort { router, port } => {
                    let r = &mut self.routers[router.index()];
                    let cv = ev.flit.class.vc();
                    r.in_ports[port as usize].vcs[cv].push_back(ev.flit);
                    r.in_ports[port as usize].occ |= 1 << cv;
                    r.port_occ |= 1u64 << port;
                    r.buffered += 1;
                    self.buffered_flits += 1;
                    self.stats.buffer_writes.incr();
                }
                ArrivalDest::Terminal(t) => {
                    let flit = ev.flit;
                    let term = &mut self.terminals[t.index()];
                    let prog = &mut term.rx_progress[flit.class.vc()];
                    debug_assert_eq!(
                        *prog, flit.seq,
                        "per-class wormhole delivery must be in order"
                    );
                    *prog += 1;
                    if flit.is_tail() {
                        *prog = 0;
                        let packet = self.slab.remove(flit.packet);
                        let latency = self.now.saturating_since(packet.injected_at);
                        self.stats
                            .record_delivery(packet.class, latency, packet.size_flits);
                        term.delivered.push_back(Delivery {
                            packet,
                            delivered_at: self.now,
                        });
                        if !term.in_ready {
                            term.in_ready = true;
                            self.ready_terms.push_back(t.0);
                        }
                    }
                }
            }
        }
    }

    fn inject_flits(&mut self) {
        // Dirty list: visit only terminals with queued packets. A terminal
        // leaves the list the cycle its last queued packet finishes
        // serializing (order within the list is irrelevant — each terminal
        // feeds its own private router input port).
        let mut i = 0;
        while i < self.active_terms.len() {
            let ti = self.active_terms[i] as usize;
            let term = &mut self.terminals[ti];
            debug_assert!(term.queued_packets > 0, "stale active-terminal entry");
            // One flit per cycle over the NI link; round-robin over classes
            // with queued traffic and available credits.
            for k in 0..CLASS_COUNT {
                let c = (term.rr_class as usize + k) % CLASS_COUNT;
                let lane_has_work = !term.lanes[c].queue.is_empty();
                if !lane_has_work || term.inject_credits[c] == 0 {
                    continue;
                }
                let pid = term.lanes[c].queue[0];
                let packet = self.slab.get(pid);
                let flit = Flit {
                    packet: pid,
                    seq: term.lanes[c].sent_flits,
                    size: packet.size_flits,
                    dst: packet.dst,
                    class: packet.class,
                };
                let router = term.attach_router;
                let port = term.attach_port;
                term.inject_credits[c] -= 1;
                term.lanes[c].sent_flits += 1;
                if term.lanes[c].sent_flits == packet.size_flits {
                    term.lanes[c].queue.pop_front();
                    term.lanes[c].sent_flits = 0;
                    term.queued_packets -= 1;
                }
                term.rr_class = ((c + 1) % CLASS_COUNT) as u8;
                // The NI link is modelled as immediate visibility this
                // cycle; the first hop's arbitration applies the usual
                // router + link delay.
                let r = &mut self.routers[router.index()];
                let cv = flit.class.vc();
                r.in_ports[port as usize].vcs[cv].push_back(flit);
                r.in_ports[port as usize].occ |= 1 << cv;
                r.port_occ |= 1u64 << port;
                r.buffered += 1;
                self.buffered_flits += 1;
                self.stats.buffer_writes.incr();
                break;
            }
            if self.terminals[ti].queued_packets == 0 {
                self.active_terms.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn switch_flits(&mut self) {
        let now = self.now;
        // Reusable scratch buffers (per-cycle allocation here used to
        // dominate the tick's allocator traffic).
        let mut candidates = std::mem::take(&mut self.candidate_scratch);
        let mut per_out = std::mem::take(&mut self.per_out_scratch);
        for ri in 0..self.routers.len() {
            if self.routers[ri].buffered == 0 {
                continue;
            }
            // One pass over the input VCs: each queue-front flit that
            // satisfies routing, wormhole ownership and credits becomes a
            // `(desired out, in port, class)` candidate. (A VC therefore
            // offers at most one flit per cycle — one crossbar input per
            // input VC — where the per-out-port rescan this replaced could
            // let a VC follow a tail flit with a fresh head in the same
            // cycle through a higher-numbered out port.)
            candidates.clear();
            {
                let r = &self.routers[ri];
                // Walk only occupied (port, VC) pairs via the occupancy
                // bitmasks. Ascending-bit order over ports, then over VC
                // indices within a port, reproduces the plain nested scan
                // exactly (`MessageClass::ALL` is ascending-VC order), so
                // the candidate list — and therefore arbitration — is
                // bit-identical to probing every queue front.
                let mut pm = r.port_occ;
                while pm != 0 {
                    let ipi = pm.trailing_zeros() as usize;
                    pm &= pm - 1;
                    let ip = &r.in_ports[ipi];
                    let mut cm = ip.occ;
                    while cm != 0 {
                        let cv = cm.trailing_zeros() as usize;
                        cm &= cm - 1;
                        let class = MessageClass::from_vc(cv);
                        let vc = &ip.vcs[cv];
                        let flit = *vc.front().expect("occupancy bit set on empty VC");
                        let desired = match vc.current_out {
                            Some(p) => p,
                            None => {
                                debug_assert!(flit.is_head());
                                let p = r.route[flit.dst.index()];
                                assert!(
                                    p != UNROUTED,
                                    "router {ri} has no route to {}",
                                    flit.dst
                                );
                                p
                            }
                        };
                        let o = &r.out_ports[desired as usize];
                        // Ownership: heads need a free downstream VC,
                        // bodies must own it.
                        match o.owner[cv] {
                            None if !flit.is_head() => continue,
                            Some(owner) if owner != ipi as PortIndex => continue,
                            _ => {}
                        }
                        let is_terminal_target =
                            matches!(o.target, OutTarget::Terminal { .. });
                        if !is_terminal_target && o.credits[cv] == 0 {
                            continue;
                        }
                        candidates.push((desired, ipi as PortIndex, class));
                    }
                }
            }
            // Grant one flit per out port among its gathered candidates.
            // Lone candidate — the common case on a lightly contended
            // router — skips the per-out-port grouping machinery; the
            // arbiter still runs so round-robin state advances exactly as
            // the general path would.
            if let [(out, p, c)] = candidates[..] {
                let (win_port, win_class) = self.routers[ri].arbitrate(out, &[(p, c)]);
                self.send_flit(ri, out, win_port, win_class, now);
                continue;
            }
            while let Some(&(out, _, _)) = candidates.first() {
                per_out.clear();
                candidates.retain(|&(o, p, c)| {
                    if o == out {
                        per_out.push((p, c));
                        false
                    } else {
                        true
                    }
                });
                let (win_port, win_class) = self.routers[ri].arbitrate(out, &per_out);
                self.send_flit(ri, out, win_port, win_class, now);
            }
        }
        self.candidate_scratch = candidates;
        self.per_out_scratch = per_out;
    }

    fn send_flit(
        &mut self,
        router: usize,
        out: PortIndex,
        in_port: PortIndex,
        class: MessageClass,
        now: Cycle,
    ) {
        let cv = class.vc();
        let (flit, feeder, credit_delay, target, pipeline_delay);
        {
            let r = &mut self.routers[router];
            let ip = &mut r.in_ports[in_port as usize];
            let vc = &mut ip.vcs[cv];
            let f = vc.pop_front().expect("winner queue non-empty");
            r.buffered -= 1;
            flit = f;
            feeder = ip.feeder;
            credit_delay = ip.credit_delay;
            if f.is_head() {
                vc.current_out = Some(out);
            }
            if f.is_tail() {
                vc.current_out = None;
            }
            if vc.len() == 0 {
                ip.occ &= !(1 << cv);
                if ip.occ == 0 {
                    r.port_occ &= !(1u64 << in_port);
                }
            }
            let o = &mut r.out_ports[out as usize];
            if f.is_head() {
                o.owner[cv] = Some(in_port);
            }
            if f.is_tail() {
                o.owner[cv] = None;
            }
            if let OutTarget::Router { .. } = o.target {
                debug_assert!(o.credits[cv] > 0);
                o.credits[cv] -= 1;
            }
            o.flits_sent += 1;
            target = o.target;
            pipeline_delay = r.cfg.pipeline_delay;
        }
        self.buffered_flits -= 1;
        self.stats.buffer_reads.incr();
        self.stats.xbar_traversals.incr();
        self.stats.flit_hops.incr();
        self.stats.flit_mm += target.length_mm() as f64;
        // Schedule the arrival downstream.
        let hop = (pipeline_delay + target.link_delay()).max(1) as u64;
        let dest = match target {
            OutTarget::Router { router, port, .. } => ArrivalDest::RouterPort { router, port },
            OutTarget::Terminal { terminal, .. } => ArrivalDest::Terminal(terminal),
        };
        self.arrivals
            .push(now, now + hop, ArrivalEvent { dest, flit });
        // Return the credit upstream once this buffer slot is free.
        let cdest = match feeder {
            Feeder::Router { router, port } => CreditDest::RouterPort { router, port },
            Feeder::Terminal(t) => CreditDest::Terminal(t),
        };
        self.credits.push(
            now,
            now + credit_delay.max(1) as u64,
            CreditEvent { dest: cdest, class },
        );
    }

    /// Walks the routing tables and verifies that every terminal can reach
    /// every other terminal without loops, returning the hop count matrix
    /// indexed `[src][dst]`.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if any route is missing, leads through a
    /// dangling port, or loops.
    pub fn validate_routes(&self) -> Vec<Vec<u32>> {
        let nt = self.terminals.len();
        let mut hops = vec![vec![0u32; nt]; nt];
        for (s, term) in self.terminals.iter().enumerate() {
            for (d, row) in hops[s].iter_mut().enumerate() {
                let dst = TerminalId(d as u16);
                let mut router = term.attach_router;
                let mut count = 0u32;
                loop {
                    assert!(
                        count as usize <= self.routers.len(),
                        "routing loop from t{s} to t{d}"
                    );
                    let r = &self.routers[router.index()];
                    let port = r.route[dst.index()];
                    assert!(
                        port != UNROUTED,
                        "router {} has no route from t{s} to t{d}",
                        router
                    );
                    match r.out_ports[port as usize].target {
                        OutTarget::Terminal { terminal, .. } => {
                            assert_eq!(terminal, dst, "route from t{s} ejects at wrong terminal");
                            break;
                        }
                        OutTarget::Router { router: next, .. } => {
                            router = next;
                            count += 1;
                        }
                    }
                }
                *row = count;
            }
        }
        hops
    }

    /// Validates internal invariants (used by tests): credit counters never
    /// exceed their maxima and buffered-flit counters match queue contents.
    pub fn check_invariants(&self) {
        let mut grand_total = 0u64;
        for (ri, r) in self.routers.iter().enumerate() {
            let total: u32 = r
                .in_ports
                .iter()
                .flat_map(|ip| ip.vcs.iter())
                .map(|vc| vc.len() as u32)
                .sum();
            assert_eq!(total, r.buffered, "router {ri} buffered count drifted");
            let mut expect_port_occ = 0u64;
            for (ipi, ip) in r.in_ports.iter().enumerate() {
                let mut expect_occ = 0u8;
                for (cv, vc) in ip.vcs.iter().enumerate() {
                    if vc.len() > 0 {
                        expect_occ |= 1 << cv;
                    }
                }
                assert_eq!(ip.occ, expect_occ, "router {ri} port {ipi} VC occupancy drifted");
                if expect_occ != 0 {
                    expect_port_occ |= 1u64 << ipi;
                }
            }
            assert_eq!(r.port_occ, expect_port_occ, "router {ri} port occupancy drifted");
            grand_total += u64::from(r.buffered);
            for o in &r.out_ports {
                for c in 0..CLASS_COUNT {
                    assert!(o.credits[c] <= o.max_credits[c], "router {ri} credit overflow");
                }
            }
        }
        assert_eq!(
            grand_total, self.buffered_flits,
            "network buffered-flit counter drifted"
        );
        for (ti, term) in self.terminals.iter().enumerate() {
            let queued: u64 = term.lanes.iter().map(|l| l.queue.len() as u64).sum();
            assert_eq!(queued, term.queued_packets, "terminal {ti} queue count drifted");
            assert_eq!(
                queued > 0,
                self.active_terms.contains(&(ti as u16)),
                "terminal {ti} active-list membership drifted"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ArbiterKind;

    fn two_router_net(link_delay: u8, pipeline: u8) -> (Network, TerminalId, TerminalId) {
        let mut b = NetworkBuilder::new(128);
        let cfg = RouterConfig {
            pipeline_delay: pipeline,
            vc_depth: 5,
            arbiter: ArbiterKind::RoundRobin,
        };
        let r0 = b.add_router(cfg);
        let r1 = b.add_router(cfg);
        b.add_bidi_link(r0, r1, link_delay, 2.0);
        let t0 = b.add_terminal(r0).terminal;
        let t1 = b.add_terminal(r1).terminal;
        b.compute_routes_bfs();
        (b.build(), t0, t1)
    }

    #[test]
    fn single_packet_crosses_one_hop() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        net.inject(t0, t1, MessageClass::Request, 0, 7);
        let mut delivered = None;
        for _ in 0..50 {
            net.tick();
            if let Some(d) = net.poll(t1) {
                delivered = Some(d);
                break;
            }
        }
        let d = delivered.expect("packet must be delivered");
        assert_eq!(d.packet.token, 7);
        assert_eq!(d.packet.src, t0);
        // Zero-load: inject(visible t=0) + hop (2+1) + eject (2+1) = 6.
        assert_eq!(d.latency(), 6);
        net.check_invariants();
    }

    #[test]
    fn multi_flit_packet_serializes() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        // 64B payload on 128-bit links = 5 flits.
        net.inject(t0, t1, MessageClass::Response, 64, 1);
        let mut latency = None;
        for _ in 0..60 {
            net.tick();
            if let Some(d) = net.poll(t1) {
                latency = Some(d.latency());
                break;
            }
        }
        // Head takes 6 cycles; 4 more flits drain at 1/cycle behind it.
        assert_eq!(latency, Some(10));
    }

    #[test]
    fn packets_same_class_do_not_interleave() {
        let (mut net, t0, t1) = two_router_net(1, 0);
        for i in 0..4 {
            net.inject(t0, t1, MessageClass::Response, 64, i);
        }
        let mut tokens = Vec::new();
        for _ in 0..200 {
            net.tick();
            while let Some(d) = net.poll(t1) {
                tokens.push(d.packet.token);
            }
        }
        assert_eq!(tokens, vec![0, 1, 2, 3], "wormhole must deliver in order");
        net.check_invariants();
    }

    #[test]
    fn classes_share_link_fairly() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        net.inject(t0, t1, MessageClass::Request, 0, 10);
        net.inject(t0, t1, MessageClass::Response, 0, 20);
        net.inject(t0, t1, MessageClass::Snoop, 0, 30);
        let mut got = Vec::new();
        for _ in 0..100 {
            net.tick();
            while let Some(d) = net.poll(t1) {
                got.push(d.packet.token);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn backpressure_does_not_lose_flits() {
        // Tiny buffers, long stream: credits must throttle without loss.
        let mut b = NetworkBuilder::new(128);
        let cfg = RouterConfig {
            pipeline_delay: 2,
            vc_depth: 2,
            arbiter: ArbiterKind::RoundRobin,
        };
        let r0 = b.add_router(cfg);
        let r1 = b.add_router(cfg);
        let r2 = b.add_router(cfg);
        b.add_bidi_link(r0, r1, 1, 2.0);
        b.add_bidi_link(r1, r2, 1, 2.0);
        let t0 = b.add_terminal(r0).terminal;
        let t2 = b.add_terminal(r2).terminal;
        b.compute_routes_bfs();
        let mut net = b.build();
        for i in 0..20 {
            net.inject(t0, t2, MessageClass::Response, 64, i);
        }
        let mut count = 0;
        for _ in 0..2000 {
            net.tick();
            while net.poll(t2).is_some() {
                count += 1;
            }
            net.check_invariants();
        }
        assert_eq!(count, 20);
        assert!(net.packets_in_flight() == 0);
    }

    #[test]
    fn contention_two_sources_one_sink() {
        let mut b = NetworkBuilder::new(128);
        let cfg = RouterConfig::mesh();
        let rs: Vec<_> = (0..3).map(|_| b.add_router(cfg)).collect();
        b.add_bidi_link(rs[0], rs[2], 1, 2.0);
        b.add_bidi_link(rs[1], rs[2], 1, 2.0);
        let ta = b.add_terminal(rs[0]).terminal;
        let tb = b.add_terminal(rs[1]).terminal;
        let tc = b.add_terminal(rs[2]).terminal;
        b.compute_routes_bfs();
        let mut net = b.build();
        for i in 0..10 {
            net.inject(ta, tc, MessageClass::Response, 64, 100 + i);
            net.inject(tb, tc, MessageClass::Response, 64, 200 + i);
        }
        let mut from_a = 0;
        let mut from_b = 0;
        for _ in 0..2000 {
            net.tick();
            while let Some(d) = net.poll(tc) {
                if d.packet.token >= 200 {
                    from_b += 1;
                } else {
                    from_a += 1;
                }
            }
        }
        assert_eq!(from_a, 10);
        assert_eq!(from_b, 10);
        // Throughput shared: the sink saw 20 * 5 = 100 flits over one
        // ejection port, so at least 100 cycles must have elapsed — always
        // true here; the real check is that round-robin served both.
        net.check_invariants();
    }

    #[test]
    fn stats_track_flit_activity() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        net.inject(t0, t1, MessageClass::Request, 0, 1);
        net.run_until_drained(100);
        let s = net.stats();
        assert_eq!(s.packets_injected.value(), 1);
        assert_eq!(s.packets_delivered.value(), 1);
        // 1 flit crosses two out-ports (r0->r1, r1->terminal).
        assert_eq!(s.flit_hops.value(), 2);
        assert_eq!(s.buffer_reads.value(), 2);
        assert!(s.flit_mm > 0.0);
    }

    #[test]
    fn run_until_drained_reports_failure_when_stuck() {
        let (mut net, t0, t1) = two_router_net(1, 2);
        net.inject(t0, t1, MessageClass::Request, 0, 1);
        // 2 cycles is not enough to deliver.
        assert!(!net.run_until_drained(2));
        assert!(net.run_until_drained(100));
    }

    #[test]
    fn route_validation_walks_cleanly() {
        let (net, _t0, _t1) = two_router_net(1, 2);
        let hops = net.validate_routes();
        // Cross-router pairs take one inter-router hop; self pairs zero.
        assert_eq!(hops[0][0], 0);
        assert_eq!(hops[0][1], 1);
        assert_eq!(hops[1][0], 1);
    }

    #[test]
    fn response_class_unimpeded_by_request_congestion() {
        // Saturate the request VC with a long burst, then inject a single
        // response: with per-class VCs it must not wait for the backlog.
        let (mut net, t0, t1) = two_router_net(1, 2);
        for i in 0..50 {
            net.inject(t0, t1, MessageClass::Request, 64, i);
        }
        // Let the request backlog form.
        for _ in 0..10 {
            net.tick();
        }
        let start = net.now();
        net.inject(t0, t1, MessageClass::Response, 0, 999);
        let mut resp_latency = None;
        for _ in 0..2000 {
            net.tick();
            while let Some(d) = net.poll(t1) {
                if d.packet.token == 999 {
                    resp_latency = Some(d.delivered_at.saturating_since(start));
                }
            }
            if resp_latency.is_some() {
                break;
            }
        }
        let lat = resp_latency.expect("response delivered");
        // 50 five-flit requests need 250+ cycles of link time; the
        // response must cut far ahead of that on its own VC.
        assert!(lat < 40, "response waited {lat} cycles behind requests");
    }

    #[test]
    fn wormhole_keeps_packets_atomic_per_class() {
        // Two sources streaming multi-flit responses to one sink: flits of
        // different packets must never interleave at the ejection port
        // (checked internally by the reassembly debug assertion; here we
        // also verify both streams complete).
        let mut b = NetworkBuilder::new(64); // 9-flit responses
        let cfg = RouterConfig::mesh();
        let r0 = b.add_router(cfg);
        let r1 = b.add_router(cfg);
        let r2 = b.add_router(cfg);
        b.add_bidi_link(r0, r2, 1, 2.0);
        b.add_bidi_link(r1, r2, 1, 2.0);
        let ta = b.add_terminal(r0).terminal;
        let tb = b.add_terminal(r1).terminal;
        let tc = b.add_terminal(r2).terminal;
        b.compute_routes_bfs();
        let mut net = b.build();
        for i in 0..8 {
            net.inject(ta, tc, MessageClass::Response, 64, 100 + i);
            net.inject(tb, tc, MessageClass::Response, 64, 200 + i);
        }
        assert!(net.run_until_drained(5_000));
        let mut count = 0;
        while net.poll(tc).is_some() {
            count += 1;
        }
        assert_eq!(count, 16);
    }

    #[test]
    fn self_send_round_trips_through_router() {
        let (mut net, t0, _t1) = two_router_net(1, 2);
        net.inject(t0, t0, MessageClass::Request, 0, 5);
        assert!(net.run_until_drained(50));
        // poll own terminal
        let mut found = false;
        while let Some(d) = net.poll(t0) {
            assert_eq!(d.packet.token, 5);
            found = true;
        }
        assert!(found);
    }
}
