//! Network-level activity statistics.
//!
//! Everything the experiment harness and the energy model need: packet
//! latencies per class, flit activity (buffer reads/writes, crossbar
//! traversals, link millimetres) and queue pressure.

use crate::types::{MessageClass, CLASS_COUNT};
use nocout_sim::stats::{Counter, LatencyHist, Log2Histogram, RunningStats};

/// Aggregated statistics for one network over the measurement window.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Packets accepted into injection queues.
    pub packets_injected: Counter,
    /// Packets fully delivered (tail ejected).
    pub packets_delivered: Counter,
    /// Flits delivered to terminals.
    pub flits_delivered: Counter,
    /// End-to-end packet latency (injection-queue entry to tail ejection).
    pub latency: RunningStats,
    /// Latency distribution.
    pub latency_hist: Log2Histogram,
    /// Latency split per message class.
    pub per_class_latency: [RunningStats; CLASS_COUNT],
    /// Fine-grained latency distribution per message class (log-linear
    /// buckets, tight enough for p99/p999 — the coarse `latency_hist`
    /// stays for order-of-magnitude tail shape).
    pub tail_hists: [LatencyHist; CLASS_COUNT],
    /// Total flit link traversals (router-to-router and ejection links).
    pub flit_hops: Counter,
    /// Total link distance travelled by flits, in flit·mm (drives link
    /// energy).
    pub flit_mm: f64,
    /// Flit buffer writes (arrival into any input VC).
    pub buffer_writes: Counter,
    /// Flit buffer reads (departure from any input VC).
    pub buffer_reads: Counter,
    /// Crossbar/mux traversals (any flit leaving through an output port).
    pub xbar_traversals: Counter,
    /// Maximum injection-queue depth observed at any terminal.
    pub peak_inject_queue: u64,
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Records a completed delivery.
    pub(crate) fn record_delivery(&mut self, class: MessageClass, latency: u64, flits: u16) {
        self.packets_delivered.incr();
        self.flits_delivered.add(flits as u64);
        self.latency.record(latency as f64);
        self.latency_hist.record(latency);
        self.per_class_latency[class.vc()].record(latency as f64);
        self.tail_hists[class.vc()].record(latency);
    }

    /// The latency distribution for one message class.
    pub fn class_tail(&self, class: MessageClass) -> &LatencyHist {
        &self.tail_hists[class.vc()]
    }

    /// Mean end-to-end packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Mean latency for one message class.
    pub fn mean_class_latency(&self, class: MessageClass) -> f64 {
        self.per_class_latency[class.vc()].mean()
    }

    /// Resets all statistics (used at the warmup/measurement boundary).
    pub fn reset(&mut self) {
        *self = NetStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_recording() {
        let mut s = NetStats::new();
        s.record_delivery(MessageClass::Request, 10, 1);
        s.record_delivery(MessageClass::Response, 30, 5);
        assert_eq!(s.packets_delivered.value(), 2);
        assert_eq!(s.flits_delivered.value(), 6);
        assert!((s.mean_latency() - 20.0).abs() < 1e-12);
        assert!((s.mean_class_latency(MessageClass::Response) - 30.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.packets_delivered.value(), 0);
    }
}
