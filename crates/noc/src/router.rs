//! Table-routed, input-buffered, credit-flow-controlled routers.
//!
//! One `Router` type models every switching element in the study:
//!
//! * a **mesh router** is 5×5 with a 2-stage speculative pipeline
//!   (`pipeline_delay = 2`) and round-robin arbitration,
//! * a **flattened-butterfly router** is 15×15 with a 3-stage pipeline,
//! * a **reduction-tree node** is 2×1 with a zero-stage pipeline (the
//!   arbitrated mux and the outgoing link together take one cycle) and
//!   static-priority arbitration that favours the network port over the
//!   local port, exactly as §4.1 of the paper,
//! * a **dispersion-tree node** is 1×2 with a zero-stage pipeline (§4.2).
//!
//! Wormhole switching with one virtual channel per message class: a packet
//! holds its downstream VC from head to tail, bodies follow the head's
//! route, and credits are returned when flits depart the downstream buffer.

use crate::flit::Flit;
use crate::types::{MessageClass, PortIndex, RouterId, TerminalId, CLASS_COUNT};
use serde::{Deserialize, Serialize};

/// Output arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbiterKind {
    /// Rotating fair arbitration over (input port, VC) pairs — the policy of
    /// the mesh and flattened-butterfly routers.
    RoundRobin,
    /// Fixed priority: higher message class first (responses > snoops >
    /// requests), then lower input-port index first. Topology builders place
    /// the network port at index 0 and the local port at index 1 on tree
    /// nodes, which yields the paper's ordering: network responses, local
    /// responses, network requests, local requests (§4.1).
    StaticPriority,
}

/// Per-router microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Cycles spent in the router pipeline before the flit enters the link.
    /// Per-hop zero-load latency is `pipeline_delay + link delay`.
    pub pipeline_delay: u8,
    /// Buffer depth, in flits, of each virtual channel at each input port.
    pub vc_depth: u8,
    /// Output arbitration policy.
    pub arbiter: ArbiterKind,
}

impl RouterConfig {
    /// Mesh router per Table 1: 2-stage speculative pipeline, 5-flit VCs.
    pub fn mesh() -> Self {
        RouterConfig {
            pipeline_delay: 2,
            vc_depth: 5,
            arbiter: ArbiterKind::RoundRobin,
        }
    }

    /// Flattened-butterfly router per Table 1: 3-stage non-speculative
    /// pipeline; VC depth is set per-port by the builder to cover the
    /// round-trip credit time of its longest link.
    pub fn fbfly(vc_depth: u8) -> Self {
        RouterConfig {
            pipeline_delay: 3,
            vc_depth,
            arbiter: ArbiterKind::RoundRobin,
        }
    }

    /// Reduction/dispersion tree node: buffered two-port mux/demux with a
    /// single-cycle per-hop delay (mux + link) and a couple of flits of
    /// buffering per VC (§4.4: "a few flits per VC").
    pub fn tree_node() -> Self {
        RouterConfig {
            pipeline_delay: 0,
            vc_depth: 3,
            arbiter: ArbiterKind::StaticPriority,
        }
    }
}

/// Where credits for a departed flit are returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feeder {
    /// Input port is fed by another router's output port.
    Router { router: RouterId, port: PortIndex },
    /// Input port is fed by a terminal's network interface.
    Terminal(TerminalId),
}

/// What an output port drives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutTarget {
    /// A link to another router's input port.
    Router {
        /// Downstream router.
        router: RouterId,
        /// Input port at the downstream router.
        port: PortIndex,
        /// Link traversal delay in cycles.
        link_delay: u8,
        /// Physical link length in millimetres (for the energy model).
        length_mm: f32,
    },
    /// Ejection to a terminal (the terminal side is an uncongested sink;
    /// throughput is still limited to one flit per cycle by arbitration).
    Terminal {
        /// The terminal served by this port.
        terminal: TerminalId,
        /// Ejection-link delay in cycles.
        link_delay: u8,
        /// Physical link length in millimetres.
        length_mm: f32,
    },
}

impl OutTarget {
    /// The link delay of this output.
    pub fn link_delay(&self) -> u8 {
        match *self {
            OutTarget::Router { link_delay, .. } => link_delay,
            OutTarget::Terminal { link_delay, .. } => link_delay,
        }
    }

    /// Link length in millimetres.
    pub fn length_mm(&self) -> f32 {
        match *self {
            OutTarget::Router { length_mm, .. } => length_mm,
            OutTarget::Terminal { length_mm, .. } => length_mm,
        }
    }
}

/// Upper bound on the configurable VC buffer depth. The deepest ring
/// any in-tree topology builds is 13 flits — the flattened butterfly
/// sizes depth per link as `credit_round_trip_depth` (pipeline 3 +
/// 2×link 4 + 2) on its longest 7-tile-span links. The cap exists so
/// the ring can keep its storage inline (below) rather than behind a
/// heap pointer; it is kept as tight as that bound allows because every
/// input port carries `CLASS_COUNT` rings, so slack here is multiplied
/// across every port of every router.
pub(crate) const MAX_VC_DEPTH: usize = 16;

/// One virtual-channel FIFO at an input port: a fixed ring sized to the
/// port's buffer depth.
///
/// Credit-based flow control bounds occupancy — a sender only transmits
/// while it holds a credit, and credits mirror the downstream slots — so
/// the ring never grows and a push past `cap` is a protocol violation,
/// not a capacity policy.
///
/// Storage is an inline array, not a `Vec`: the switch allocator probes
/// queue fronts on every cycle, and keeping the flits on the same cache
/// lines as the ring indices saves a dereference per probe.
#[derive(Debug)]
pub(crate) struct VcQueue {
    buf: [Flit; MAX_VC_DEPTH],
    cap: u16,
    head: u16,
    len: u16,
    /// Output port locked by the packet currently flowing through this VC
    /// (set when its head departs, cleared when its tail departs).
    pub(crate) current_out: Option<PortIndex>,
}

/// Filler for unoccupied ring slots (never observable: reads are bounded
/// by `len`).
const NO_FLIT: Flit = Flit {
    packet: crate::packet::PacketId(0),
    seq: 0,
    size: 0,
    dst: TerminalId(0),
    class: MessageClass::Request,
};

impl VcQueue {
    pub(crate) fn new(depth: u8) -> Self {
        assert!(depth > 0, "VC depth must be at least one flit");
        assert!(
            depth as usize <= MAX_VC_DEPTH,
            "VC depth {depth} exceeds the inline ring bound {MAX_VC_DEPTH}"
        );
        VcQueue {
            buf: [NO_FLIT; MAX_VC_DEPTH],
            cap: depth as u16,
            head: 0,
            len: 0,
            current_out: None,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub(crate) fn front(&self) -> Option<&Flit> {
        (self.len > 0).then(|| &self.buf[self.head as usize])
    }

    #[inline]
    pub(crate) fn push_back(&mut self, flit: Flit) {
        assert!(
            self.len < self.cap,
            "VC buffer overflow: credit protocol violated"
        );
        let mut tail = self.head + self.len;
        if tail >= self.cap {
            tail -= self.cap;
        }
        self.buf[tail as usize] = flit;
        self.len += 1;
    }

    #[inline]
    pub(crate) fn pop_front(&mut self) -> Option<Flit> {
        if self.len == 0 {
            return None;
        }
        let flit = self.buf[self.head as usize];
        self.head += 1;
        if self.head == self.cap {
            self.head = 0;
        }
        self.len -= 1;
        Some(flit)
    }
}

/// An input port as staged by the builder: one VC per message class plus
/// credit-return bookkeeping. [`NetworkBuilder::build`] flattens these into
/// the network-level arrays (`crate::network::Network`); the per-port
/// occupancy byte lives there, next to its siblings.
///
/// [`NetworkBuilder::build`]: crate::network::NetworkBuilder::build
#[derive(Debug)]
pub(crate) struct InPort {
    pub(crate) vcs: [VcQueue; CLASS_COUNT],
    pub(crate) feeder: Feeder,
    /// Delay after a flit departs this buffer until the upstream sender can
    /// reuse the credit (credit wire + update).
    pub(crate) credit_delay: u8,
}

impl InPort {
    /// Builds an input port whose VC rings hold `depth` flits each — the
    /// same depth the sender's credit counter is initialized to.
    pub(crate) fn new(depth: u8, feeder: Feeder, credit_delay: u8) -> Self {
        InPort {
            vcs: std::array::from_fn(|_| VcQueue::new(depth)),
            feeder,
            credit_delay,
        }
    }
}

/// An output port: target, per-VC credits, and the wormhole owner lock.
#[derive(Debug)]
pub(crate) struct OutPort {
    pub(crate) target: OutTarget,
    /// Remaining downstream buffer slots per VC. Terminal targets are
    /// credit-exempt sinks.
    pub(crate) credits: [u8; CLASS_COUNT],
    pub(crate) max_credits: [u8; CLASS_COUNT],
    /// Which input port currently owns the downstream VC (head sent, tail
    /// not yet sent).
    pub(crate) owner: [Option<PortIndex>; CLASS_COUNT],
    /// Round-robin pointer over (input port × class) candidates.
    pub(crate) rr_next: u16,
    /// Flits sent through this port (for utilization/energy accounting).
    pub(crate) flits_sent: u64,
}

/// A router (or tree node) as staged by the builder.
///
/// This is construction-time scaffolding only: routers are assembled
/// through [`NetworkBuilder`](crate::network::NetworkBuilder), whose
/// `build()` hoists every router's ports and route table into the
/// network-level flat arrays. The per-cycle logic lives in
/// [`Network::tick`](crate::network::Network::tick), which only ever sees
/// the flat form; read-only inspection goes through
/// [`RouterView`](crate::network::RouterView).
#[derive(Debug)]
pub(crate) struct Router {
    pub(crate) cfg: RouterConfig,
    pub(crate) in_ports: Vec<InPort>,
    pub(crate) out_ports: Vec<OutPort>,
    /// Route table: output port per destination terminal. `UNROUTED` marks
    /// terminals this router can never see.
    pub(crate) route: Vec<PortIndex>,
}

/// Sentinel for "no route from this router to that terminal".
pub(crate) const UNROUTED: PortIndex = PortIndex::MAX;

impl Router {
    pub(crate) fn new(cfg: RouterConfig, num_terminals: usize) -> Self {
        Router {
            cfg,
            in_ports: Vec::new(),
            out_ports: Vec::new(),
            route: vec![UNROUTED; num_terminals],
        }
    }
}

/// Picks the winning candidate for an output port among `(in_port, class)`
/// pairs, according to `arbiter`. `num_in_ports` sizes the round-robin
/// schedule and `rr_next` is the output port's rotating pointer (ignored by
/// static priority).
///
/// `candidates` must be non-empty.
pub(crate) fn arbitrate(
    arbiter: ArbiterKind,
    num_in_ports: usize,
    rr_next: &mut u16,
    candidates: &[(PortIndex, MessageClass)],
) -> (PortIndex, MessageClass) {
    debug_assert!(!candidates.is_empty());
    match arbiter {
        ArbiterKind::StaticPriority => *candidates
            .iter()
            .max_by_key(|(port, class)| (class.priority(), std::cmp::Reverse(*port)))
            .expect("candidates non-empty"),
        ArbiterKind::RoundRobin => {
            let slots = (num_in_ports * CLASS_COUNT) as u16;
            let key =
                |(p, c): (PortIndex, MessageClass)| p as u16 * CLASS_COUNT as u16 + c.vc() as u16;
            let winner = *candidates
                .iter()
                .min_by_key(|&&cand| (key(cand) + slots - *rr_next) % slots)
                .expect("candidates non-empty");
            *rr_next = (key(winner) + 1) % slots;
            winner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_priority_prefers_response_then_network_port() {
        let mut rr = 0u16;
        let arb = |rr: &mut u16, cands: &[(PortIndex, MessageClass)]| {
            arbitrate(ArbiterKind::StaticPriority, 2, rr, cands)
        };
        // network responses beat local responses beat network requests.
        let cands = [
            (1, MessageClass::Request),
            (0, MessageClass::Request),
            (1, MessageClass::Response),
            (0, MessageClass::Response),
        ];
        assert_eq!(arb(&mut rr, &cands), (0, MessageClass::Response));
        let cands = [(1, MessageClass::Request), (0, MessageClass::Request)];
        assert_eq!(arb(&mut rr, &cands), (0, MessageClass::Request));
        let cands = [(1, MessageClass::Response), (0, MessageClass::Request)];
        assert_eq!(arb(&mut rr, &cands), (1, MessageClass::Response));
        // Static priority never touches the rotating pointer.
        assert_eq!(rr, 0);
    }

    #[test]
    fn round_robin_rotates_fairly() {
        let mut rr = 0u16;
        let cands = [(0, MessageClass::Request), (1, MessageClass::Request)];
        let first = arbitrate(ArbiterKind::RoundRobin, 2, &mut rr, &cands);
        let second = arbitrate(ArbiterKind::RoundRobin, 2, &mut rr, &cands);
        assert_ne!(first, second, "round robin must alternate between equals");
        let third = arbitrate(ArbiterKind::RoundRobin, 2, &mut rr, &cands);
        assert_eq!(first, third);
    }

    #[test]
    fn vc_ring_wraps_and_respects_depth() {
        use crate::packet::PacketId;
        let flit = |seq: u16| Flit {
            packet: PacketId(0),
            seq,
            size: 100,
            dst: TerminalId(0),
            class: MessageClass::Request,
        };
        let mut vc = VcQueue::new(3);
        assert_eq!(vc.len(), 0);
        // Churn past the capacity several times to exercise wraparound.
        for round in 0..5u16 {
            for i in 0..3 {
                vc.push_back(flit(round * 3 + i));
            }
            assert_eq!(vc.len(), 3);
            assert_eq!(vc.front().unwrap().seq, round * 3);
            for i in 0..3 {
                assert_eq!(vc.pop_front().unwrap().seq, round * 3 + i);
            }
        }
        assert_eq!(vc.pop_front(), None);
    }

    #[test]
    #[should_panic(expected = "credit protocol violated")]
    fn vc_ring_overflow_panics() {
        use crate::packet::PacketId;
        let flit = Flit {
            packet: PacketId(0),
            seq: 0,
            size: 100,
            dst: TerminalId(0),
            class: MessageClass::Request,
        };
        let mut vc = VcQueue::new(2);
        vc.push_back(flit);
        vc.push_back(flit);
        vc.push_back(flit);
    }

    #[test]
    fn config_presets() {
        assert_eq!(RouterConfig::mesh().pipeline_delay, 2);
        assert_eq!(RouterConfig::mesh().vc_depth, 5);
        assert_eq!(RouterConfig::fbfly(8).pipeline_delay, 3);
        let t = RouterConfig::tree_node();
        assert_eq!(t.pipeline_delay, 0);
        assert_eq!(t.arbiter, ArbiterKind::StaticPriority);
    }
}
