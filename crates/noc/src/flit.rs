//! Flits: the unit of link transfer and buffering.

use crate::packet::PacketId;
use crate::types::{MessageClass, TerminalId};

/// One flit of a packet.
///
/// A flit is `Copy` and carries just enough routing state (destination
/// terminal, class, position within the packet) for the routers to move it
/// without consulting the packet slab on the fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Parent packet handle.
    pub packet: PacketId,
    /// Position within the packet, `0..size`.
    pub seq: u16,
    /// Total number of flits in the parent packet.
    pub size: u16,
    /// Destination terminal (replicated from the packet header flit; real
    /// hardware carries it only in the head flit, but the wormhole route
    /// lock in [`crate::router`] means body flits never consult it).
    pub dst: TerminalId,
    /// Message class, which selects the virtual channel at every port.
    pub class: MessageClass,
}

impl Flit {
    /// Whether this is the head flit of its packet.
    #[inline]
    pub fn is_head(self) -> bool {
        self.seq == 0
    }

    /// Whether this is the tail flit of its packet (a single-flit packet is
    /// both head and tail).
    #[inline]
    pub fn is_tail(self) -> bool {
        self.seq + 1 == self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(seq: u16, size: u16) -> Flit {
        Flit {
            packet: PacketId(0),
            seq,
            size,
            dst: TerminalId(0),
            class: MessageClass::Request,
        }
    }

    #[test]
    fn head_tail_flags() {
        assert!(flit(0, 1).is_head());
        assert!(flit(0, 1).is_tail());
        assert!(flit(0, 5).is_head());
        assert!(!flit(0, 5).is_tail());
        assert!(!flit(3, 5).is_head());
        assert!(!flit(3, 5).is_tail());
        assert!(flit(4, 5).is_tail());
    }
}
