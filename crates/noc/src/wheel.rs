//! The calendar event wheel behind every NoC event queue.
//!
//! Flit arrivals, credit returns and analytic-fabric deliveries are all
//! scheduled a small, bounded number of cycles ahead (a hop delay, a
//! credit round-trip, a latency-function value), and the engine drains
//! each cycle exactly once. Under that contract a slot-indexed wheel —
//! `slot = cycle % slots` — replaces a comparison heap: pushes and drains
//! are O(1) with no sift, no `Reverse` ordering, and no per-event
//! allocation, because slot vectors are recycled by swapping with the
//! caller's scratch buffer.
//!
//! The wheel doubles its slot count if an event is scheduled beyond the
//! current horizon (re-bucketing the pending events), so callers with
//! unbounded schedules — the analytic fabrics take an arbitrary latency
//! function — degrade to a rare cold-path rebuild instead of a capacity
//! assert.

use nocout_sim::Cycle;

/// A calendar wheel of events of type `T`, indexed by absolute cycle.
///
/// Invariant (callers' contract): every scheduled cycle is drained before
/// the wheel wraps back onto its slot, which holds whenever events are
/// scheduled less than `slots` cycles ahead and the owner drains every
/// cycle it does not provably skip (see `Network::skip_idle`).
#[derive(Debug)]
pub(crate) struct EventWheel<T> {
    slots: Vec<Vec<T>>,
    /// Events currently scheduled anywhere in the wheel.
    pending: usize,
}

impl<T> EventWheel<T> {
    /// Creates a wheel with `slots` initial slots (its schedule horizon).
    pub(crate) fn with_slots(slots: usize) -> Self {
        assert!(slots >= 2);
        EventWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            pending: 0,
        }
    }

    /// Schedules `ev` for cycle `at` (`now <= at`), growing the horizon if
    /// `at` is beyond it.
    #[inline]
    pub(crate) fn push(&mut self, now: Cycle, at: Cycle, ev: T) {
        debug_assert!(at >= now, "cannot schedule in the past");
        let delta = at.raw() - now.raw();
        if delta >= self.slots.len() as u64 {
            self.grow(now, delta);
        }
        let idx = (at.raw() as usize) % self.slots.len();
        self.slots[idx].push(ev);
        self.pending += 1;
    }

    /// Moves the events due at `now` into `out` (cleared first), swapping
    /// buffers so slot capacity is recycled instead of reallocated every
    /// cycle.
    #[inline]
    pub(crate) fn drain_into(&mut self, now: Cycle, out: &mut Vec<T>) {
        let idx = (now.raw() as usize) % self.slots.len();
        out.clear();
        std::mem::swap(&mut self.slots[idx], out);
        self.pending -= out.len();
    }

    /// Cycles until the earliest scheduled event at or after `now` (0 =
    /// the next `drain_into(now)` will yield events), or `None` when the
    /// wheel is empty.
    pub(crate) fn next_occupied_delta(&self, now: Cycle) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        let len = self.slots.len();
        (0..len as u64).find(|dt| !self.slots[((now.raw() + dt) as usize) % len].is_empty())
    }

    /// Events scheduled and not yet drained.
    #[inline]
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Doubles the slot count until `delta` fits, re-bucketing pending
    /// events. Events keep their absolute due cycle: a slot can only hold
    /// one due cycle at a time under the drain contract, and that cycle is
    /// recoverable from the slot's offset from `now`.
    #[cold]
    fn grow(&mut self, now: Cycle, delta: u64) {
        let mut new_len = self.slots.len();
        while delta >= new_len as u64 {
            new_len *= 2;
        }
        let mut new_slots: Vec<Vec<T>> = (0..new_len).map(|_| Vec::new()).collect();
        let old_len = self.slots.len();
        for dt in 0..old_len as u64 {
            let at = now.raw() + dt;
            let old_idx = (at as usize) % old_len;
            for ev in self.slots[old_idx].drain(..) {
                new_slots[(at as usize) % new_len].push(ev);
            }
        }
        self.slots = new_slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_slot_order() {
        let mut w: EventWheel<u32> = EventWheel::with_slots(8);
        w.push(Cycle(0), Cycle(3), 30);
        w.push(Cycle(0), Cycle(1), 10);
        w.push(Cycle(0), Cycle(3), 31);
        assert_eq!(w.pending(), 3);
        assert_eq!(w.next_occupied_delta(Cycle(0)), Some(1));
        let mut out = Vec::new();
        w.drain_into(Cycle(1), &mut out);
        assert_eq!(out, vec![10]);
        w.drain_into(Cycle(2), &mut out);
        assert!(out.is_empty());
        w.drain_into(Cycle(3), &mut out);
        assert_eq!(out, vec![30, 31], "same-cycle events keep push order");
        assert_eq!(w.pending(), 0);
        assert_eq!(w.next_occupied_delta(Cycle(4)), None);
    }

    #[test]
    fn growth_rebuckets_pending_events() {
        let mut w: EventWheel<u32> = EventWheel::with_slots(4);
        w.push(Cycle(10), Cycle(11), 1);
        w.push(Cycle(10), Cycle(13), 3);
        // Beyond the 4-slot horizon: forces a doubling; 11 and 13 must
        // still come out at their cycles.
        w.push(Cycle(10), Cycle(19), 9);
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for t in 11..=19 {
            w.drain_into(Cycle(t), &mut out);
            seen.extend(out.iter().map(|&v| (t, v)));
        }
        assert_eq!(seen, vec![(11, 1), (13, 3), (19, 9)]);
    }
}
