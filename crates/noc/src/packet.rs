//! Packets and the packet slab.
//!
//! Flits are tiny `Copy` values that reference their parent packet through a
//! [`PacketId`]; the packet bodies live in a [`PacketSlab`] owned by the
//! network. This keeps the per-cycle data movement cheap while preserving
//! full packet metadata for latency accounting and protocol resumption.

use crate::types::{flits_for_payload, MessageClass, TerminalId};
use nocout_sim::Cycle;

/// Slab handle for a packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u32);

impl PacketId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A network packet.
///
/// `token` is an opaque value chosen by the client (the memory system uses
/// it to find the protocol transaction to resume on delivery). The network
/// never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Injecting terminal.
    pub src: TerminalId,
    /// Destination terminal.
    pub dst: TerminalId,
    /// Message class (selects the virtual channel).
    pub class: MessageClass,
    /// Length in flits (≥ 1), already serialized for the link width.
    pub size_flits: u16,
    /// Client-defined correlation token.
    pub token: u64,
    /// Cycle at which the packet entered the injection queue.
    pub injected_at: Cycle,
}

impl Packet {
    /// Builds a packet, deriving its flit count from the payload size and
    /// link width.
    ///
    /// # Examples
    ///
    /// ```
    /// use nocout_noc::packet::Packet;
    /// use nocout_noc::types::{MessageClass, TerminalId};
    /// use nocout_sim::Cycle;
    ///
    /// let p = Packet::new(
    ///     TerminalId(0),
    ///     TerminalId(5),
    ///     MessageClass::Response,
    ///     64,   // one cache line of payload
    ///     128,  // 128-bit links
    ///     7,
    ///     Cycle(100),
    /// );
    /// assert_eq!(p.size_flits, 5);
    /// ```
    pub fn new(
        src: TerminalId,
        dst: TerminalId,
        class: MessageClass,
        payload_bytes: u32,
        link_width_bits: u32,
        token: u64,
        injected_at: Cycle,
    ) -> Self {
        Packet {
            src,
            dst,
            class,
            size_flits: flits_for_payload(payload_bytes, link_width_bits),
            token,
            injected_at,
        }
    }
}

/// A delivered packet together with its measured network latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The packet as injected.
    pub packet: Packet,
    /// Cycle at which the tail flit was ejected.
    pub delivered_at: Cycle,
}

impl Delivery {
    /// End-to-end latency in cycles (injection-queue entry to tail
    /// ejection).
    pub fn latency(&self) -> u64 {
        self.delivered_at.saturating_since(self.packet.injected_at)
    }
}

/// Free-list slab of in-flight packets.
///
/// # Examples
///
/// ```
/// use nocout_noc::packet::{Packet, PacketSlab};
/// use nocout_noc::types::{MessageClass, TerminalId};
/// use nocout_sim::Cycle;
///
/// let mut slab = PacketSlab::new();
/// let p = Packet::new(TerminalId(0), TerminalId(1), MessageClass::Request,
///                     0, 128, 0, Cycle(0));
/// let id = slab.insert(p.clone());
/// assert_eq!(slab.get(id), &p);
/// assert_eq!(slab.remove(id), p);
/// assert_eq!(slab.len(), 0);
/// ```
#[derive(Debug, Default)]
pub struct PacketSlab {
    entries: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: usize,
}

impl PacketSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        PacketSlab::default()
    }

    /// Number of packets currently in flight.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a packet, returning its handle.
    pub fn insert(&mut self, packet: Packet) -> PacketId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.entries[idx as usize] = Some(packet);
            PacketId(idx)
        } else {
            self.entries.push(Some(packet));
            PacketId((self.entries.len() - 1) as u32)
        }
    }

    /// Borrows a packet.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn get(&self, id: PacketId) -> &Packet {
        self.entries[id.index()]
            .as_ref()
            .expect("packet id must be live")
    }

    /// Removes a packet, releasing its slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn remove(&mut self, id: PacketId) -> Packet {
        let p = self.entries[id.index()]
            .take()
            .expect("packet id must be live");
        self.free.push(id.0);
        self.live -= 1;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(n: u64) -> Packet {
        Packet::new(
            TerminalId(0),
            TerminalId(1),
            MessageClass::Request,
            0,
            128,
            n,
            Cycle(n),
        )
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(packet(1));
        let b = slab.insert(packet(2));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).token, 1);
        assert_eq!(slab.get(b).token, 2);
        assert_eq!(slab.remove(a).token, 1);
        assert_eq!(slab.len(), 1);
        // Slot reuse.
        let c = slab.insert(packet(3));
        assert_eq!(c, a);
        assert_eq!(slab.get(c).token, 3);
    }

    #[test]
    #[should_panic(expected = "live")]
    fn slab_get_after_remove_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(packet(1));
        slab.remove(a);
        let _ = slab.get(a);
    }

    #[test]
    fn delivery_latency() {
        let p = packet(10);
        let d = Delivery {
            packet: p,
            delivered_at: Cycle(35),
        };
        assert_eq!(d.latency(), 25);
    }

    #[test]
    fn packet_flit_count_from_width() {
        let p = Packet::new(
            TerminalId(0),
            TerminalId(1),
            MessageClass::Response,
            64,
            32,
            0,
            Cycle(0),
        );
        assert_eq!(p.size_flits, 18);
    }
}
