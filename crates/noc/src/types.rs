//! Core identifier and message-class types for the NoC.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a router (or tree node) within a [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouterId(pub u16);

impl RouterId {
    /// Index into the network's router table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a network terminal: anything that injects and ejects packets
/// (a core, an LLC tile, or a memory controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TerminalId(pub u16);

impl TerminalId {
    /// Index into the network's terminal table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TerminalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Port index local to one router.
pub type PortIndex = u8;

/// The protocol message classes carried by the network.
///
/// The paper distinguishes exactly three classes to guarantee network-level
/// deadlock freedom for the coherence protocol (§4.1): data requests, snoop
/// requests, and responses (both data and snoop responses). Each class rides
/// a dedicated virtual channel at every port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// L1 miss requests travelling from cores toward the LLC/directory, and
    /// LLC fill requests toward the memory controllers.
    Request,
    /// Snoop requests (invalidations and forward requests). These originate
    /// only at the directory nodes co-located with the LLC.
    Snoop,
    /// Data responses and snoop acknowledgements. Responses sink at their
    /// destination, which breaks protocol-level dependence cycles.
    Response,
}

/// Number of message classes, and therefore VCs per port in the general
/// networks.
pub const CLASS_COUNT: usize = 3;

impl MessageClass {
    /// All classes, in ascending VC-index order.
    pub const ALL: [MessageClass; CLASS_COUNT] =
        [MessageClass::Request, MessageClass::Snoop, MessageClass::Response];

    /// The virtual-channel index assigned to this class.
    #[inline]
    pub fn vc(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::Snoop => 1,
            MessageClass::Response => 2,
        }
    }

    /// Builds a class back from a VC index.
    ///
    /// # Panics
    ///
    /// Panics if `vc >= CLASS_COUNT`.
    #[inline]
    pub fn from_vc(vc: usize) -> MessageClass {
        MessageClass::ALL[vc]
    }

    /// Static arbitration priority (higher wins). The paper prioritizes
    /// responses over snoops over requests, so that replies are never
    /// blocked behind new work.
    #[inline]
    pub fn priority(self) -> u8 {
        match self {
            MessageClass::Response => 2,
            MessageClass::Snoop => 1,
            MessageClass::Request => 0,
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageClass::Request => "req",
            MessageClass::Snoop => "snoop",
            MessageClass::Response => "resp",
        };
        f.write_str(s)
    }
}

/// Computes the number of flits needed to carry `payload_bytes` of data plus
/// an 8-byte header on links that are `link_width_bits` wide.
///
/// With the paper's 128-bit (16-byte) links, a control packet (no payload)
/// is a single flit and a 64-byte cache-line response is
/// `ceil(72 / 16) = 5` flits. The area-normalized study (Fig. 9) shrinks the
/// link width, which grows packets through exactly this function — that is
/// the serialization-latency spike the paper describes.
///
/// # Panics
///
/// Panics if `link_width_bits` is zero.
///
/// # Examples
///
/// ```
/// use nocout_noc::types::flits_for_payload;
///
/// assert_eq!(flits_for_payload(0, 128), 1);   // request
/// assert_eq!(flits_for_payload(64, 128), 5);  // data response
/// assert_eq!(flits_for_payload(64, 32), 18);  // narrow-link response
/// ```
pub fn flits_for_payload(payload_bytes: u32, link_width_bits: u32) -> u16 {
    assert!(link_width_bits > 0, "link width must be positive");
    const HEADER_BYTES: u32 = 8;
    let total_bits = (payload_bytes + HEADER_BYTES) * 8;
    total_bits.div_ceil(link_width_bits) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_vc_round_trip() {
        for class in MessageClass::ALL {
            assert_eq!(MessageClass::from_vc(class.vc()), class);
        }
    }

    #[test]
    fn class_priorities_ordering() {
        assert!(MessageClass::Response.priority() > MessageClass::Snoop.priority());
        assert!(MessageClass::Snoop.priority() > MessageClass::Request.priority());
    }

    #[test]
    fn flit_sizing_at_paper_width() {
        assert_eq!(flits_for_payload(0, 128), 1);
        assert_eq!(flits_for_payload(64, 128), 5);
    }

    #[test]
    fn flit_sizing_narrow_links() {
        // Mesh at ~1/2 width and FBfly at ~1/7 width for the Fig. 9 study.
        assert_eq!(flits_for_payload(64, 64), 9);
        assert_eq!(flits_for_payload(0, 16), 4);
        assert_eq!(flits_for_payload(64, 16), 36);
    }

    #[test]
    fn display_impls() {
        assert_eq!(RouterId(3).to_string(), "r3");
        assert_eq!(TerminalId(9).to_string(), "t9");
        assert_eq!(MessageClass::Snoop.to_string(), "snoop");
    }
}
