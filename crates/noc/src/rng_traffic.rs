//! Synthetic traffic drivers for standalone network studies.
//!
//! The full-system model in the `nocout` crate generates traffic from
//! workload execution; these helpers instead drive a bare network with
//! statistically-shaped traffic — useful for utilization profiles,
//! saturation studies and tests that need the fabric in isolation.

use crate::topology::nocout::NocOutNetwork;
use crate::types::MessageClass;
use nocout_sim::rng::SimRng;

/// Result of a synthetic traffic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// Packets delivered within the window.
    pub packets: u64,
    /// Mean end-to-end latency in cycles.
    pub mean_latency: f64,
    /// Requests injected.
    pub injected: u64,
}

/// Drives a NOC-Out network with the bilateral pattern of §3: cores send
/// single-flit requests to uniformly-chosen LLC tiles, each answered by a
/// five-flit data response. `request_rate` is the aggregate request
/// injection probability per cycle across the whole chip.
///
/// # Examples
///
/// ```
/// use nocout_noc::rng_traffic::run_bilateral_traffic;
/// use nocout_noc::topology::nocout::{build_nocout, NocOutSpec};
///
/// let mut n = build_nocout(&NocOutSpec::paper_64());
/// let report = run_bilateral_traffic(&mut n, 0.2, 5_000, 1);
/// assert!(report.packets > 0);
/// ```
pub fn run_bilateral_traffic(
    built: &mut NocOutNetwork,
    request_rate: f64,
    cycles: u64,
    seed: u64,
) -> TrafficReport {
    let mut rng = SimRng::new(seed);
    let cores = built.core_terminals.clone();
    let llcs = built.llc_terminals.clone();
    let mut injected = 0u64;
    for _ in 0..cycles {
        if rng.chance(request_rate) {
            let core = cores[rng.next_below(cores.len() as u64) as usize];
            let llc = llcs[rng.next_below(llcs.len() as u64) as usize];
            // Request up the reduction tree...
            built
                .network
                .inject(core, llc, MessageClass::Request, 0, core.0 as u64);
            injected += 1;
        }
        built.network.tick();
        // ...and a data response back down the dispersion tree for every
        // delivered request.
        for &llc in &llcs {
            while let Some(d) = built.network.poll(llc) {
                let back = crate::types::TerminalId(d.packet.token as u16);
                built
                    .network
                    .inject(llc, back, MessageClass::Response, 64, u64::MAX);
            }
        }
        for &core in &cores {
            while built.network.poll(core).is_some() {}
        }
    }
    let stats = built.network.stats();
    TrafficReport {
        packets: stats.packets_delivered.value(),
        mean_latency: stats.mean_latency(),
        injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::nocout::{build_nocout, NocOutSpec};

    #[test]
    fn bilateral_traffic_flows_and_measures() {
        let mut n = build_nocout(&NocOutSpec::paper_64());
        let report = run_bilateral_traffic(&mut n, 0.5, 10_000, 3);
        assert!(report.injected > 4_000);
        // Requests + responses both count as delivered packets.
        assert!(report.packets as f64 > report.injected as f64 * 1.5);
        assert!(report.mean_latency > 4.0 && report.mean_latency < 40.0);
    }

    #[test]
    fn higher_load_raises_latency() {
        let mut low = build_nocout(&NocOutSpec::paper_64());
        let mut high = build_nocout(&NocOutSpec::paper_64());
        let l = run_bilateral_traffic(&mut low, 0.1, 10_000, 3);
        let h = run_bilateral_traffic(&mut high, 2.0, 10_000, 3);
        assert!(
            h.mean_latency > l.mean_latency,
            "contention must show: {} vs {}",
            h.mean_latency,
            l.mean_latency
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = build_nocout(&NocOutSpec::paper_64());
        let mut b = build_nocout(&NocOutSpec::paper_64());
        let ra = run_bilateral_traffic(&mut a, 0.4, 5_000, 9);
        let rb = run_bilateral_traffic(&mut b, 0.4, 5_000, 9);
        assert_eq!(ra, rb);
    }
}
