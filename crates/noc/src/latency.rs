//! Contention-free analytic fabrics.
//!
//! Figure 1 of the paper compares an *ideal* interconnect, where only wire
//! delay is exposed (routing, arbitration, switching and buffering all take
//! zero time), against a mesh with a 3-cycle per-hop delay — explicitly
//! *without* modelling contention in either network. [`LatencyFabric`]
//! reproduces that: every packet is delivered exactly
//! `latency(src, dst) + serialization` cycles after injection, with
//! unbounded bandwidth.

use crate::fabric::Fabric;
use crate::packet::{Delivery, Packet};
use crate::stats::NetStats;
use crate::types::{MessageClass, TerminalId};
use crate::wheel::EventWheel;
use nocout_sim::Cycle;
use std::collections::VecDeque;

/// Initial wheel horizon: covers the largest head latency any analytic
/// fabric in the paper's configurations computes (tens of cycles of wire
/// delay plus serialization); the wheel grows if a latency function
/// exceeds it.
const LATENCY_WHEEL_SLOTS: usize = 128;

/// Computes the head-flit latency between two terminals, in cycles.
pub type LatencyFn = Box<dyn Fn(TerminalId, TerminalId) -> u64 + Send>;

/// A contention-free fabric with a per-pair latency function.
///
/// # Examples
///
/// ```
/// use nocout_noc::latency::LatencyFabric;
/// use nocout_noc::fabric::Fabric;
/// use nocout_noc::types::{MessageClass, TerminalId};
///
/// // Fixed 10-cycle fabric with 128-bit links.
/// let mut fab = LatencyFabric::new(4, 128, Box::new(|_, _| 10));
/// fab.inject(TerminalId(0), TerminalId(1), MessageClass::Request, 0, 9);
/// for _ in 0..11 {
///     fab.tick();
/// }
/// let d = fab.poll(TerminalId(1)).expect("delivered");
/// assert_eq!(d.latency(), 10); // single-flit packet: no serialization
/// ```
pub struct LatencyFabric {
    num_terminals: usize,
    link_width_bits: u32,
    latency_fn: LatencyFn,
    /// Payload slots scheduled on a calendar wheel keyed by delivery
    /// cycle — replaces the former `BinaryHeap<Reverse<(u64, u64)>>` of
    /// (deliver_at, slot) pairs.
    in_flight: EventWheel<u64>,
    /// Scratch for draining one wheel slot per tick without allocating.
    due_scratch: Vec<u64>,
    payload: Vec<Option<Packet>>,
    free: Vec<usize>,
    delivered: Vec<VecDeque<Delivery>>,
    /// Terminals with undelivered packets, in arrival order.
    ready: VecDeque<u16>,
    in_ready: Vec<bool>,
    stats: NetStats,
    now: Cycle,
}

impl std::fmt::Debug for LatencyFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyFabric")
            .field("num_terminals", &self.num_terminals)
            .field("link_width_bits", &self.link_width_bits)
            .field("in_flight", &self.in_flight.pending())
            .field("now", &self.now)
            .finish()
    }
}

impl LatencyFabric {
    /// Creates a fabric over `num_terminals` terminals.
    pub fn new(num_terminals: usize, link_width_bits: u32, latency_fn: LatencyFn) -> Self {
        LatencyFabric {
            num_terminals,
            link_width_bits,
            latency_fn,
            in_flight: EventWheel::with_slots(LATENCY_WHEEL_SLOTS),
            due_scratch: Vec::new(),
            payload: Vec::new(),
            free: Vec::new(),
            delivered: (0..num_terminals).map(|_| VecDeque::new()).collect(),
            ready: VecDeque::new(),
            in_ready: vec![false; num_terminals],
            stats: NetStats::new(),
            now: Cycle::ZERO,
        }
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.num_terminals
    }
}

impl Fabric for LatencyFabric {
    fn inject(
        &mut self,
        src: TerminalId,
        dst: TerminalId,
        class: MessageClass,
        payload_bytes: u32,
        token: u64,
    ) {
        assert!(dst.index() < self.num_terminals, "dst out of range");
        let packet = Packet::new(
            src,
            dst,
            class,
            payload_bytes,
            self.link_width_bits,
            token,
            self.now,
        );
        // Head latency plus serialization of the remaining flits.
        let latency = (self.latency_fn)(src, dst) + (packet.size_flits as u64 - 1);
        let slot = if let Some(s) = self.free.pop() {
            self.payload[s] = Some(packet);
            s
        } else {
            self.payload.push(Some(packet));
            self.payload.len() - 1
        };
        self.stats.packets_injected.incr();
        self.in_flight
            .push(self.now, self.now + latency.max(1), slot as u64);
    }

    fn tick(&mut self) {
        self.now.0 += 1;
        let mut due = std::mem::take(&mut self.due_scratch);
        self.in_flight.drain_into(self.now, &mut due);
        // The replaced heap popped same-cycle deliveries in ascending slot
        // order (its tiebreak key); sorting the drained slot ids keeps the
        // delivery order — and thus `ready` rotation — bit-identical.
        due.sort_unstable();
        for &slot in &due {
            let packet = self.payload[slot as usize]
                .take()
                .expect("slot must be live");
            self.free.push(slot as usize);
            let latency = self.now.saturating_since(packet.injected_at);
            self.stats
                .record_delivery(packet.class, latency, packet.size_flits);
            let dst = packet.dst.index();
            self.delivered[dst].push_back(Delivery {
                packet,
                delivered_at: self.now,
            });
            if !self.in_ready[dst] {
                self.in_ready[dst] = true;
                self.ready.push_back(dst as u16);
            }
        }
        self.due_scratch = due;
    }

    fn poll(&mut self, terminal: TerminalId) -> Option<Delivery> {
        self.delivered[terminal.index()].pop_front()
    }

    fn take_ready_terminal(&mut self) -> Option<TerminalId> {
        while let Some(t) = self.ready.pop_front() {
            self.in_ready[t as usize] = false;
            if !self.delivered[t as usize].is_empty() {
                return Some(TerminalId(t));
            }
        }
        None
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn next_event(&self) -> crate::fabric::NextEvent {
        use crate::fabric::NextEvent;
        match self.in_flight.next_occupied_delta(self.now) {
            // A packet due at absolute cycle `at` surfaces during the tick
            // entered at `at - 1` (tick advances the clock first), so that
            // is the cycle the caller must resume normal ticking at.
            Some(dt) => NextEvent::At(Cycle((self.now.raw() + dt).saturating_sub(1))),
            None => NextEvent::Idle,
        }
    }

    fn skip_idle(&mut self, delta: u64) {
        debug_assert!(
            self.in_flight
                .next_occupied_delta(self.now)
                .is_none_or(|dt| delta < dt),
            "cannot skip past a scheduled delivery"
        );
        self.now.0 += delta;
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn link_width_bits(&self) -> u32 {
        self.link_width_bits
    }

    fn packets_in_flight(&self) -> usize {
        self.in_flight.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_delivery() {
        let mut fab = LatencyFabric::new(2, 128, Box::new(|_, _| 7));
        fab.inject(TerminalId(0), TerminalId(1), MessageClass::Request, 0, 1);
        for _ in 0..7 {
            fab.tick();
        }
        let d = fab.poll(TerminalId(1)).expect("must deliver at t=7");
        assert_eq!(d.latency(), 7);
        assert_eq!(fab.packets_in_flight(), 0);
    }

    #[test]
    fn serialization_adds_flits() {
        let mut fab = LatencyFabric::new(2, 128, Box::new(|_, _| 10));
        fab.inject(TerminalId(0), TerminalId(1), MessageClass::Response, 64, 2);
        for _ in 0..14 {
            fab.tick();
        }
        // 5 flits: head at 10, tail at 14.
        let d = fab.poll(TerminalId(1)).expect("delivered");
        assert_eq!(d.latency(), 14);
    }

    #[test]
    fn no_contention_between_packets() {
        // 100 packets between the same pair all arrive with the same
        // latency (infinite bandwidth).
        let mut fab = LatencyFabric::new(2, 128, Box::new(|_, _| 5));
        for i in 0..100 {
            fab.inject(TerminalId(0), TerminalId(1), MessageClass::Request, 0, i);
        }
        for _ in 0..5 {
            fab.tick();
        }
        let mut n = 0;
        while fab.poll(TerminalId(1)).is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
        assert!((fab.stats().mean_latency() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_latency_fn() {
        let f = |s: TerminalId, d: TerminalId| (s.0 as u64 + 1) * (d.0 as u64 + 1);
        let mut fab = LatencyFabric::new(3, 128, Box::new(f));
        fab.inject(TerminalId(1), TerminalId(2), MessageClass::Request, 0, 0);
        for _ in 0..6 {
            fab.tick();
        }
        assert!(fab.poll(TerminalId(2)).is_some());
    }
}
