//! Contention-free fabrics for the Fig. 1 distance study.
//!
//! The paper's Fig. 1 compares per-core performance under two analytic
//! interconnects as the core count (and therefore die size) grows:
//!
//! * **Ideal** — only wire delay is exposed: routing, arbitration,
//!   switching and buffering take zero time,
//! * **Mesh** — a 3-cycle per-hop delay (router + wire),
//!
//! with contention explicitly not modelled in either. Both are expressed
//! here as [`LatencyFabric`]s over the tiled terminal layout produced by
//! [`super::mesh::build_mesh`]: terminals `0..tiles` are the tiles
//! (row-major) and the remainder are memory controllers at the same edge
//! positions.

use crate::latency::LatencyFabric;
use crate::types::TerminalId;
use serde::{Deserialize, Serialize};

use super::mesh::mc_tiles;
use super::{WIRE_CYCLES_PER_MM};

/// Which analytic fabric to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalyticKind {
    /// Wire delay only (125 ps/mm over the Manhattan tile distance).
    IdealWire,
    /// Three cycles per mesh hop, zero load.
    ZeroLoadMesh,
}

/// Parameters for an analytic tiled fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticSpec {
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Which latency model.
    pub kind: AnalyticKind,
    /// Link width in bits (serialization still applies).
    pub link_width_bits: u32,
    /// Tile pitch in millimetres.
    pub tile_mm: f64,
    /// Memory-controller terminals to append after the tile terminals.
    pub num_memory_channels: usize,
}

impl AnalyticSpec {
    /// Fabric for `tiles` tiles of the given kind with paper defaults.
    pub fn for_tiles(tiles: usize, kind: AnalyticKind) -> Self {
        let (cols, rows) = super::grid_for_tiles(tiles);
        AnalyticSpec {
            cols,
            rows,
            kind,
            link_width_bits: 128,
            tile_mm: super::TILED_TILE_MM,
            num_memory_channels: 4,
        }
    }
}

/// Builds the analytic fabric. Terminal ids `0..cols*rows` are tiles in
/// row-major order; ids `cols*rows..` are the memory controllers.
///
/// # Examples
///
/// ```
/// use nocout_noc::topology::ideal::{build_analytic, AnalyticKind, AnalyticSpec};
/// use nocout_noc::fabric::Fabric;
/// use nocout_noc::types::{MessageClass, TerminalId};
///
/// let mut fab = build_analytic(&AnalyticSpec::for_tiles(64, AnalyticKind::ZeroLoadMesh));
/// fab.inject(TerminalId(0), TerminalId(63), MessageClass::Request, 0, 0);
/// for _ in 0..64 {
///     fab.tick();
/// }
/// let d = fab.poll(TerminalId(63)).expect("delivered");
/// // 14 hops + ejection at 3 cycles each.
/// assert_eq!(d.latency(), 45);
/// ```
pub fn build_analytic(spec: &AnalyticSpec) -> LatencyFabric {
    let cols = spec.cols;
    let rows = spec.rows;
    let tiles = cols * rows;
    // Coordinates for every terminal (tiles then MCs).
    let mut coords: Vec<(usize, usize)> = (0..tiles).map(|i| (i % cols, i / cols)).collect();
    for &t in &mc_tiles(cols, rows, spec.num_memory_channels) {
        coords.push((t % cols, t / cols));
    }
    let kind = spec.kind;
    let tile_mm = spec.tile_mm;
    let latency_fn = move |src: TerminalId, dst: TerminalId| -> u64 {
        let (sc, sr) = coords[src.index()];
        let (dc, dr) = coords[dst.index()];
        let hops = sc.abs_diff(dc) + sr.abs_diff(dr);
        match kind {
            AnalyticKind::IdealWire => {
                let mm = hops as f64 * tile_mm;
                ((mm * WIRE_CYCLES_PER_MM).ceil() as u64).max(1)
            }
            // h router-to-router hops plus the ejection hop, 3 cycles each,
            // matching the detailed mesh model's zero-load latency.
            AnalyticKind::ZeroLoadMesh => (hops as u64 + 1) * 3,
        }
    };
    LatencyFabric::new(
        tiles + spec.num_memory_channels,
        spec.link_width_bits,
        Box::new(latency_fn),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::types::MessageClass;

    fn one_latency(fab: &mut LatencyFabric, src: u16, dst: u16, payload: u32) -> u64 {
        fab.inject(
            TerminalId(src),
            TerminalId(dst),
            MessageClass::Request,
            payload,
            0,
        );
        for _ in 0..10_000 {
            fab.tick();
            if let Some(d) = fab.poll(TerminalId(dst)) {
                return d.latency();
            }
        }
        panic!("no delivery");
    }

    #[test]
    fn ideal_is_much_faster_than_mesh_at_64() {
        let mut ideal = build_analytic(&AnalyticSpec::for_tiles(64, AnalyticKind::IdealWire));
        let mut mesh = build_analytic(&AnalyticSpec::for_tiles(64, AnalyticKind::ZeroLoadMesh));
        let li = one_latency(&mut ideal, 0, 63, 0);
        let lm = one_latency(&mut mesh, 0, 63, 0);
        // 14 tiles of wire ≈ 26 mm ≈ 7 cycles vs 45 cycles through routers.
        assert_eq!(li, 7);
        assert_eq!(lm, 45);
    }

    #[test]
    fn small_grids_have_tiny_latency() {
        let mut ideal = build_analytic(&AnalyticSpec::for_tiles(1, AnalyticKind::IdealWire));
        // Self-send still costs one cycle.
        assert_eq!(one_latency(&mut ideal, 0, 0, 0), 1);
    }

    #[test]
    fn serialization_still_applies() {
        let mut ideal = build_analytic(&AnalyticSpec::for_tiles(4, AnalyticKind::IdealWire));
        let short = one_latency(&mut ideal, 0, 3, 0);
        let long = one_latency(&mut ideal, 0, 3, 64);
        assert_eq!(long - short, 4, "4 extra flits at one per cycle");
    }

    #[test]
    fn mc_terminals_present() {
        let spec = AnalyticSpec::for_tiles(16, AnalyticKind::ZeroLoadMesh);
        let mut fab = build_analytic(&spec);
        let mc = 16_u16; // first MC terminal
        let lat = one_latency(&mut fab, 5, mc, 0);
        assert!(lat >= 3);
    }
}
