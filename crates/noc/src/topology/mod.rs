//! Topology constructors for the three evaluated organizations plus the
//! analytic fabrics of Fig. 1.
//!
//! * [`mesh`] — the tiled 8×8 mesh baseline (Fig. 2),
//! * [`fbfly`] — the tiled 2-D flattened butterfly (Fig. 3),
//! * [`nocout`] — the NOC-Out organization: reduction/dispersion trees into
//!   a centralized LLC row linked by a 1-D flattened butterfly (Fig. 5),
//! * [`ideal`] — contention-free wire-only and zero-load-mesh fabrics
//!   (Fig. 1).
//!
//! All builders share the geometry model in this module: 32nm tiles with
//! semi-global wires at 125 ps/mm and a 2 GHz clock, so a signal covers
//! 4 mm per cycle and link delays derive from physical tile pitch.

pub mod fbfly;
pub mod ideal;
pub mod mesh;
pub mod nocout;

/// Wire latency of repeated semi-global links, in cycles per millimetre
/// (125 ps/mm at a 500 ps clock — §5.2).
pub const WIRE_CYCLES_PER_MM: f64 = 0.25;

/// Edge length of a tile in the tiled (mesh / flattened butterfly)
/// organizations, in millimetres.
///
/// A tile holds an ARM Cortex-A15-like core (2.9 mm²), a 128 KB LLC slice
/// (8 MB / 64 tiles at 3.2 mm²/MB = 0.4 mm²) and a router: ≈ 3.4 mm², or
/// about 1.85 mm on a side.
pub const TILED_TILE_MM: f64 = 1.85;

/// Pitch of NOC-Out core tiles (2.9 mm² core + tree nodes ≈ 3.0 mm²,
/// ≈ 1.75 mm on a side).
pub const NOCOUT_TILE_MM: f64 = 1.75;

/// Converts a physical distance into a link delay in cycles (at least 1).
///
/// # Examples
///
/// ```
/// use nocout_noc::topology::{link_delay_for_mm, TILED_TILE_MM};
///
/// // One tile: under half a cycle of wire, still one pipelined cycle.
/// assert_eq!(link_delay_for_mm(TILED_TILE_MM), 1);
/// // Paper: an FBfly flit covers up to two tiles per cycle.
/// assert_eq!(link_delay_for_mm(2.0 * TILED_TILE_MM), 1);
/// assert_eq!(link_delay_for_mm(4.0 * TILED_TILE_MM), 2);
/// ```
pub fn link_delay_for_mm(length_mm: f64) -> u8 {
    ((length_mm * WIRE_CYCLES_PER_MM).ceil() as u8).max(1)
}

/// Buffer depth required to stream at full rate over a link with the given
/// hop delay: downstream pipeline + link there + credit back, with margin.
/// Matches Table 1's "variable flits/VC" sizing note for the flattened
/// butterfly.
pub fn credit_round_trip_depth(pipeline_delay: u8, link_delay: u8) -> u8 {
    pipeline_delay + 2 * link_delay + 2
}

/// Grid dimensions (columns, rows) used for a given tile count in the
/// core-count sweep of Fig. 1. Powers of two up to 64.
///
/// # Panics
///
/// Panics if `tiles` is not a power of two in `1..=64`.
pub fn grid_for_tiles(tiles: usize) -> (usize, usize) {
    match tiles {
        1 => (1, 1),
        2 => (2, 1),
        4 => (2, 2),
        8 => (4, 2),
        16 => (4, 4),
        32 => (8, 4),
        64 => (8, 8),
        _ => panic!("unsupported tile count {tiles}; use a power of two ≤ 64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_delay_rounds_up() {
        assert_eq!(link_delay_for_mm(0.1), 1);
        assert_eq!(link_delay_for_mm(3.9), 1);
        assert_eq!(link_delay_for_mm(4.1), 2);
        assert_eq!(link_delay_for_mm(8.0), 2);
        assert_eq!(link_delay_for_mm(12.9), 4);
    }

    #[test]
    fn fbfly_covers_two_tiles_per_cycle() {
        for d in 1..=7usize {
            let delay = link_delay_for_mm(d as f64 * TILED_TILE_MM);
            assert_eq!(delay as usize, d.div_ceil(2), "distance {d}");
        }
    }

    #[test]
    fn grid_dims() {
        assert_eq!(grid_for_tiles(1), (1, 1));
        assert_eq!(grid_for_tiles(8), (4, 2));
        assert_eq!(grid_for_tiles(64), (8, 8));
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn grid_rejects_odd_sizes() {
        let _ = grid_for_tiles(3);
    }

    #[test]
    fn credit_depth_covers_round_trip() {
        // Mesh: 2-stage pipeline + 1-cycle link → 5 flits, Table 1's value.
        assert!(credit_round_trip_depth(2, 1) >= 5);
    }
}
