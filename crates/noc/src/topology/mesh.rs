//! The tiled mesh baseline (Fig. 2).
//!
//! 64 tiles in an 8×8 grid; each tile holds a core, an LLC slice with
//! directory, and a 5-port router (N/S/E/W + local) with a 2-stage
//! speculative pipeline, 3 VCs per port (one per message class) and 5-flit
//! VCs — Table 1. Routing is dimension-ordered (X then Y), which is
//! deadlock-free within each message class.

use crate::network::{Network, NetworkBuilder};
use crate::router::RouterConfig;
use crate::types::{PortIndex, RouterId, TerminalId};
use serde::{Deserialize, Serialize};

use super::{link_delay_for_mm, TILED_TILE_MM};

/// Parameters of a tiled mesh network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshSpec {
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Link (flit) width in bits; 128 in the paper's main configuration.
    pub link_width_bits: u32,
    /// Tile pitch in millimetres.
    pub tile_mm: f64,
    /// Number of memory-controller terminals attached at edge routers.
    pub num_memory_channels: usize,
    /// VC buffer depth in flits (5 covers the round-trip credit time).
    pub vc_depth: u8,
}

impl MeshSpec {
    /// The paper's 64-tile configuration.
    pub fn paper_64() -> Self {
        MeshSpec {
            cols: 8,
            rows: 8,
            link_width_bits: 128,
            tile_mm: TILED_TILE_MM,
            num_memory_channels: 4,
            vc_depth: 5,
        }
    }

    /// A mesh sized for `tiles` tiles (Fig. 1 core-count sweep).
    pub fn with_tiles(tiles: usize) -> Self {
        let (cols, rows) = super::grid_for_tiles(tiles);
        MeshSpec {
            cols,
            rows,
            ..MeshSpec::paper_64()
        }
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }
}

/// A built tiled network (mesh or flattened butterfly): the fabric plus the
/// terminal map the chip model needs.
#[derive(Debug)]
pub struct TiledNetwork {
    /// The underlying flit-level network.
    pub network: Network,
    /// One terminal per tile, row-major. The tile's core and LLC slice
    /// share this terminal (they share the router's local port).
    pub tile_terminals: Vec<TerminalId>,
    /// Memory-controller terminals, attached at edge routers.
    pub mc_terminals: Vec<TerminalId>,
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
}

impl TiledNetwork {
    /// The tile coordinates (col, row) of terminal index `t` within
    /// `tile_terminals`.
    pub fn tile_coords(&self, tile: usize) -> (usize, usize) {
        (tile % self.cols, tile / self.cols)
    }
}

/// Positions (as tile indices) at which memory controllers attach: spread
/// along the left and right die edges, mirroring Fig. 5's channel placement.
pub(crate) fn mc_tiles(cols: usize, rows: usize, channels: usize) -> Vec<usize> {
    let mut tiles = Vec::with_capacity(channels);
    for k in 0..channels {
        let side_right = k % 2 == 1;
        let row = (rows * (k / 2 * 2 + 1) / channels.max(1)).min(rows - 1);
        let col = if side_right { cols - 1 } else { 0 };
        tiles.push(row * cols + col);
    }
    tiles
}

/// Builds a mesh network per `spec`.
///
/// # Examples
///
/// ```
/// use nocout_noc::topology::mesh::{build_mesh, MeshSpec};
///
/// let mesh = build_mesh(&MeshSpec::paper_64());
/// assert_eq!(mesh.tile_terminals.len(), 64);
/// assert_eq!(mesh.mc_terminals.len(), 4);
/// assert_eq!(mesh.network.num_routers(), 64);
/// ```
pub fn build_mesh(spec: &MeshSpec) -> TiledNetwork {
    let cols = spec.cols;
    let rows = spec.rows;
    assert!(cols >= 1 && rows >= 1);
    let mut b = NetworkBuilder::new(spec.link_width_bits);
    let cfg = RouterConfig {
        vc_depth: spec.vc_depth,
        ..RouterConfig::mesh()
    };

    let router_at: Vec<RouterId> = (0..cols * rows).map(|_| b.add_router(cfg)).collect();
    let idx = |c: usize, r: usize| r * cols + c;
    let delay = link_delay_for_mm(spec.tile_mm);

    // Neighbor links; record the out-port of each direction for routing.
    // east[i] = out port at tile i toward (c+1, r), etc.
    let mut east: Vec<Option<PortIndex>> = vec![None; cols * rows];
    let mut west: Vec<Option<PortIndex>> = vec![None; cols * rows];
    let mut north: Vec<Option<PortIndex>> = vec![None; cols * rows];
    let mut south: Vec<Option<PortIndex>> = vec![None; cols * rows];
    for r in 0..rows {
        for c in 0..cols {
            let here = idx(c, r);
            if c + 1 < cols {
                let there = idx(c + 1, r);
                let (e, _) = b.add_link(
                    router_at[here],
                    router_at[there],
                    delay,
                    spec.tile_mm as f32,
                );
                let (w, _) = b.add_link(
                    router_at[there],
                    router_at[here],
                    delay,
                    spec.tile_mm as f32,
                );
                east[here] = Some(e);
                west[there] = Some(w);
            }
            if r + 1 < rows {
                let there = idx(c, r + 1);
                let (s, _) = b.add_link(
                    router_at[here],
                    router_at[there],
                    delay,
                    spec.tile_mm as f32,
                );
                let (n, _) = b.add_link(
                    router_at[there],
                    router_at[here],
                    delay,
                    spec.tile_mm as f32,
                );
                south[here] = Some(s);
                north[there] = Some(n);
            }
        }
    }

    let tile_terminals: Vec<_> = (0..cols * rows)
        .map(|i| b.add_terminal(router_at[i]))
        .collect();
    let mc_attach = mc_tiles(cols, rows, spec.num_memory_channels);
    let mc_terminals: Vec<_> = mc_attach
        .iter()
        .map(|&tile| b.add_terminal(router_at[tile]))
        .collect();

    // Dimension-order (X then Y) routing tables for every terminal.
    let route_to = |b: &mut NetworkBuilder,
                        term: TerminalId,
                        eject_port: PortIndex,
                        dc: usize,
                        dr: usize| {
        for r in 0..rows {
            for c in 0..cols {
                let here = idx(c, r);
                let port = if c < dc {
                    east[here].expect("east link exists")
                } else if c > dc {
                    west[here].expect("west link exists")
                } else if r < dr {
                    south[here].expect("south link exists")
                } else if r > dr {
                    north[here].expect("north link exists")
                } else {
                    eject_port
                };
                b.set_route(router_at[here], term, port);
            }
        }
    };
    for (i, att) in tile_terminals.iter().enumerate() {
        route_to(&mut b, att.terminal, att.out_port, i % cols, i / cols);
    }
    for (k, att) in mc_terminals.iter().enumerate() {
        let tile = mc_attach[k];
        route_to(&mut b, att.terminal, att.out_port, tile % cols, tile / cols);
    }

    TiledNetwork {
        network: b.build(),
        tile_terminals: tile_terminals.iter().map(|a| a.terminal).collect(),
        mc_terminals: mc_terminals.iter().map(|a| a.terminal).collect(),
        cols,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MessageClass;

    #[test]
    fn builds_paper_mesh() {
        let mesh = build_mesh(&MeshSpec::paper_64());
        assert_eq!(mesh.network.num_terminals(), 68);
        // Interior router: 4 neighbor in + 1 terminal in = 5 ports.
        let interior = mesh.network.router(RouterId(9)); // tile (1,1)
        assert_eq!(interior.num_in_ports(), 5);
        assert_eq!(interior.num_out_ports(), 5);
    }

    #[test]
    fn corner_to_corner_zero_load_latency() {
        let mut mesh = build_mesh(&MeshSpec::paper_64());
        let t0 = mesh.tile_terminals[0];
        let t63 = mesh.tile_terminals[63];
        mesh.network
            .inject(t0, t63, MessageClass::Request, 0, 1);
        let mut lat = None;
        for _ in 0..200 {
            mesh.network.tick();
            if let Some(d) = mesh.network.poll(t63) {
                lat = Some(d.latency());
                break;
            }
        }
        // 14 hops + ejection, 3 cycles each = 45.
        assert_eq!(lat, Some(45));
    }

    #[test]
    fn xy_routing_all_pairs_deliver() {
        let mut mesh = build_mesh(&MeshSpec::with_tiles(16));
        let terminals = mesh.tile_terminals.clone();
        for (i, &src) in terminals.iter().enumerate() {
            for (j, &dst) in terminals.iter().enumerate() {
                if i == j {
                    continue;
                }
                mesh.network.inject(
                    src,
                    dst,
                    MessageClass::Request,
                    0,
                    (i * 100 + j) as u64,
                );
            }
        }
        assert!(mesh.network.run_until_drained(20_000));
        let delivered: usize = terminals
            .iter()
            .map(|&t| {
                let mut n = 0;
                while mesh.network.poll(t).is_some() {
                    n += 1;
                }
                n
            })
            .sum();
        assert_eq!(delivered, 16 * 15);
        mesh.network.check_invariants();
    }

    #[test]
    fn mc_terminals_reachable() {
        let mut mesh = build_mesh(&MeshSpec::paper_64());
        let src = mesh.tile_terminals[27];
        for &mc in &mesh.mc_terminals.clone() {
            mesh.network.inject(src, mc, MessageClass::Request, 0, 1);
        }
        assert!(mesh.network.run_until_drained(1000));
    }

    #[test]
    fn mc_tiles_on_edges() {
        for &tile in &mc_tiles(8, 8, 4) {
            let c = tile % 8;
            assert!(c == 0 || c == 7, "MCs must sit on left/right edges");
        }
        assert_eq!(mc_tiles(8, 8, 4).len(), 4);
    }

    #[test]
    fn mesh_routes_validate_with_manhattan_hop_counts() {
        let mesh = build_mesh(&MeshSpec::paper_64());
        let hops = mesh.network.validate_routes();
        // Tile 0 (0,0) to tile 63 (7,7): 14 hops; to itself: 0.
        assert_eq!(hops[0][63], 14);
        assert_eq!(hops[0][0], 0);
        assert_eq!(hops[0][7], 7);
        assert_eq!(hops[9][9 + 8], 1);
    }

    #[test]
    fn single_tile_mesh_works() {
        let mut mesh = build_mesh(&MeshSpec::with_tiles(1));
        let t = mesh.tile_terminals[0];
        mesh.network.inject(t, t, MessageClass::Response, 64, 5);
        assert!(mesh.network.run_until_drained(100));
        assert!(mesh.network.poll(t).is_some());
    }
}
