//! The tiled 2-D flattened butterfly (Fig. 3).
//!
//! Same tiled organization as the mesh, but every router has dedicated
//! channels to all routers in its row and all routers in its column
//! (7 + 7 = 14 network ports plus a local port at 8×8). Routing is
//! dimension-ordered and takes at most two hops. Routers use a 3-stage
//! non-speculative pipeline; per-port VC depth is sized to each link's
//! round-trip credit time, and link delay is proportional to distance
//! (up to two tiles per cycle) — Table 1.

use crate::network::NetworkBuilder;
use crate::router::RouterConfig;
use crate::types::{PortIndex, RouterId, TerminalId};
use serde::{Deserialize, Serialize};

use super::mesh::{mc_tiles, TiledNetwork};
use super::{credit_round_trip_depth, link_delay_for_mm, TILED_TILE_MM};

/// Parameters of a tiled flattened-butterfly network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FbflySpec {
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Link (flit) width in bits.
    pub link_width_bits: u32,
    /// Tile pitch in millimetres.
    pub tile_mm: f64,
    /// Number of memory-controller terminals.
    pub num_memory_channels: usize,
}

impl FbflySpec {
    /// The paper's 64-tile configuration.
    pub fn paper_64() -> Self {
        FbflySpec {
            cols: 8,
            rows: 8,
            link_width_bits: 128,
            tile_mm: TILED_TILE_MM,
            num_memory_channels: 4,
        }
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }
}

/// Builds a flattened-butterfly network per `spec`.
///
/// # Examples
///
/// ```
/// use nocout_noc::topology::fbfly::{build_fbfly, FbflySpec};
///
/// let net = build_fbfly(&FbflySpec::paper_64());
/// // 14 network ports + terminal = 15 ports per router, as in Table 1.
/// use nocout_noc::types::RouterId;
/// assert_eq!(net.network.router(RouterId(0)).num_out_ports(), 15);
/// ```
pub fn build_fbfly(spec: &FbflySpec) -> TiledNetwork {
    let cols = spec.cols;
    let rows = spec.rows;
    assert!(cols >= 1 && rows >= 1);
    let mut b = NetworkBuilder::new(spec.link_width_bits);
    // Base VC depth applies to terminal injection ports; per-link depths
    // are set explicitly below.
    let cfg = RouterConfig::fbfly(5);

    let router_at: Vec<RouterId> = (0..cols * rows).map(|_| b.add_router(cfg)).collect();
    let idx = |c: usize, r: usize| r * cols + c;

    // row_port[i][dc]: out port at tile i toward column dc (same row).
    let mut row_port: Vec<Vec<Option<PortIndex>>> = vec![vec![None; cols]; cols * rows];
    let mut col_port: Vec<Vec<Option<PortIndex>>> = vec![vec![None; rows]; cols * rows];
    for r in 0..rows {
        for c in 0..cols {
            let here = idx(c, r);
            for dc in 0..cols {
                if dc == c {
                    continue;
                }
                let dist = c.abs_diff(dc);
                let mm = dist as f64 * spec.tile_mm;
                let delay = link_delay_for_mm(mm);
                let depth = credit_round_trip_depth(cfg.pipeline_delay, delay);
                let (out, _) = b.add_link_with_depth(
                    router_at[here],
                    router_at[idx(dc, r)],
                    delay,
                    mm as f32,
                    depth,
                );
                row_port[here][dc] = Some(out);
            }
            for dr in 0..rows {
                if dr == r {
                    continue;
                }
                let dist = r.abs_diff(dr);
                let mm = dist as f64 * spec.tile_mm;
                let delay = link_delay_for_mm(mm);
                let depth = credit_round_trip_depth(cfg.pipeline_delay, delay);
                let (out, _) = b.add_link_with_depth(
                    router_at[here],
                    router_at[idx(c, dr)],
                    delay,
                    mm as f32,
                    depth,
                );
                col_port[here][dr] = Some(out);
            }
        }
    }

    let tile_terminals: Vec<_> = (0..cols * rows)
        .map(|i| b.add_terminal(router_at[i]))
        .collect();
    let mc_attach = mc_tiles(cols, rows, spec.num_memory_channels);
    let mc_terminals: Vec<_> = mc_attach
        .iter()
        .map(|&tile| b.add_terminal(router_at[tile]))
        .collect();

    // X-then-Y routing: at most one row hop then one column hop.
    let route_to = |b: &mut NetworkBuilder,
                        term: TerminalId,
                        eject_port: PortIndex,
                        dc: usize,
                        dr: usize| {
        for r in 0..rows {
            for c in 0..cols {
                let here = idx(c, r);
                let port = if c != dc {
                    row_port[here][dc].expect("row link exists")
                } else if r != dr {
                    col_port[here][dr].expect("column link exists")
                } else {
                    eject_port
                };
                b.set_route(router_at[here], term, port);
            }
        }
    };
    for (i, att) in tile_terminals.iter().enumerate() {
        route_to(&mut b, att.terminal, att.out_port, i % cols, i / cols);
    }
    for (k, att) in mc_terminals.iter().enumerate() {
        let tile = mc_attach[k];
        route_to(&mut b, att.terminal, att.out_port, tile % cols, tile / cols);
    }

    TiledNetwork {
        network: b.build(),
        tile_terminals: tile_terminals.iter().map(|a| a.terminal).collect(),
        mc_terminals: mc_terminals.iter().map(|a| a.terminal).collect(),
        cols,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MessageClass;

    #[test]
    fn paper_config_port_counts() {
        let net = build_fbfly(&FbflySpec::paper_64());
        for r in 0..64 {
            let router = net.network.router(RouterId(r as u16));
            // 14 network + 1 terminal (+1 MC on four edge routers).
            assert!(router.num_in_ports() == 15 || router.num_in_ports() == 16);
        }
    }

    #[test]
    fn at_most_two_hops_corner_to_corner() {
        let mut net = build_fbfly(&FbflySpec::paper_64());
        let t0 = net.tile_terminals[0];
        let t63 = net.tile_terminals[63];
        net.network.inject(t0, t63, MessageClass::Request, 0, 1);
        let mut lat = None;
        for _ in 0..100 {
            net.network.tick();
            if let Some(d) = net.network.poll(t63) {
                lat = Some(d.latency());
                break;
            }
        }
        // Two 7-tile hops (3-stage router + 4-cycle link each) + ejection
        // (3 + 1): 7 + 7 + 4 = 18.
        assert_eq!(lat, Some(18));
    }

    #[test]
    fn nearer_pairs_are_faster_than_mesh() {
        let mut fb = build_fbfly(&FbflySpec::paper_64());
        let src = fb.tile_terminals[0];
        let dst = fb.tile_terminals[36]; // (4,4): 8 mesh hops away
        fb.network.inject(src, dst, MessageClass::Request, 0, 1);
        let mut lat = None;
        for _ in 0..100 {
            fb.network.tick();
            if let Some(d) = fb.network.poll(dst) {
                lat = Some(d.latency());
                break;
            }
        }
        // Mesh would take (8 hops + eject) * 3 = 27 cycles; FBfly two hops.
        assert!(lat.unwrap() < 20, "fbfly latency {lat:?} should beat mesh");
    }

    #[test]
    fn fbfly_routes_take_at_most_two_hops() {
        let net = build_fbfly(&FbflySpec::paper_64());
        let hops = net.network.validate_routes();
        for (s, row) in hops.iter().enumerate().take(64) {
            for (d, &h) in row.iter().enumerate().take(64) {
                assert!(h <= 2, "t{s}→t{d} took {h} hops");
            }
        }
    }

    #[test]
    fn all_pairs_deliver_16_tiles() {
        let spec = FbflySpec {
            cols: 4,
            rows: 4,
            ..FbflySpec::paper_64()
        };
        let mut net = build_fbfly(&spec);
        let terminals = net.tile_terminals.clone();
        for (i, &src) in terminals.iter().enumerate() {
            for &dst in &terminals {
                if src != dst {
                    net.network
                        .inject(src, dst, MessageClass::Response, 64, i as u64);
                }
            }
        }
        assert!(net.network.run_until_drained(50_000));
        net.network.check_invariants();
        let got: usize = terminals
            .iter()
            .map(|&t| {
                let mut n = 0;
                while net.network.poll(t).is_some() {
                    n += 1;
                }
                n
            })
            .sum();
        assert_eq!(got, 16 * 15);
    }
}
