//! The NOC-Out organization (Fig. 5).
//!
//! LLC tiles sit in a single row across the centre of the die; core tiles
//! fill the regions above and below. Each column-half of cores feeds its
//! column's LLC tile through a **reduction tree** (a chain of buffered
//! 2-input muxes, one per core row) and receives responses and snoops
//! through a **dispersion tree** (a chain of buffered demuxes). The LLC
//! tiles are fully connected by a 1-D flattened butterfly; memory channels
//! attach through dedicated ports on the edge LLC routers. There is no
//! direct core-to-core connectivity — all traffic flows through the LLC
//! region (§4).

use crate::network::NetworkBuilder;
use crate::router::RouterConfig;
use crate::types::{RouterId, TerminalId};
use serde::{Deserialize, Serialize};

use super::{credit_round_trip_depth, link_delay_for_mm, NOCOUT_TILE_MM};

/// Parameters of a NOC-Out network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocOutSpec {
    /// LLC columns (and LLC tiles; 8 in the paper).
    pub columns: usize,
    /// Core rows on each side of the LLC row (4 in the paper → 64 cores).
    pub rows_per_side: usize,
    /// Cores sharing each tree node's local port (§7.1 concentration;
    /// 1 in the baseline).
    pub concentration: usize,
    /// Link (flit) width in bits.
    pub link_width_bits: u32,
    /// Core tile pitch in millimetres.
    pub tile_mm: f64,
    /// Number of memory-controller terminals on the edge LLC routers.
    pub num_memory_channels: usize,
    /// §7.1 express links: insert skip-two links into the reduction and
    /// dispersion trees so tall trees approach wire-only latency. Only
    /// meaningful with `rows_per_side ≥ 3`.
    pub express_links: bool,
    /// §7.1 LLC scaling: rows of LLC tiles (1 in the baseline; 2 extends
    /// the LLC butterfly to two dimensions). North-side trees feed row 0,
    /// south-side trees feed the last row.
    pub llc_rows: usize,
}

impl NocOutSpec {
    /// The paper's 64-core configuration: 8 columns × 4 rows × 2 sides.
    pub fn paper_64() -> Self {
        NocOutSpec {
            columns: 8,
            rows_per_side: 4,
            concentration: 1,
            link_width_bits: 128,
            tile_mm: NOCOUT_TILE_MM,
            num_memory_channels: 4,
            express_links: false,
            llc_rows: 1,
        }
    }

    /// Number of LLC tiles.
    pub fn llc_tiles(&self) -> usize {
        self.columns * self.llc_rows
    }

    /// Total number of cores.
    pub fn cores(&self) -> usize {
        self.columns * self.rows_per_side * 2 * self.concentration
    }
}

/// A built NOC-Out network with its terminal maps.
#[derive(Debug)]
pub struct NocOutNetwork {
    /// The underlying flit-level network.
    pub network: crate::network::Network,
    /// Core terminals, ordered side-major (all north-side cores, then all
    /// south-side), then column-major, then row (row 0 farthest from the
    /// LLC), then concentration slot.
    pub core_terminals: Vec<TerminalId>,
    /// One terminal per LLC tile (column order). Each tile holds the
    /// column's LLC banks and directory slice.
    pub llc_terminals: Vec<TerminalId>,
    /// Memory-controller terminals on the edge LLC routers.
    pub mc_terminals: Vec<TerminalId>,
    /// For each core (same order as `core_terminals`), its LLC column.
    pub core_column: Vec<usize>,
    /// The spec this network was built from.
    pub spec: NocOutSpec,
}

impl NocOutNetwork {
    /// Number of reduction-tree hops from a core to its LLC router
    /// (1 = adjacent).
    pub fn core_depth(&self, core: usize) -> usize {
        let per_side = self.spec.columns * self.spec.rows_per_side * self.spec.concentration;
        let within = core % per_side;
        let row = (within / self.spec.concentration) % self.spec.rows_per_side;
        self.spec.rows_per_side - row
    }
}

/// Builds a NOC-Out network per `spec`.
///
/// # Examples
///
/// ```
/// use nocout_noc::topology::nocout::{build_nocout, NocOutSpec};
///
/// let n = build_nocout(&NocOutSpec::paper_64());
/// assert_eq!(n.core_terminals.len(), 64);
/// assert_eq!(n.llc_terminals.len(), 8);
/// assert_eq!(n.mc_terminals.len(), 4);
/// ```
pub fn build_nocout(spec: &NocOutSpec) -> NocOutNetwork {
    assert!(spec.columns >= 1 && spec.rows_per_side >= 1 && spec.concentration >= 1);
    assert!(spec.llc_rows >= 1 && spec.llc_rows <= 2, "LLC scales to two rows (§7.1)");
    let mut b = NetworkBuilder::new(spec.link_width_bits);
    let tree_cfg = RouterConfig::tree_node();
    let llc_cfg = RouterConfig::fbfly(5);
    let mm = spec.tile_mm;
    let tree_delay = link_delay_for_mm(mm);

    // LLC routers: a row per `llc_rows`, `columns` wide, row-major.
    let llc_routers: Vec<RouterId> = (0..spec.columns * spec.llc_rows)
        .map(|_| b.add_router(llc_cfg))
        .collect();
    let llc_at = |col: usize, row: usize| llc_routers[row * spec.columns + col];

    // Flattened butterfly across the LLC region: full connectivity along
    // each row, and along each column when the butterfly is 2-D (§7.1).
    let fb_link = |b: &mut NetworkBuilder, a: RouterId, c: RouterId, dist: usize| {
        let link_mm = dist.max(1) as f64 * mm;
        let delay = link_delay_for_mm(link_mm);
        let depth = credit_round_trip_depth(llc_cfg.pipeline_delay, delay);
        b.add_link_with_depth(a, c, delay, link_mm as f32, depth);
    };
    for row in 0..spec.llc_rows {
        for a in 0..spec.columns {
            for c in 0..spec.columns {
                if a != c {
                    fb_link(&mut b, llc_at(a, row), llc_at(c, row), a.abs_diff(c));
                }
            }
        }
    }
    for col in 0..spec.columns {
        for a in 0..spec.llc_rows {
            for c in 0..spec.llc_rows {
                if a != c {
                    fb_link(&mut b, llc_at(col, a), llc_at(col, c), a.abs_diff(c));
                }
            }
        }
    }

    // Trees. Core ordering: side-major, column, row (0 = farthest), slot.
    let mut core_nodes: Vec<(RouterId, RouterId)> = Vec::new(); // (reduction, dispersion) per core
    let mut core_column = Vec::new();
    for side in 0..2 {
        // North trees terminate at the first LLC row, south at the last.
        let llc_row = if side == 0 { 0 } else { spec.llc_rows - 1 };
        for col in 0..spec.columns {
            let llc_router = llc_at(col, llc_row);
            // Reduction chain: red[0] (farthest) → ... → red[last] → LLC.
            let red: Vec<RouterId> = (0..spec.rows_per_side)
                .map(|_| b.add_router(tree_cfg))
                .collect();
            // Network in-port FIRST on every node so static priority
            // favours packets already in the tree (§4.1).
            for d in 1..spec.rows_per_side {
                b.add_link(red[d - 1], red[d], tree_delay, mm as f32);
            }
            b.add_link(
                red[spec.rows_per_side - 1],
                llc_router,
                tree_delay,
                mm as f32,
            );
            // Dispersion chain: LLC → disp[last] → ... → disp[0]. The first
            // link is fed by the 3-stage LLC router, so its buffer must
            // cover that longer credit round trip to stream without
            // bubbles; node-to-node links keep the shallow tree depth.
            let disp: Vec<RouterId> = (0..spec.rows_per_side)
                .map(|_| b.add_router(tree_cfg))
                .collect();
            b.add_link_with_depth(
                llc_router,
                disp[spec.rows_per_side - 1],
                tree_delay,
                mm as f32,
                credit_round_trip_depth(llc_cfg.pipeline_delay, tree_delay),
            );
            for d in (1..spec.rows_per_side).rev() {
                b.add_link(disp[d], disp[d - 1], tree_delay, mm as f32);
            }
            // §7.1 express links: skip channels let packets from the tall
            // end of the tree bypass intermediate muxes. A two-tile span
            // still fits in one cycle at 32 nm, which is the whole
            // attraction; tall trees also get four-tile skips (one cycle
            // as well — 7 mm at 4 mm/cycle rounds up to 2, so those cost
            // 2 cycles for 4 hops, still a 2× win).
            if spec.express_links && spec.rows_per_side >= 3 {
                let skip2_mm = 2.0 * mm;
                let skip2_delay = link_delay_for_mm(skip2_mm);
                for d in 0..spec.rows_per_side - 2 {
                    b.add_link(red[d], red[d + 2], skip2_delay, skip2_mm as f32);
                    b.add_link(disp[d + 2], disp[d], skip2_delay, skip2_mm as f32);
                }
                if spec.rows_per_side >= 6 {
                    let skip4_mm = 4.0 * mm;
                    let skip4_delay = link_delay_for_mm(skip4_mm);
                    for d in (0..spec.rows_per_side - 4).step_by(4) {
                        b.add_link(red[d], red[d + 4], skip4_delay, skip4_mm as f32);
                        b.add_link(disp[d + 4], disp[d], skip4_delay, skip4_mm as f32);
                    }
                }
            }
            for row in 0..spec.rows_per_side {
                for _slot in 0..spec.concentration {
                    core_nodes.push((red[row], disp[row]));
                    core_column.push(col);
                }
            }
        }
    }
    // Core terminals: inject into the reduction node, eject from the
    // dispersion node (added after all links so the network port has
    // index 0 on every tree node).
    let core_terminals: Vec<TerminalId> = core_nodes
        .iter()
        .map(|&(red, disp)| b.add_terminal_split(red, disp).terminal)
        .collect();

    let llc_terminals: Vec<TerminalId> = llc_routers
        .iter()
        .map(|&r| b.add_terminal(r).terminal)
        .collect();

    // Memory channels alternate between the two edge LLC routers, matching
    // Fig. 5's placement on the left and right die edges (cycling over
    // LLC rows when the butterfly is 2-D).
    let mc_terminals: Vec<TerminalId> = (0..spec.num_memory_channels)
        .map(|k| {
            let row = (k / 2) % spec.llc_rows;
            let col = if k % 2 == 0 { 0 } else { spec.columns - 1 };
            b.add_terminal(llc_at(col, row)).terminal
        })
        .collect();

    // Unique/shortest paths throughout (chains plus a fully-connected row):
    // BFS over hop delays produces exactly the intended routes.
    b.compute_routes_bfs();

    NocOutNetwork {
        network: b.build(),
        core_terminals,
        llc_terminals,
        mc_terminals,
        core_column,
        spec: *spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MessageClass;

    #[test]
    fn builds_paper_network() {
        let n = build_nocout(&NocOutSpec::paper_64());
        // 8 LLC routers + 2 sides × 8 columns × (4 reduction + 4 dispersion).
        assert_eq!(n.network.num_routers(), 8 + 2 * 8 * 8);
        assert_eq!(n.network.num_terminals(), 64 + 8 + 4);
    }

    fn first_delivery_latency(
        net: &mut crate::network::Network,
        dst: TerminalId,
        max: u64,
    ) -> Option<u64> {
        for _ in 0..max {
            net.tick();
            if let Some(d) = net.poll(dst) {
                return Some(d.latency());
            }
        }
        None
    }

    #[test]
    fn core_column_map_is_column_major() {
        let n = build_nocout(&NocOutSpec::paper_64());
        assert_eq!(n.core_column[3], 0);
        assert_eq!(n.core_column[4], 1);
        assert_eq!(n.core_column[31], 7);
        // South side repeats the column pattern.
        assert_eq!(n.core_column[32], 0);
    }

    #[test]
    fn core_to_own_llc_single_cycle_hops() {
        let mut n = build_nocout(&NocOutSpec::paper_64());
        // North side, column 0: cores 0..4, row 3 adjacent to the LLC.
        let adjacent = n.core_terminals[3];
        let farthest = n.core_terminals[0];
        let llc = n.llc_terminals[0];

        n.network.inject(adjacent, llc, MessageClass::Request, 0, 1);
        let lat_adj = first_delivery_latency(&mut n.network, llc, 100).unwrap();
        n.network.inject(farthest, llc, MessageClass::Request, 0, 2);
        let lat_far = first_delivery_latency(&mut n.network, llc, 100).unwrap();
        // One tree hop per node at 1 cycle each; LLC ejection costs the
        // 3-stage LLC router pipeline + 1-cycle link.
        assert_eq!(lat_adj, 1 + 4);
        assert_eq!(lat_far, 4 + 4);
        assert_eq!(lat_far - lat_adj, 3, "three extra tree hops at 1 cycle each");
    }

    #[test]
    fn llc_to_core_via_dispersion() {
        let mut n = build_nocout(&NocOutSpec::paper_64());
        let core = n.core_terminals[0]; // farthest, column 0 north
        let llc = n.llc_terminals[0];
        n.network.inject(llc, core, MessageClass::Response, 64, 9);
        let lat = first_delivery_latency(&mut n.network, core, 200).unwrap();
        // LLC router (3+1) + 3 tree hops + eject 1 + 4 body flits.
        assert_eq!(lat, 4 + 3 + 1 + 4);
    }

    #[test]
    fn cross_column_goes_through_llc_butterfly() {
        let mut n = build_nocout(&NocOutSpec::paper_64());
        let core_col0 = n.core_terminals[3];
        let llc_col7 = n.llc_terminals[7];
        n.network
            .inject(core_col0, llc_col7, MessageClass::Request, 0, 3);
        let lat = first_delivery_latency(&mut n.network, llc_col7, 200).unwrap();
        // Tree (1) + LLC router 0 (3 + 4-cycle 7-tile link) + eject (3+1).
        assert_eq!(lat, 1 + 7 + 4);
    }

    #[test]
    fn core_to_core_has_no_direct_path() {
        // All core-to-core traffic must transit the LLC region: latency from
        // a core to its neighbouring core is at least the round trip through
        // the column's LLC router.
        let mut n = build_nocout(&NocOutSpec::paper_64());
        let a = n.core_terminals[2];
        let bt = n.core_terminals[3];
        n.network.inject(a, bt, MessageClass::Response, 0, 4);
        let lat = first_delivery_latency(&mut n.network, bt, 200).unwrap();
        // Down the reduction tree (2 hops) + LLC router (3+1) + eject (1):
        // at least 7 cycles even though the cores are physically adjacent.
        assert!(lat >= 7, "got {lat}; must round-trip through the LLC row");
    }

    #[test]
    fn mc_reachable_from_everywhere() {
        let mut n = build_nocout(&NocOutSpec::paper_64());
        let mcs = n.mc_terminals.clone();
        for (i, &core) in n.core_terminals.clone().iter().enumerate() {
            n.network
                .inject(core, mcs[i % mcs.len()], MessageClass::Request, 0, i as u64);
        }
        for &llc in &n.llc_terminals.clone() {
            for &mc in &mcs {
                n.network.inject(llc, mc, MessageClass::Request, 0, 0);
                n.network.inject(mc, llc, MessageClass::Response, 64, 0);
            }
        }
        assert!(n.network.run_until_drained(10_000));
        n.network.check_invariants();
    }

    #[test]
    fn all_cores_to_all_llc_drain() {
        let mut n = build_nocout(&NocOutSpec::paper_64());
        for (i, &core) in n.core_terminals.clone().iter().enumerate() {
            for &llc in &n.llc_terminals.clone() {
                n.network
                    .inject(core, llc, MessageClass::Request, 0, i as u64);
                n.network
                    .inject(llc, core, MessageClass::Response, 64, i as u64);
            }
        }
        assert!(n.network.run_until_drained(100_000));
        n.network.check_invariants();
    }

    #[test]
    fn concentration_doubles_cores() {
        let spec = NocOutSpec {
            concentration: 2,
            ..NocOutSpec::paper_64()
        };
        let n = build_nocout(&spec);
        assert_eq!(n.core_terminals.len(), 128);
        // Same router count as the baseline: concentration shares nodes.
        assert_eq!(n.network.num_routers(), 8 + 2 * 8 * 8);
    }

    #[test]
    fn express_links_cut_tall_tree_latency() {
        // Eight rows per side (128 cores), with and without express links.
        let tall = NocOutSpec {
            rows_per_side: 8,
            ..NocOutSpec::paper_64()
        };
        let mut plain = build_nocout(&tall);
        let mut express = build_nocout(&NocOutSpec {
            express_links: true,
            ..tall
        });
        let measure = |n: &mut NocOutNetwork| {
            let core = n.core_terminals[0]; // farthest from the LLC
            let llc = n.llc_terminals[0];
            n.network.inject(core, llc, MessageClass::Request, 0, 1);
            first_delivery_latency(&mut n.network, llc, 200).unwrap()
        };
        let lp = measure(&mut plain);
        let le = measure(&mut express);
        assert!(
            le + 2 < lp,
            "express links must bypass nodes: plain {lp}, express {le}"
        );
    }

    #[test]
    fn express_links_leave_all_cores_reachable() {
        let spec = NocOutSpec {
            rows_per_side: 8,
            express_links: true,
            ..NocOutSpec::paper_64()
        };
        let mut n = build_nocout(&spec);
        for (i, &core) in n.core_terminals.clone().iter().enumerate() {
            let llc = n.llc_terminals[i % 8];
            n.network.inject(core, llc, MessageClass::Request, 0, i as u64);
            n.network.inject(llc, core, MessageClass::Response, 64, i as u64);
        }
        assert!(n.network.run_until_drained(200_000));
        n.network.check_invariants();
    }

    #[test]
    fn two_dimensional_llc_butterfly() {
        let spec = NocOutSpec {
            llc_rows: 2,
            ..NocOutSpec::paper_64()
        };
        let n = build_nocout(&spec);
        assert_eq!(n.llc_terminals.len(), 16);
        assert_eq!(spec.llc_tiles(), 16);
        // Cross-corner LLC traffic traverses at most a row hop and a
        // column hop.
        let mut n = n;
        let a = n.llc_terminals[0];
        let bterm = n.llc_terminals[15];
        n.network.inject(a, bterm, MessageClass::Request, 0, 9);
        let lat = first_delivery_latency(&mut n.network, bterm, 200).unwrap();
        assert!(lat <= 20, "2-D LLC butterfly too slow: {lat}");
    }

    #[test]
    fn two_row_llc_serves_both_sides() {
        let spec = NocOutSpec {
            llc_rows: 2,
            ..NocOutSpec::paper_64()
        };
        let mut n = build_nocout(&spec);
        // North core (side 0) and south core (side 1) both reach both rows.
        let north = n.core_terminals[0];
        let south = n.core_terminals[32];
        for &core in &[north, south] {
            for &llc in &n.llc_terminals.clone() {
                n.network.inject(core, llc, MessageClass::Request, 0, 0);
            }
        }
        assert!(n.network.run_until_drained(50_000));
        n.network.check_invariants();
    }

    #[test]
    fn all_routes_validate_without_loops() {
        for spec in [
            NocOutSpec::paper_64(),
            NocOutSpec {
                express_links: true,
                rows_per_side: 8,
                ..NocOutSpec::paper_64()
            },
            NocOutSpec {
                llc_rows: 2,
                ..NocOutSpec::paper_64()
            },
        ] {
            let n = build_nocout(&spec);
            let hops = n.network.validate_routes();
            // Every pair routed; tree cores reach the far LLC in at most
            // rows + 1 (fbfly) + rows hops.
            let max = hops.iter().flatten().max().copied().unwrap();
            assert!(max <= (2 * spec.rows_per_side + 2) as u32, "max hops {max}");
        }
    }

    #[test]
    fn core_depth_accessor() {
        let n = build_nocout(&NocOutSpec::paper_64());
        assert_eq!(n.core_depth(0), 4); // farthest
        assert_eq!(n.core_depth(3), 1); // adjacent
    }
}
