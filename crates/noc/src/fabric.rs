//! The [`Fabric`] abstraction: anything that can carry protocol packets
//! between terminals.
//!
//! Two implementations exist:
//!
//! * [`crate::network::Network`] — the detailed flit-level model used for
//!   the main evaluation (mesh, flattened butterfly, NOC-Out),
//! * [`crate::latency::LatencyFabric`] — a contention-free analytic model
//!   used for Fig. 1's "Ideal" (wire-delay-only) and zero-load mesh
//!   fabrics, where the paper explicitly does not model contention.

use crate::packet::Delivery;
use crate::stats::NetStats;
use crate::types::{MessageClass, TerminalId};
use nocout_sim::Cycle;

/// The fabric's next scheduled activity, used by the chip model to decide
/// whether it may fast-forward through globally idle cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextEvent {
    /// Internal state (buffered flits, queued injections) can change every
    /// cycle: the fabric must be ticked normally.
    EveryCycle,
    /// Nothing is in flight: ticks are no-ops until the next injection.
    Idle,
    /// Nothing can change strictly before this cycle; the caller may
    /// [`Fabric::skip_idle`] up to it and must tick normally from it on.
    At(Cycle),
}

/// A packet transport between terminals, advanced one cycle at a time.
///
/// The memory system and cores interact with the interconnect exclusively
/// through this trait, which is what lets the experiment harness swap
/// organizations without touching the protocol code.
pub trait Fabric {
    /// Queues a packet with `payload_bytes` of data (header is added and
    /// serialization into flits happens according to the fabric's link
    /// width).
    fn inject(
        &mut self,
        src: TerminalId,
        dst: TerminalId,
        class: MessageClass,
        payload_bytes: u32,
        token: u64,
    );

    /// Advances the fabric by one cycle.
    fn tick(&mut self);

    /// Takes the next delivered packet at `terminal`, if any.
    fn poll(&mut self, terminal: TerminalId) -> Option<Delivery>;

    /// Pops a terminal that has undelivered packets, if any. The caller
    /// is expected to drain it with [`Fabric::poll`]; the terminal
    /// reappears when a later packet arrives for it. Lets clients visit
    /// only busy terminals instead of scanning all of them every cycle.
    fn take_ready_terminal(&mut self) -> Option<TerminalId>;

    /// Current fabric cycle.
    fn now(&self) -> Cycle;

    /// When the fabric next needs a normal tick (see [`NextEvent`]).
    fn next_event(&self) -> NextEvent;

    /// Advances the clock by `delta` cycles without per-cycle work. Only
    /// valid when [`Fabric::next_event`] reported [`NextEvent::Idle`], or
    /// [`NextEvent::At`] a cycle at least `delta` cycles away — i.e. the
    /// skipped ticks are provably no-ops.
    fn skip_idle(&mut self, delta: u64);

    /// Accumulated statistics.
    fn stats(&self) -> &NetStats;

    /// Resets statistics at the warmup/measurement boundary.
    fn reset_stats(&mut self);

    /// Link width in bits.
    fn link_width_bits(&self) -> u32;

    /// Packets currently in flight (including injection queues).
    fn packets_in_flight(&self) -> usize;
}

impl Fabric for crate::network::Network {
    fn inject(
        &mut self,
        src: TerminalId,
        dst: TerminalId,
        class: MessageClass,
        payload_bytes: u32,
        token: u64,
    ) {
        crate::network::Network::inject(self, src, dst, class, payload_bytes, token);
    }

    fn tick(&mut self) {
        crate::network::Network::tick(self);
    }

    fn poll(&mut self, terminal: TerminalId) -> Option<Delivery> {
        crate::network::Network::poll(self, terminal)
    }

    fn take_ready_terminal(&mut self) -> Option<TerminalId> {
        crate::network::Network::take_ready_terminal(self)
    }

    fn now(&self) -> Cycle {
        crate::network::Network::now(self)
    }

    fn next_event(&self) -> NextEvent {
        crate::network::Network::next_event(self)
    }

    fn skip_idle(&mut self, delta: u64) {
        crate::network::Network::skip_idle(self, delta);
    }

    fn stats(&self) -> &NetStats {
        crate::network::Network::stats(self)
    }

    fn reset_stats(&mut self) {
        crate::network::Network::reset_stats(self);
    }

    fn link_width_bits(&self) -> u32 {
        crate::network::Network::link_width_bits(self)
    }

    fn packets_in_flight(&self) -> usize {
        crate::network::Network::packets_in_flight(self)
    }
}
