//! Flit-level, cycle-driven network-on-chip simulator for the NOC-Out
//! reproduction.
//!
//! This crate models every interconnect evaluated in *NOC-Out:
//! Microarchitecting a Scale-Out Processor* (MICRO 2012):
//!
//! * the tiled **mesh** baseline ([`topology::mesh`]),
//! * the tiled **flattened butterfly** ([`topology::fbfly`]),
//! * **NOC-Out** itself — reduction and dispersion trees feeding a
//!   centralized LLC row linked by a 1-D flattened butterfly
//!   ([`topology::nocout`]),
//! * the contention-free **ideal** fabrics of Fig. 1 ([`topology::ideal`]).
//!
//! The common machinery is a table-routed, input-buffered wormhole network
//! with one virtual channel per protocol message class and credit-based
//! flow control ([`network::Network`]); clients program against the
//! [`fabric::Fabric`] trait so organizations are interchangeable.
//!
//! # Examples
//!
//! Send a request across the paper's 64-core NOC-Out fabric:
//!
//! ```
//! use nocout_noc::fabric::Fabric;
//! use nocout_noc::topology::nocout::{build_nocout, NocOutSpec};
//! use nocout_noc::types::MessageClass;
//!
//! let mut n = build_nocout(&NocOutSpec::paper_64());
//! let core = n.core_terminals[0];
//! let llc = n.llc_terminals[0];
//! n.network.inject(core, llc, MessageClass::Request, 0, 1);
//! assert!(n.network.run_until_drained(100));
//! assert!(n.network.poll(llc).is_some());
//! ```

pub mod fabric;
pub mod flit;
pub mod latency;
pub mod network;
pub mod packet;
pub mod rng_traffic;
pub mod router;
pub mod stats;
pub mod topology;
pub mod types;
pub(crate) mod wheel;

pub use fabric::Fabric;
pub use network::{Network, NetworkBuilder, RouterView};
pub use packet::{Delivery, Packet};
pub use router::{ArbiterKind, RouterConfig};
pub use stats::NetStats;
pub use types::{MessageClass, RouterId, TerminalId};
