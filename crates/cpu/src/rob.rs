//! The reorder buffer as a fixed-capacity ring, with a line-indexed
//! wakeup structure threaded through its slots.
//!
//! The ROB is the hottest structure in the simulator: every core cycle
//! retires from its head and dispatches into its tail, and every data
//! fill used to *scan all 64 entries* looking for waiters on the filled
//! line. This module replaces the `VecDeque<RobEntry>` with:
//!
//! * [`RingRob`] — a fixed array of `rob_entries` slots and two indices.
//!   A slot is one `(ready_at, next_waiter)` pair; "waiting on data" is
//!   the sentinel completion cycle [`WAITING`], so the retire fast path
//!   is a single integer compare per entry (no enum discriminant, no
//!   `VecDeque` wraparound bookkeeping on both push and pop).
//! * [`WakeupIndex`] — per-line waiter chains, threaded *intrusively*
//!   through the ROB slots' `next_waiter` links. A fill resolves its
//!   line to one chain and wakes exactly the entries on it; entries
//!   waiting on other lines are never visited. The index also owns the
//!   outstanding-data count (chains are the only source of waiting
//!   entries), so the core's MLP bookkeeping cannot drift from the
//!   structure that defines it.
//!
//! Waiting slots never retire (retirement stops at a waiting head), so
//! a chained slot index stays valid until its fill arrives — the links
//! need no invalidation protocol. `tests/proptest_core.rs` pins the
//! ring's behaviour against a `VecDeque` model of the pre-refactor ROB.

use nocout_sim::Cycle;

/// Chain terminator / "no slot" marker for intrusive links.
pub const NO_SLOT: u32 = u32::MAX;

/// Sentinel completion cycle marking a slot as waiting for a data fill.
/// Larger than any reachable simulation cycle, so the retire fast path's
/// `ready_at <= now` test rejects waiting slots with no extra branch.
pub const WAITING: u64 = u64::MAX;

/// One reorder-buffer slot.
#[derive(Debug, Clone, Copy)]
pub struct RobSlot {
    /// Completion cycle, or [`WAITING`] while a data fill is pending.
    ready_at: u64,
    /// Next slot waiting on the same line ([`NO_SLOT`] ends the chain).
    next_waiter: u32,
}

impl RobSlot {
    /// Whether the slot waits on a data fill.
    #[inline]
    pub fn is_waiting(&self) -> bool {
        self.ready_at == WAITING
    }

    /// The completion cycle (meaningless while waiting).
    #[inline]
    pub fn ready_at(&self) -> Cycle {
        Cycle(self.ready_at)
    }

    /// Whether the slot's instruction can retire at `now`.
    #[inline]
    pub fn retirable(&self, now: Cycle) -> bool {
        self.ready_at <= now.raw()
    }
}

/// Fixed-capacity ring-buffer reorder buffer.
///
/// # Examples
///
/// ```
/// use nocout_cpu::rob::RingRob;
/// use nocout_sim::Cycle;
///
/// let mut rob = RingRob::new(4);
/// rob.push_ready(Cycle(5));
/// let w = rob.push_waiting();
/// assert!(!rob.front().unwrap().retirable(Cycle(3)));
/// assert!(rob.front().unwrap().retirable(Cycle(5)));
/// rob.pop_front();
/// assert!(rob.front().unwrap().is_waiting());
/// rob.wake(w, Cycle(9));
/// assert!(rob.front().unwrap().retirable(Cycle(9)));
/// ```
#[derive(Debug)]
pub struct RingRob {
    slots: Box<[RobSlot]>,
    /// Physical index of the oldest entry.
    head: u32,
    len: u32,
}

impl RingRob {
    /// Creates an empty ROB of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or does not fit the intrusive links.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs at least one slot");
        assert!((capacity as u64) < NO_SLOT as u64, "capacity exceeds link width");
        RingRob {
            slots: vec![
                RobSlot {
                    ready_at: 0,
                    next_waiter: NO_SLOT,
                };
                capacity
            ]
            .into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the ROB holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether dispatch must stall.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len as usize == self.slots.len()
    }

    #[inline]
    fn tail_slot(&self) -> u32 {
        let cap = self.slots.len() as u32;
        let t = self.head + self.len;
        if t >= cap {
            t - cap
        } else {
            t
        }
    }

    /// Appends an entry completing at `at`; returns its slot index.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the ROB is full — dispatch checks first.
    #[inline]
    pub fn push_ready(&mut self, at: Cycle) -> u32 {
        debug_assert!(!self.is_full(), "push into a full ROB");
        let t = self.tail_slot();
        self.slots[t as usize] = RobSlot {
            ready_at: at.raw(),
            next_waiter: NO_SLOT,
        };
        self.len += 1;
        t
    }

    /// Appends an entry waiting on a data fill; returns its slot index
    /// (for enqueueing on a [`WakeupIndex`] chain).
    #[inline]
    pub fn push_waiting(&mut self) -> u32 {
        debug_assert!(!self.is_full(), "push into a full ROB");
        let t = self.tail_slot();
        self.slots[t as usize] = RobSlot {
            ready_at: WAITING,
            next_waiter: NO_SLOT,
        };
        self.len += 1;
        t
    }

    /// The oldest entry, if any.
    #[inline]
    pub fn front(&self) -> Option<&RobSlot> {
        if self.len == 0 {
            None
        } else {
            Some(&self.slots[self.head as usize])
        }
    }

    /// Retires the oldest entry.
    ///
    /// # Panics
    ///
    /// Panics (debug) if empty or if the head is still waiting.
    #[inline]
    pub fn pop_front(&mut self) {
        debug_assert!(self.len > 0, "pop from an empty ROB");
        debug_assert!(
            !self.slots[self.head as usize].is_waiting(),
            "a waiting entry must not retire"
        );
        self.head += 1;
        if self.head as usize == self.slots.len() {
            self.head = 0;
        }
        self.len -= 1;
    }

    /// Wakes the waiting entry in `slot`: marks it ready at `at` and
    /// returns (and clears) its chain link.
    #[inline]
    pub fn wake(&mut self, slot: u32, at: Cycle) -> u32 {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.is_waiting(), "waking a non-waiting slot");
        s.ready_at = at.raw();
        std::mem::replace(&mut s.next_waiter, NO_SLOT)
    }

    #[inline]
    fn link(&mut self, from: u32, to: u32) {
        debug_assert_eq!(self.slots[from as usize].next_waiter, NO_SLOT);
        self.slots[from as usize].next_waiter = to;
    }
}

/// One per-line waiter chain: `head..tail` threads through ROB slots via
/// their `next_waiter` links.
#[derive(Debug, Clone, Copy)]
struct LineChain {
    line_index: u64,
    head: u32,
    tail: u32,
    count: u32,
}

/// Line-indexed wakeup structure: maps a missing line to the chain of
/// ROB slots waiting on it. The population is bounded by the L1-D MSHR
/// file (one chain per outstanding line miss, ≤ 8), so a linear scan of
/// a dense array beats any keyed container — and iteration never happens
/// at all: fills resolve exactly one chain.
#[derive(Debug)]
pub struct WakeupIndex {
    chains: Vec<LineChain>,
    /// Total waiting entries across all chains — *the* outstanding-data
    /// count (the core's MLP bound reads this; fills subtract whole
    /// chains, so the bookkeeping cannot diverge from the structure).
    waiting: usize,
}

impl WakeupIndex {
    /// Creates an empty index with room for `line_capacity` chains.
    pub fn new(line_capacity: usize) -> Self {
        WakeupIndex {
            chains: Vec::with_capacity(line_capacity),
            waiting: 0,
        }
    }

    /// Total entries waiting across all lines.
    #[inline]
    pub fn waiting(&self) -> usize {
        self.waiting
    }

    /// Distinct lines with waiters (diagnostics).
    pub fn lines(&self) -> usize {
        self.chains.len()
    }

    /// Appends ROB `slot` (already pushed waiting) to the chain for
    /// `line_index`, creating the chain on first use.
    pub fn enqueue(&mut self, line_index: u64, slot: u32, rob: &mut RingRob) {
        self.waiting += 1;
        for c in &mut self.chains {
            if c.line_index == line_index {
                let tail = c.tail;
                c.tail = slot;
                c.count += 1;
                rob.link(tail, slot);
                return;
            }
        }
        self.chains.push(LineChain {
            line_index,
            head: slot,
            tail: slot,
            count: 1,
        });
    }

    /// Resolves a fill for `line_index`: wakes every chained entry at
    /// `at` and returns how many were woken (0 when nothing waited — a
    /// stale fill). The chain's count leaves the outstanding total in
    /// the same step, tying the MLP bookkeeping to the wakeup walk.
    pub fn wake_line(&mut self, line_index: u64, at: Cycle, rob: &mut RingRob) -> usize {
        let Some(pos) = self.chains.iter().position(|c| c.line_index == line_index) else {
            return 0;
        };
        let chain = self.chains.swap_remove(pos);
        let mut slot = chain.head;
        for _ in 0..chain.count {
            slot = rob.wake(slot, at);
        }
        debug_assert_eq!(slot, NO_SLOT, "chain count and links disagree");
        self.waiting -= chain.count as usize;
        chain.count as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_preserves_fifo() {
        let mut rob = RingRob::new(3);
        for round in 0..10u64 {
            rob.push_ready(Cycle(round));
            assert!(rob.front().unwrap().retirable(Cycle(round)));
            rob.pop_front();
        }
        assert!(rob.is_empty());
    }

    #[test]
    fn full_ring_reports_full() {
        let mut rob = RingRob::new(2);
        rob.push_ready(Cycle(1));
        rob.push_waiting();
        assert!(rob.is_full());
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn wake_line_wakes_only_that_line() {
        let mut rob = RingRob::new(8);
        let mut idx = WakeupIndex::new(8);
        let a1 = rob.push_waiting();
        idx.enqueue(100, a1, &mut rob);
        let b1 = rob.push_waiting();
        idx.enqueue(200, b1, &mut rob);
        let a2 = rob.push_waiting();
        idx.enqueue(100, a2, &mut rob);
        assert_eq!(idx.waiting(), 3);
        assert_eq!(idx.lines(), 2);
        assert_eq!(idx.wake_line(100, Cycle(7), &mut rob), 2);
        assert_eq!(idx.waiting(), 1);
        // Line 100's two entries are ready; line 200's still waits.
        assert!(rob.front().unwrap().retirable(Cycle(7)));
        rob.pop_front();
        assert!(rob.front().unwrap().is_waiting());
    }

    #[test]
    fn stale_fill_wakes_nothing() {
        let mut rob = RingRob::new(4);
        let mut idx = WakeupIndex::new(4);
        assert_eq!(idx.wake_line(42, Cycle(1), &mut rob), 0);
        assert_eq!(idx.waiting(), 0);
    }

    #[test]
    fn chain_survives_ring_wraparound() {
        // Waiting entries pushed either side of the physical wrap point
        // stay chained correctly.
        let mut rob = RingRob::new(4);
        let mut idx = WakeupIndex::new(4);
        // Advance head to 3.
        for _ in 0..3 {
            rob.push_ready(Cycle(0));
            rob.pop_front();
        }
        let s1 = rob.push_waiting(); // physical slot 3
        let s2 = rob.push_waiting(); // wraps to physical slot 0
        assert_ne!(s1, s2);
        idx.enqueue(9, s1, &mut rob);
        idx.enqueue(9, s2, &mut rob);
        assert_eq!(idx.wake_line(9, Cycle(5), &mut rob), 2);
        assert!(rob.front().unwrap().retirable(Cycle(5)));
        rob.pop_front();
        assert!(rob.front().unwrap().retirable(Cycle(5)));
    }
}
