//! The instruction-stream interface between cores and workload models.

use nocout_mem::addr::Addr;

/// One dynamic instruction's behaviour, as far as timing is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A non-memory operation completing `latency` cycles after dispatch.
    /// Dependency chains in the workload surface as latencies above 1.
    Alu {
        /// Execution latency in cycles (≥ 1).
        latency: u8,
    },
    /// A data load.
    Load {
        /// Byte address accessed.
        addr: Addr,
        /// Whether this load depends on an earlier outstanding miss and
        /// must wait for all pending data misses to resolve before
        /// dispatch (the mechanism behind the low MLP of scale-out
        /// workloads).
        dependent: bool,
    },
    /// A data store.
    Store {
        /// Byte address accessed.
        addr: Addr,
    },
}

/// A dynamic instruction: its fetch line plus its operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInstr {
    /// The instruction-cache line this instruction is fetched from. When
    /// it differs from the previous instruction's line the core performs
    /// an L1-I access (and stalls fetch on a miss).
    pub fetch_line: Addr,
    /// What the instruction does.
    pub op: Op,
}

/// Capacity of an [`InstrBlock`] in instructions.
///
/// Sized so a refill amortizes the virtual call (and, for generated
/// workloads, the RNG setup) over a few dozen dispatch cycles while the
/// block still fits comfortably in one page of core-local state.
pub const BLOCK_CAP: usize = 64;

const BLOCK_FILL: FetchedInstr = FetchedInstr {
    fetch_line: Addr(0),
    op: Op::Alu { latency: 1 },
};

/// A fixed-capacity block of fetched instructions — the unit in which
/// instructions cross the [`InstructionSource`] trait object.
///
/// The core consumes instructions from its block and calls
/// [`InstructionSource::refill`] only when the block drains, so the
/// per-instruction cost of the delivery path is an indexed read instead
/// of a virtual call.
///
/// # Examples
///
/// ```
/// use nocout_cpu::source::{FetchedInstr, InstrBlock, InstructionSource, Op, ScriptedSource};
/// use nocout_mem::addr::Addr;
///
/// let mut src = ScriptedSource::new(vec![FetchedInstr {
///     fetch_line: Addr(0),
///     op: Op::Alu { latency: 1 },
/// }]);
/// let mut block = InstrBlock::new();
/// let a = block.take(&mut src); // refills transparently
/// assert_eq!(a, src.next_instr());
/// ```
#[derive(Debug, Clone)]
pub struct InstrBlock {
    buf: [FetchedInstr; BLOCK_CAP],
    len: u16,
    pos: u16,
}

impl InstrBlock {
    /// An empty block.
    pub fn new() -> Self {
        InstrBlock {
            buf: [BLOCK_FILL; BLOCK_CAP],
            len: 0,
            pos: 0,
        }
    }

    /// Empties the block (a refill starts here).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.pos = 0;
    }

    /// Appends one instruction.
    ///
    /// # Panics
    ///
    /// Panics if the block is full.
    #[inline]
    pub fn push(&mut self, instr: FetchedInstr) {
        assert!((self.len as usize) < BLOCK_CAP, "block is full");
        self.buf[self.len as usize] = instr;
        self.len += 1;
    }

    /// Whether every slot is filled.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len as usize == BLOCK_CAP
    }

    /// Unconsumed instructions remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        (self.len - self.pos) as usize
    }

    /// The next buffered instruction, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<FetchedInstr> {
        if self.pos == self.len {
            None
        } else {
            let i = self.buf[self.pos as usize];
            self.pos += 1;
            Some(i)
        }
    }

    /// The next instruction of the stream, refilling from `source` when
    /// the block has drained — the only point where the delivery path
    /// crosses the trait object.
    #[inline]
    pub fn take(&mut self, source: &mut dyn InstructionSource) -> FetchedInstr {
        match self.pop() {
            Some(i) => i,
            None => {
                source.refill(self);
                debug_assert!(self.remaining() > 0, "refill must produce instructions");
                self.pop().expect("refilled block is non-empty")
            }
        }
    }
}

impl Default for InstrBlock {
    fn default() -> Self {
        InstrBlock::new()
    }
}

/// Produces the dynamic instruction stream of one hardware context.
///
/// Implemented by the workload models in `nocout-workloads`; the unit tests
/// in this crate use simple scripted sources.
pub trait InstructionSource {
    /// The next dynamic instruction. Must always return (workloads are
    /// infinite request streams).
    fn next_instr(&mut self) -> FetchedInstr;

    /// Refills `block` with the next [`BLOCK_CAP`] instructions of the
    /// stream. Implementations may batch internal work (RNG draws, trace
    /// decoding) but must produce exactly the sequence repeated
    /// [`InstructionSource::next_instr`] calls would — the block-based
    /// delivery path and the per-instruction oracle are differentially
    /// tested against each other on that contract.
    fn refill(&mut self, block: &mut InstrBlock) {
        block.clear();
        while !block.is_full() {
            block.push(self.next_instr());
        }
    }
}

/// A trivial source that loops over a fixed instruction sequence; useful
/// for tests and the quickstart example.
///
/// # Examples
///
/// ```
/// use nocout_cpu::source::{FetchedInstr, InstructionSource, Op, ScriptedSource};
/// use nocout_mem::addr::Addr;
///
/// let mut src = ScriptedSource::new(vec![FetchedInstr {
///     fetch_line: Addr(0),
///     op: Op::Alu { latency: 1 },
/// }]);
/// let a = src.next_instr();
/// let b = src.next_instr();
/// assert_eq!(a, b, "scripted source loops");
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedSource {
    script: Vec<FetchedInstr>,
    pos: usize,
}

impl ScriptedSource {
    /// Creates a looping source over `script`.
    ///
    /// # Panics
    ///
    /// Panics if the script is empty.
    pub fn new(script: Vec<FetchedInstr>) -> Self {
        assert!(!script.is_empty(), "script must be non-empty");
        ScriptedSource { script, pos: 0 }
    }
}

impl InstructionSource for ScriptedSource {
    fn next_instr(&mut self) -> FetchedInstr {
        let i = self.script[self.pos];
        self.pos = (self.pos + 1) % self.script.len();
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_source_loops() {
        let mut s = ScriptedSource::new(vec![
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Alu { latency: 1 },
            },
            FetchedInstr {
                fetch_line: Addr(64),
                op: Op::Load {
                    addr: Addr(0x1000),
                    dependent: false,
                },
            },
        ]);
        let first = s.next_instr();
        let second = s.next_instr();
        let third = s.next_instr();
        assert_ne!(first, second);
        assert_eq!(first, third);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_script_rejected() {
        let _ = ScriptedSource::new(vec![]);
    }

    fn mixed_script() -> Vec<FetchedInstr> {
        (0..7)
            .map(|i| FetchedInstr {
                fetch_line: Addr(i * 64),
                op: match i % 3 {
                    0 => Op::Alu { latency: 1 },
                    1 => Op::Load {
                        addr: Addr(0x1000 + i * 64),
                        dependent: i % 2 == 0,
                    },
                    _ => Op::Store {
                        addr: Addr(0x2000 + i * 64),
                    },
                },
            })
            .collect()
    }

    #[test]
    fn block_take_matches_per_instruction_stream() {
        // Two identically-seeded sources: one drained through a block,
        // one instruction at a time. The consumed sequences must match
        // across several refill boundaries.
        let mut blocked = ScriptedSource::new(mixed_script());
        let mut direct = ScriptedSource::new(mixed_script());
        let mut block = InstrBlock::new();
        for n in 0..(3 * BLOCK_CAP + 5) {
            assert_eq!(block.take(&mut blocked), direct.next_instr(), "instr {n}");
        }
    }

    #[test]
    fn default_refill_fills_to_capacity() {
        let mut src = ScriptedSource::new(mixed_script());
        let mut block = InstrBlock::new();
        src.refill(&mut block);
        assert!(block.is_full());
        assert_eq!(block.remaining(), BLOCK_CAP);
        let first = block.pop().unwrap();
        assert_eq!(first, mixed_script()[0]);
        assert_eq!(block.remaining(), BLOCK_CAP - 1);
    }

    #[test]
    fn cleared_block_is_empty() {
        let mut src = ScriptedSource::new(mixed_script());
        let mut block = InstrBlock::new();
        src.refill(&mut block);
        block.clear();
        assert_eq!(block.remaining(), 0);
        assert!(block.pop().is_none());
    }
}
