//! The instruction-stream interface between cores and workload models.

use nocout_mem::addr::Addr;

/// One dynamic instruction's behaviour, as far as timing is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A non-memory operation completing `latency` cycles after dispatch.
    /// Dependency chains in the workload surface as latencies above 1.
    Alu {
        /// Execution latency in cycles (≥ 1).
        latency: u8,
    },
    /// A data load.
    Load {
        /// Byte address accessed.
        addr: Addr,
        /// Whether this load depends on an earlier outstanding miss and
        /// must wait for all pending data misses to resolve before
        /// dispatch (the mechanism behind the low MLP of scale-out
        /// workloads).
        dependent: bool,
    },
    /// A data store.
    Store {
        /// Byte address accessed.
        addr: Addr,
    },
}

/// A dynamic instruction: its fetch line plus its operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInstr {
    /// The instruction-cache line this instruction is fetched from. When
    /// it differs from the previous instruction's line the core performs
    /// an L1-I access (and stalls fetch on a miss).
    pub fetch_line: Addr,
    /// What the instruction does.
    pub op: Op,
}

/// Produces the dynamic instruction stream of one hardware context.
///
/// Implemented by the workload models in `nocout-workloads`; the unit tests
/// in this crate use simple scripted sources.
pub trait InstructionSource {
    /// The next dynamic instruction. Must always return (workloads are
    /// infinite request streams).
    fn next_instr(&mut self) -> FetchedInstr;
}

/// A trivial source that loops over a fixed instruction sequence; useful
/// for tests and the quickstart example.
///
/// # Examples
///
/// ```
/// use nocout_cpu::source::{FetchedInstr, InstructionSource, Op, ScriptedSource};
/// use nocout_mem::addr::Addr;
///
/// let mut src = ScriptedSource::new(vec![FetchedInstr {
///     fetch_line: Addr(0),
///     op: Op::Alu { latency: 1 },
/// }]);
/// let a = src.next_instr();
/// let b = src.next_instr();
/// assert_eq!(a, b, "scripted source loops");
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedSource {
    script: Vec<FetchedInstr>,
    pos: usize,
}

impl ScriptedSource {
    /// Creates a looping source over `script`.
    ///
    /// # Panics
    ///
    /// Panics if the script is empty.
    pub fn new(script: Vec<FetchedInstr>) -> Self {
        assert!(!script.is_empty(), "script must be non-empty");
        ScriptedSource { script, pos: 0 }
    }
}

impl InstructionSource for ScriptedSource {
    fn next_instr(&mut self) -> FetchedInstr {
        let i = self.script[self.pos];
        self.pos = (self.pos + 1) % self.script.len();
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_source_loops() {
        let mut s = ScriptedSource::new(vec![
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Alu { latency: 1 },
            },
            FetchedInstr {
                fetch_line: Addr(64),
                op: Op::Load {
                    addr: Addr(0x1000),
                    dependent: false,
                },
            },
        ]);
        let first = s.next_instr();
        let second = s.next_instr();
        let third = s.next_instr();
        assert_ne!(first, second);
        assert_eq!(first, third);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_script_rejected() {
        let _ = ScriptedSource::new(vec![]);
    }
}
