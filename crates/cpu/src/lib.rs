//! ARM Cortex-A15-like out-of-order core timing model.
//!
//! Table 1 of the paper: 3-way decode/issue/commit, 64-entry ROB, 16-entry
//! LSQ, 32 KB L1-I and L1-D. The model captures exactly the mechanisms the
//! evaluation depends on:
//!
//! * **fetch stalls on L1-I misses** — the multi-megabyte instruction
//!   footprints of scale-out workloads miss in L1-I and hit in the LLC, so
//!   every L1-I miss exposes the full interconnect round trip,
//! * **bounded memory-level parallelism** — data misses overlap only up to
//!   the LSQ/MSHR bound, and dependent loads serialize, which is why these
//!   workloads are latency- rather than bandwidth-sensitive,
//! * **in-order retirement from a finite ROB** — long-latency loads at the
//!   ROB head stall commit.
//!
//! The core consumes an [`InstructionSource`] (implemented by the workload
//! models) and interacts with the memory system through miss requests and
//! fills orchestrated by the chip model in the `nocout` crate.

pub mod model;
pub mod rob;
pub mod source;

pub use model::{Core, CoreConfig, CoreIdle, CoreStats, MissRequest};
pub use rob::{RingRob, WakeupIndex};
pub use source::{FetchedInstr, InstructionSource, Op};
