//! The out-of-order core pipeline model.

use crate::rob::{RingRob, WakeupIndex};
use crate::source::{FetchedInstr, InstrBlock, InstructionSource, Op};
use nocout_mem::addr::Addr;
use nocout_mem::l1::{L1Access, L1Cache, L1Config};
use nocout_mem::protocol::AccessKind;
use nocout_sim::stats::{Counter, LatencyHist};
use nocout_sim::Cycle;

/// Sentinel line index for "no line" (no resolved fetch line, no stall).
const NO_LINE: u64 = u64::MAX;

/// Core microarchitecture parameters (Table 1 defaults via
/// [`CoreConfig::a15`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Dispatch/retire width.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load/store-queue entries: bounds outstanding data misses.
    pub lsq_entries: usize,
    /// L1 configuration (shared by I and D sides).
    pub l1: L1Config,
}

impl CoreConfig {
    /// ARM Cortex-A15-like: 3-way, 64-entry ROB, 16-entry LSQ, 32 KB L1s.
    pub fn a15() -> Self {
        CoreConfig {
            width: 3,
            rob_entries: 64,
            lsq_entries: 16,
            l1: L1Config::a15(),
        }
    }
}

/// A miss request the core asks the chip model to send to the home LLC
/// tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRequest {
    /// Line address.
    pub line: Addr,
    /// Fetch, load, or store (selects GetS/GetX and the L1 to fill).
    pub kind: AccessKind,
}

/// How a core will behave over the coming cycles if no fill arrives —
/// the contract behind the chip-level idle fast-forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreIdle {
    /// The core is dispatching (or could dispatch) work: it must be
    /// ticked every cycle.
    Busy,
    /// Fetch-stalled with nothing able to retire: every tick until the
    /// next fill only increments stall counters, which
    /// [`Core::fast_forward_stalled`] can apply in bulk.
    Stalled,
    /// Fetch-stalled, but the ROB head completes at the given cycle — the
    /// core is linearly stalled strictly *before* that cycle and must be
    /// ticked normally from it onward.
    StalledUntil(Cycle),
}

/// Per-core statistics.
#[derive(Debug, Default)]
pub struct CoreStats {
    /// Instructions retired (numerator of the paper's performance metric).
    pub retired: Counter,
    /// Cycles observed (denominator).
    pub cycles: Counter,
    /// Cycles with fetch stalled on an L1-I miss.
    pub fetch_stall_cycles: Counter,
    /// Cycles in which nothing retired because the ROB head waited on a
    /// data miss.
    pub mem_stall_cycles: Counter,
    /// L1-I miss requests issued.
    pub ifetch_misses: Counter,
    /// L1-D miss requests issued.
    pub data_misses: Counter,
    /// Total cycles between an L1-I miss stalling fetch and the fill
    /// that cleared it (the interconnect round-trip latency the fetch
    /// engine actually observed, summed over all stalls).
    pub ifetch_fill_wait_cycles: Counter,
    /// Fetch-to-retire latency per [`crate::source::BLOCK_CAP`]-instruction
    /// block: dispatch of instruction `64k` to retirement of instruction
    /// `64k+63`. Purely observational — see `docs/service-level-metrics.md`.
    pub block_latency: LatencyHist,
}

impl CoreStats {
    /// Instructions per cycle over the measured window.
    pub fn ipc(&self) -> f64 {
        if self.cycles.value() == 0 {
            0.0
        } else {
            self.retired.value() as f64 / self.cycles.value() as f64
        }
    }

    /// Resets all counters (warmup boundary).
    pub fn reset(&mut self) {
        *self = CoreStats::default();
    }
}

/// The core: pipeline state plus private L1-I and L1-D.
///
/// Driven by the chip model: [`Core::tick`] advances one cycle and collects
/// miss requests; [`Core::fill_data`]/[`Core::fill_ifetch`] deliver lines;
/// snoops arrive via [`Core::snoop_invalidate`]/[`Core::snoop_downgrade`].
///
/// # Examples
///
/// An all-ALU stream retires at full width once warmed up:
///
/// ```
/// use nocout_cpu::model::{Core, CoreConfig};
/// use nocout_cpu::source::{FetchedInstr, Op, ScriptedSource};
/// use nocout_mem::addr::Addr;
/// use nocout_sim::Cycle;
///
/// let mut core = Core::new(CoreConfig::a15());
/// let mut src = ScriptedSource::new(vec![FetchedInstr {
///     fetch_line: Addr(0),
///     op: Op::Alu { latency: 1 },
/// }]);
/// let mut out = Vec::new();
/// let mut now = Cycle(0);
/// // First tick misses in the empty L1-I.
/// core.tick(now, &mut src, &mut out);
/// assert_eq!(out.len(), 1);
/// core.fill_ifetch(out[0].line, now);
/// for _ in 0..100 {
///     now += 1;
///     out.clear();
///     core.tick(now, &mut src, &mut out);
/// }
/// assert!(core.stats.ipc() > 2.0, "ipc {}", core.stats.ipc());
/// ```
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    l1i: L1Cache,
    l1d: L1Cache,
    /// Fixed-capacity ring-buffer reorder buffer (see [`crate::rob`]).
    rob: RingRob,
    /// Line-indexed wakeup chains threaded through the ROB slots: a data
    /// fill wakes exactly the entries waiting on its line, and the
    /// index's waiting total *is* the outstanding-data (MLP) count.
    wakeup: WakeupIndex,
    /// Resolved line index currently being fetched from (hits in it are
    /// free); [`NO_LINE`] before the first fetch resolves. Holding the
    /// index (not an `Option<Addr>`) makes the per-instruction
    /// line-crossing check a single integer compare.
    fetch_line: u64,
    /// Line/set-base decode of the last L1-I probe — reused when the
    /// same line is re-probed (blocked-retry) so the crossing path does
    /// the tag-array geometry math once per resolved line.
    probe_line: u64,
    probe_set_base: u32,
    /// Fetch stalled on this line index until its fill arrives
    /// ([`NO_LINE`] when fetch is running).
    stall_line: u64,
    /// Cycle the current fetch stall began (fill-latency accounting).
    stall_started: Cycle,
    /// Instruction pulled from the source but not yet dispatched.
    staged: Option<FetchedInstr>,
    /// Buffered instructions from the source: [`Core::tick`] consumes
    /// from here and crosses the `dyn InstructionSource` boundary only
    /// when the block drains.
    block: InstrBlock,
    /// Reusable buffer for the waiter tags an L1 fill releases (the
    /// core does not use the tags; the buffer exists so fills allocate
    /// nothing).
    waiter_scratch: Vec<u64>,
    /// Whether block fetch-to-retire latencies are recorded into
    /// [`CoreStats::block_latency`]. Observational only: with recording
    /// off the cycle-by-cycle architectural state is bit-identical.
    record_tails: bool,
    /// Instructions dispatched since construction (not reset at the
    /// warmup boundary: block mark positions are keyed by absolute
    /// sequence numbers).
    dispatched: u64,
    /// Instructions retired since construction.
    retired_seq: u64,
    /// Dispatch timestamps of in-flight block marks, indexed by
    /// `(sequence / 64) % 4`. The ROB retires in order and holds at most
    /// 64 instructions, so at most two marks are ever in flight.
    block_marks: [Cycle; 4],
    /// Per-core statistics.
    pub stats: CoreStats,
}

impl Core {
    /// Creates an idle core.
    pub fn new(cfg: CoreConfig) -> Self {
        Core {
            cfg,
            l1i: L1Cache::new(cfg.l1),
            l1d: L1Cache::new(cfg.l1),
            rob: RingRob::new(cfg.rob_entries),
            wakeup: WakeupIndex::new(cfg.l1.mshr_capacity),
            fetch_line: NO_LINE,
            probe_line: NO_LINE,
            probe_set_base: 0,
            stall_line: NO_LINE,
            stall_started: Cycle::ZERO,
            staged: None,
            block: InstrBlock::new(),
            waiter_scratch: Vec::with_capacity(cfg.lsq_entries),
            record_tails: true,
            dispatched: 0,
            retired_seq: 0,
            block_marks: [Cycle::ZERO; 4],
            stats: CoreStats::default(),
        }
    }

    /// Enables or disables block fetch-to-retire latency recording
    /// (default on). Recording is observational: toggling it changes no
    /// architectural state, RNG draw, or event, only whether
    /// [`CoreStats::block_latency`] fills in. Toggle only between runs —
    /// marks set while disabled are never recorded.
    pub fn set_tail_recording(&mut self, on: bool) {
        self.record_tails = on;
    }

    /// Marks block boundaries at dispatch: instruction `64k` stamps the
    /// current cycle into the mark ring.
    #[inline]
    fn note_dispatch(&mut self, now: Cycle) {
        if self.dispatched.is_multiple_of(64) && self.record_tails {
            self.block_marks[(self.dispatched / 64 % 4) as usize] = now;
        }
        self.dispatched += 1;
    }

    /// Completes a block at retire: instruction `64k+63` records the
    /// elapsed cycles since its block's dispatch mark.
    #[inline]
    fn note_retire(&mut self, now: Cycle) {
        if self.retired_seq % 64 == 63 && self.record_tails {
            let start = self.block_marks[(self.retired_seq / 64 % 4) as usize];
            self.stats.block_latency.record(now.raw() - start.raw());
        }
        self.retired_seq += 1;
    }

    /// The configuration.
    pub fn config(&self) -> CoreConfig {
        self.cfg
    }

    /// Outstanding data misses (diagnostics; bounded by the LSQ). Reads
    /// the wakeup index's total: the waiter chains are the only place a
    /// waiting ROB entry can live, so this count cannot drift from them.
    pub fn outstanding_data_misses(&self) -> usize {
        self.wakeup.waiting()
    }

    /// Whether fetch is currently stalled on an instruction miss.
    pub fn fetch_stalled(&self) -> bool {
        self.stall_line != NO_LINE
    }

    /// Classifies the core's upcoming cycles for the chip-level
    /// fast-forward (see [`CoreIdle`]). Only a fetch-stalled core is
    /// predictable: dispatch is disabled, so a tick can only retire ready
    /// ROB entries and bump counters.
    pub fn idle_state(&self) -> CoreIdle {
        if self.stall_line == NO_LINE {
            return CoreIdle::Busy;
        }
        match self.rob.front() {
            None => CoreIdle::Stalled,
            Some(slot) if slot.is_waiting() => CoreIdle::Stalled,
            Some(slot) => CoreIdle::StalledUntil(slot.ready_at()),
        }
    }

    /// Applies `delta` cycles of pure stalling in one step: exactly what
    /// `delta` consecutive [`Core::tick`] calls would do in a state
    /// [`Core::idle_state`] reported as skippable (counters move, nothing
    /// else can). The caller must not fast-forward across the
    /// [`CoreIdle::StalledUntil`] boundary.
    pub fn fast_forward_stalled(&mut self, delta: u64) {
        debug_assert!(self.stall_line != NO_LINE, "only a stalled core skips");
        self.stats.cycles.add(delta);
        self.stats.fetch_stall_cycles.add(delta);
        if self.rob.front().is_some_and(|slot| slot.is_waiting()) {
            self.stats.mem_stall_cycles.add(delta);
        }
    }

    /// Advances one cycle: retires completed instructions and dispatches
    /// new ones; any L1 misses needing the interconnect are appended to
    /// `requests`.
    ///
    /// Instructions are consumed from the core's internal block and the
    /// `source` trait object is crossed only when the block drains (one
    /// [`InstructionSource::refill`] per [`crate::source::BLOCK_CAP`]
    /// instructions). [`Core::tick_reference`] keeps the per-instruction
    /// path as the differential oracle.
    pub fn tick(
        &mut self,
        now: Cycle,
        source: &mut dyn InstructionSource,
        requests: &mut Vec<MissRequest>,
    ) {
        self.tick_impl(now, source, requests, true);
    }

    /// The per-instruction reference tick: identical to [`Core::tick`]
    /// except that every fetched instruction crosses the source trait
    /// object individually. Kept as the oracle for differential testing
    /// of the block-based delivery path (and as the honest baseline for
    /// its microbenchmark). Any instructions already buffered in the
    /// block are drained first, so the two tick flavours may be mixed on
    /// one core without perturbing the consumed stream.
    pub fn tick_reference(
        &mut self,
        now: Cycle,
        source: &mut dyn InstructionSource,
        requests: &mut Vec<MissRequest>,
    ) {
        self.tick_impl(now, source, requests, false);
    }

    fn tick_impl(
        &mut self,
        now: Cycle,
        source: &mut dyn InstructionSource,
        requests: &mut Vec<MissRequest>,
        use_block: bool,
    ) {
        self.stats.cycles.incr();
        self.retire(now);
        if self.stall_line != NO_LINE {
            self.stats.fetch_stall_cycles.incr();
        } else {
            self.dispatch(now, source, requests, use_block);
        }
    }

    fn retire(&mut self, now: Cycle) {
        // Fast path: one integer compare per retired entry (a waiting
        // slot's sentinel completion cycle can never be `<= now`).
        let mut retired = 0;
        while retired < self.cfg.width {
            let Some(slot) = self.rob.front() else { break };
            if slot.retirable(now) {
                self.rob.pop_front();
                self.stats.retired.incr();
                self.note_retire(now);
                retired += 1;
            } else {
                if retired == 0 && slot.is_waiting() {
                    self.stats.mem_stall_cycles.incr();
                }
                break;
            }
        }
    }

    fn dispatch(
        &mut self,
        now: Cycle,
        source: &mut dyn InstructionSource,
        requests: &mut Vec<MissRequest>,
        use_block: bool,
    ) {
        for _ in 0..self.cfg.width {
            if self.rob.is_full() {
                break;
            }
            let instr = match self.staged.take() {
                Some(i) => i,
                // The reference path still drains buffered instructions
                // first: they are the next positions of the stream, and
                // skipping them would tear the sequence when the two tick
                // flavours are mixed on one core.
                None if use_block => self.block.take(source),
                None => match self.block.pop() {
                    Some(i) => i,
                    None => source.next_instr(),
                },
            };
            // Instruction-fetch side: crossing into a new line costs an
            // L1-I access. The current line is held as a resolved index,
            // so staying within it — the overwhelmingly common case — is
            // one compare; a crossing decodes the new line's set base
            // once and caches it for blocked-retry re-probes.
            let line_idx = instr.fetch_line.line_index();
            if line_idx != self.fetch_line {
                let set_base = if self.probe_line == line_idx {
                    self.probe_set_base
                } else {
                    let b = self.l1i.set_base_of(line_idx);
                    self.probe_line = line_idx;
                    self.probe_set_base = b;
                    b
                };
                match self.l1i.access_indexed(line_idx, set_base, false, 0) {
                    L1Access::Hit => {
                        self.fetch_line = line_idx;
                    }
                    L1Access::Miss => {
                        self.stats.ifetch_misses.incr();
                        requests.push(MissRequest {
                            line: Addr::from_line_index(line_idx),
                            kind: AccessKind::InstrFetch,
                        });
                        self.stall_line = line_idx;
                        self.stall_started = now;
                        self.staged = Some(instr);
                        return;
                    }
                    L1Access::MergedMiss => {
                        self.stall_line = line_idx;
                        self.stall_started = now;
                        self.staged = Some(instr);
                        return;
                    }
                    L1Access::Blocked => {
                        self.staged = Some(instr);
                        return;
                    }
                }
            }
            match instr.op {
                Op::Alu { latency } => {
                    self.rob.push_ready(now + latency.max(1) as u64);
                }
                Op::Load { addr, dependent } => {
                    if dependent && self.wakeup.waiting() > 0 {
                        // Dependent load: wait for earlier misses (low-MLP
                        // behaviour of scale-out workloads).
                        self.staged = Some(instr);
                        return;
                    }
                    if !self.try_dispatch_mem(addr, AccessKind::Load, now, requests) {
                        self.staged = Some(instr);
                        return;
                    }
                }
                Op::Store { addr } => {
                    if !self.try_dispatch_mem(addr, AccessKind::Store, now, requests) {
                        self.staged = Some(instr);
                        return;
                    }
                }
            }
            // Reached only when the instruction actually entered the ROB
            // this cycle (every non-dispatch path above returns).
            self.note_dispatch(now);
        }
    }

    /// Returns false if the access could not be dispatched this cycle.
    fn try_dispatch_mem(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        now: Cycle,
        requests: &mut Vec<MissRequest>,
    ) -> bool {
        if self.wakeup.waiting() >= self.cfg.lsq_entries {
            return false;
        }
        match self.l1d.access(addr, kind.is_write(), 0) {
            L1Access::Hit => {
                self.rob.push_ready(now + self.l1d.latency());
                true
            }
            L1Access::Miss => {
                self.stats.data_misses.incr();
                requests.push(MissRequest {
                    line: addr.line(),
                    kind,
                });
                let slot = self.rob.push_waiting();
                self.wakeup.enqueue(addr.line_index(), slot, &mut self.rob);
                true
            }
            L1Access::MergedMiss => {
                let slot = self.rob.push_waiting();
                self.wakeup.enqueue(addr.line_index(), slot, &mut self.rob);
                true
            }
            L1Access::Blocked => false,
        }
    }

    /// Delivers a data line (completing the GetS/GetX the chip sent for
    /// it): fills the L1-D and wakes exactly the ROB entries chained on
    /// the line in the wakeup index — no scan of the other entries.
    /// Returns the evicted victim, if any — dirty victims must be written
    /// back to the home LLC tile by the caller.
    pub fn fill_data(&mut self, line: Addr, now: Cycle) -> Option<nocout_mem::cache::Evicted> {
        let evicted = if self.l1d.miss_pending(line) {
            self.waiter_scratch.clear();
            self.l1d.fill(line, false, &mut self.waiter_scratch)
        } else {
            None
        };
        let ready = now + self.l1d.latency();
        // Waking the chain also retires its count from the outstanding
        // total (stale fills resolve no chain and change nothing).
        self.wakeup.wake_line(line.line_index(), ready, &mut self.rob);
        evicted
    }

    /// Delivers an instruction line: fills the L1-I and clears the fetch
    /// stall if it was waiting on this line, charging the observed
    /// miss-to-fill interval to
    /// [`CoreStats::ifetch_fill_wait_cycles`].
    pub fn fill_ifetch(&mut self, line: Addr, now: Cycle) {
        if self.l1i.miss_pending(line) {
            self.waiter_scratch.clear();
            let _ = self.l1i.fill(line, false, &mut self.waiter_scratch);
        }
        let idx = line.line_index();
        if self.stall_line == idx {
            self.stats
                .ifetch_fill_wait_cycles
                .add(now.raw().saturating_sub(self.stall_started.raw()));
            self.stall_line = NO_LINE;
            self.fetch_line = idx;
        }
    }

    /// Resets the statistics at a warmup/measurement boundary. Prefer
    /// this over resetting the `stats` field directly: a fetch stall in
    /// flight at the boundary is re-anchored to `now`, so the
    /// [`CoreStats::ifetch_fill_wait_cycles`] its fill eventually books
    /// covers only the post-reset window (consistent with how
    /// `fetch_stall_cycles` accrues per in-window tick).
    pub fn reset_stats(&mut self, now: Cycle) {
        self.stats.reset();
        if self.stall_line != NO_LINE {
            self.stall_started = now;
        }
    }

    /// Warms the L1-I with a line (checkpoint-style initialization).
    pub fn warm_l1i(&mut self, line: Addr) {
        self.l1i.warm(line);
    }

    /// Warms the L1-D with a line (checkpoint-style initialization).
    pub fn warm_l1d(&mut self, line: Addr) {
        self.l1d.warm(line);
    }

    /// Invalidation snoop against the L1-D; returns `(present, dirty)`.
    pub fn snoop_invalidate(&mut self, line: Addr) -> (bool, bool) {
        self.l1d.snoop_invalidate(line)
    }

    /// Downgrade snoop (forward-read) against the L1-D; returns presence.
    pub fn snoop_downgrade(&mut self, line: Addr) -> bool {
        self.l1d.snoop_downgrade(line)
    }

    /// Emits a writeback request for dirty victims — called by the chip
    /// model when it processes L1 evictions. Exposed for protocol tests.
    pub fn l1d_mut(&mut self) -> &mut L1Cache {
        &mut self.l1d
    }

    /// Read access to the L1-I (diagnostics).
    pub fn l1i(&self) -> &L1Cache {
        &self.l1i
    }

    /// Read access to the L1-D (diagnostics).
    pub fn l1d(&self) -> &L1Cache {
        &self.l1d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ScriptedSource;

    fn alu_stream() -> ScriptedSource {
        ScriptedSource::new(vec![FetchedInstr {
            fetch_line: Addr(0),
            op: Op::Alu { latency: 1 },
        }])
    }

    fn warm_core(src: &mut ScriptedSource) -> (Core, Cycle, Vec<MissRequest>) {
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        let now = Cycle(0);
        core.tick(now, src, &mut out);
        for r in out.drain(..) {
            match r.kind {
                AccessKind::InstrFetch => core.fill_ifetch(r.line, now),
                _ => {
                    core.fill_data(r.line, now);
                }
            }
        }
        (core, now, out)
    }

    #[test]
    fn alu_stream_reaches_full_width() {
        let mut src = alu_stream();
        let (mut core, mut now, mut out) = warm_core(&mut src);
        core.stats.reset();
        for _ in 0..1000 {
            now += 1;
            core.tick(now, &mut src, &mut out);
            assert!(out.is_empty());
        }
        assert!(
            core.stats.ipc() > 2.9,
            "3-wide ALU stream should near width; got {}",
            core.stats.ipc()
        );
    }

    #[test]
    fn ifetch_miss_stalls_until_fill() {
        let mut src = ScriptedSource::new(vec![
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Alu { latency: 1 },
            },
            FetchedInstr {
                fetch_line: Addr(64),
                op: Op::Alu { latency: 1 },
            },
        ]);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        assert_eq!(out.len(), 1);
        assert!(core.fetch_stalled());
        // Stalled for 10 cycles: no new requests, no progress.
        for t in 1..=10 {
            let before = core.stats.retired.value();
            core.tick(Cycle(t), &mut src, &mut out);
            assert_eq!(core.stats.retired.value(), before);
        }
        assert_eq!(out.len(), 1);
        core.fill_ifetch(Addr(0), Cycle(10));
        assert!(!core.fetch_stalled());
        out.clear();
        core.tick(Cycle(11), &mut src, &mut out);
        // Immediately misses on the second line.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, Addr(64));
    }

    #[test]
    fn fetch_stall_cycles_counted() {
        let mut src = alu_stream();
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        for t in 1..=20 {
            core.tick(Cycle(t), &mut src, &mut out);
        }
        assert_eq!(core.stats.fetch_stall_cycles.value(), 20);
    }

    #[test]
    fn independent_loads_overlap_up_to_lsq() {
        // Stream of independent loads to distinct lines.
        let script: Vec<FetchedInstr> = (0..64)
            .map(|i| FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Load {
                    addr: Addr(0x10000 + i * 64),
                    dependent: false,
                },
            })
            .collect();
        let mut src = ScriptedSource::new(script);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        for t in 1..=20 {
            core.tick(Cycle(t), &mut src, &mut out);
        }
        let loads: Vec<_> = out
            .iter()
            .filter(|r| r.kind == AccessKind::Load)
            .collect();
        // L1D MSHR capacity (8) gates below the 16-entry LSQ.
        assert_eq!(loads.len(), 8);
        assert_eq!(core.outstanding_data_misses(), 8);
    }

    #[test]
    fn dependent_loads_serialize() {
        let script: Vec<FetchedInstr> = (0..64)
            .map(|i| FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Load {
                    addr: Addr(0x10000 + i * 64),
                    dependent: true,
                },
            })
            .collect();
        let mut src = ScriptedSource::new(script);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        for t in 1..=20 {
            core.tick(Cycle(t), &mut src, &mut out);
        }
        let loads = out.iter().filter(|r| r.kind == AccessKind::Load).count();
        assert_eq!(loads, 1, "dependent loads expose no MLP");
    }

    #[test]
    fn fill_wakes_waiting_entries_and_retires() {
        let mut src = ScriptedSource::new(vec![FetchedInstr {
            fetch_line: Addr(0),
            op: Op::Load {
                addr: Addr(0x5000),
                dependent: false,
            },
        }]);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        out.clear();
        core.tick(Cycle(1), &mut src, &mut out);
        assert!(out.iter().any(|r| r.kind == AccessKind::Load));
        let before = core.stats.retired.value();
        core.fill_data(Addr(0x5000), Cycle(5));
        // Ready at 5 + L1 latency; retire happens on the next tick after.
        for t in 6..=10 {
            core.tick(Cycle(t), &mut src, &mut out);
        }
        assert!(core.stats.retired.value() > before);
    }

    #[test]
    fn multi_waiter_same_line_fill_wakes_all_in_one_step() {
        // Two independent loads to the same line: the second merges into
        // the first's MSHR and both ROB entries chain on one wakeup
        // line. The single fill must wake both, and the outstanding-MLP
        // count — owned by the wakeup index — must go 2 → 0 in that one
        // step (the pre-refactor code decremented it once per matching
        // entry inside the full-ROB scan).
        let script = vec![
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Load {
                    addr: Addr(0x5000),
                    dependent: false,
                },
            },
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Load {
                    addr: Addr(0x5008),
                    dependent: false,
                },
            },
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Alu { latency: 1 },
            },
        ];
        let mut src = ScriptedSource::new(script);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        out.clear();
        core.tick(Cycle(1), &mut src, &mut out);
        // One miss request on the wire, two entries waiting on its line.
        let loads = out.iter().filter(|r| r.kind == AccessKind::Load).count();
        assert_eq!(loads, 1, "second load must merge, not re-request");
        assert_eq!(core.outstanding_data_misses(), 2);
        core.fill_data(Addr(0x5000), Cycle(5));
        assert_eq!(
            core.outstanding_data_misses(),
            0,
            "the fill retires the whole chain from the outstanding count"
        );
        let before = core.stats.retired.value();
        for t in 6..=10 {
            core.tick(Cycle(t), &mut src, &mut out);
        }
        assert!(
            core.stats.retired.value() >= before + 2,
            "both woken loads must retire"
        );
    }

    #[test]
    fn ifetch_fill_wait_cycles_record_miss_to_fill_interval() {
        let mut src = alu_stream();
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        // Miss at cycle 0; the fill lands at cycle 10.
        core.tick(Cycle(0), &mut src, &mut out);
        assert!(core.fetch_stalled());
        core.fill_ifetch(Addr(0), Cycle(10));
        assert_eq!(core.stats.ifetch_fill_wait_cycles.value(), 10);
        // A stale fill for a line fetch never stalled on adds nothing.
        core.fill_ifetch(Addr(0x4000), Cycle(25));
        assert_eq!(core.stats.ifetch_fill_wait_cycles.value(), 10);
    }

    #[test]
    fn reset_stats_reanchors_inflight_stall_interval() {
        // A stall spanning the warmup boundary must book only its
        // post-reset portion into the fill-wait counter.
        let mut src = alu_stream();
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        assert!(core.fetch_stalled());
        core.reset_stats(Cycle(50));
        core.fill_ifetch(Addr(0), Cycle(60));
        assert_eq!(core.stats.ifetch_fill_wait_cycles.value(), 10);
    }

    #[test]
    fn store_miss_requests_getx_kind() {
        let mut src = ScriptedSource::new(vec![FetchedInstr {
            fetch_line: Addr(0),
            op: Op::Store { addr: Addr(0x9000) },
        }]);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        out.clear();
        core.tick(Cycle(1), &mut src, &mut out);
        assert!(out.iter().any(|r| r.kind == AccessKind::Store));
    }

    #[test]
    fn mem_stall_cycles_accumulate_when_head_waits() {
        let mut src = ScriptedSource::new(vec![FetchedInstr {
            fetch_line: Addr(0),
            op: Op::Load {
                addr: Addr(0x5000),
                dependent: true,
            },
        }]);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        for t in 1..=30 {
            core.tick(Cycle(t), &mut src, &mut out);
        }
        assert!(core.stats.mem_stall_cycles.value() > 10);
    }

    #[test]
    fn rob_fills_and_blocks_dispatch() {
        // A head-of-ROB load that never completes must cap the ROB at its
        // configured size while independent work piles behind it.
        let script = vec![
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Load {
                    addr: Addr(0x7000),
                    dependent: false,
                },
            },
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Alu { latency: 1 },
            },
        ];
        let mut src = ScriptedSource::new(script);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        for t in 1..200 {
            core.tick(Cycle(t), &mut src, &mut out);
        }
        // Nothing retires past the stuck load; ROB is bounded.
        assert_eq!(core.stats.retired.value(), 0);
        assert!(core.stats.mem_stall_cycles.value() > 100);
    }

    #[test]
    fn warm_l1i_prevents_initial_stall() {
        let mut src = alu_stream();
        let mut core = Core::new(CoreConfig::a15());
        core.warm_l1i(Addr(0));
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        assert!(out.is_empty(), "warmed line must not miss");
        assert!(!core.fetch_stalled());
        assert!(core.stats.retired.value() == 0); // retires next cycle
        core.tick(Cycle(1), &mut src, &mut out);
        core.tick(Cycle(2), &mut src, &mut out);
        assert!(core.stats.retired.value() > 0);
    }

    #[test]
    fn stale_fill_for_unrequested_line_is_harmless() {
        let mut core = Core::new(CoreConfig::a15());
        // No outstanding miss: fills must not corrupt state or panic.
        assert!(core.fill_data(Addr(0xAB00), Cycle(3)).is_none());
        core.fill_ifetch(Addr(0xCD00), Cycle(3));
        assert_eq!(core.outstanding_data_misses(), 0);
    }

    #[test]
    fn mixed_alu_and_load_stream_sustains_mlp() {
        // Independent loads interleaved with ALU work: multiple misses in
        // flight despite the in-order head.
        let script: Vec<FetchedInstr> = (0..32)
            .flat_map(|i| {
                vec![
                    FetchedInstr {
                        fetch_line: Addr(0),
                        op: Op::Load {
                            addr: Addr(0x2_0000 + i * 64),
                            dependent: false,
                        },
                    },
                    FetchedInstr {
                        fetch_line: Addr(0),
                        op: Op::Alu { latency: 1 },
                    },
                ]
            })
            .collect();
        let mut src = ScriptedSource::new(script);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        for t in 1..=15 {
            core.tick(Cycle(t), &mut src, &mut out);
        }
        assert!(
            core.outstanding_data_misses() >= 4,
            "expected MLP, got {}",
            core.outstanding_data_misses()
        );
    }

    #[test]
    fn fast_forward_matches_per_cycle_stall() {
        // Two identical stalled cores: one ticked cycle by cycle, one
        // fast-forwarded in a single step. Counters must match exactly.
        let build = || {
            let mut src = ScriptedSource::new(vec![
                FetchedInstr {
                    fetch_line: Addr(0),
                    op: Op::Load {
                        addr: Addr(0x5000),
                        dependent: false,
                    },
                },
                FetchedInstr {
                    fetch_line: Addr(64),
                    op: Op::Alu { latency: 1 },
                },
            ]);
            let mut core = Core::new(CoreConfig::a15());
            let mut out = Vec::new();
            core.tick(Cycle(0), &mut src, &mut out);
            core.fill_ifetch(Addr(0), Cycle(0));
            core.tick(Cycle(1), &mut src, &mut out);
            core.tick(Cycle(2), &mut src, &mut out);
            (core, src)
        };
        let (mut dense, mut src_a) = build();
        let (mut sparse, _src_b) = build();
        // Both are now fetch-stalled on line 64 with the load in the ROB.
        assert_eq!(dense.idle_state(), CoreIdle::Stalled);
        let mut out = Vec::new();
        for t in 3..40 {
            dense.tick(Cycle(t), &mut src_a, &mut out);
        }
        sparse.fast_forward_stalled(37);
        assert_eq!(dense.stats.cycles.value(), sparse.stats.cycles.value());
        assert_eq!(
            dense.stats.fetch_stall_cycles.value(),
            sparse.stats.fetch_stall_cycles.value()
        );
        assert_eq!(
            dense.stats.mem_stall_cycles.value(),
            sparse.stats.mem_stall_cycles.value()
        );
        assert_eq!(dense.stats.retired.value(), sparse.stats.retired.value());
    }

    /// A looping stream with fetch-line transitions, loads, stores and
    /// mixed ALU latencies — enough structure to exercise stalls, fills
    /// and refill boundaries in the differential tests below.
    fn varied_script() -> Vec<FetchedInstr> {
        (0..23u64)
            .map(|i| FetchedInstr {
                fetch_line: Addr((i / 4) * 64),
                op: match i % 5 {
                    0 => Op::Alu { latency: 1 },
                    1 => Op::Alu { latency: 3 },
                    2 => Op::Load {
                        addr: Addr(0x3_0000 + (i % 11) * 64),
                        dependent: i % 2 == 0,
                    },
                    3 => Op::Store {
                        addr: Addr(0x5_0000 + (i % 7) * 64),
                    },
                    _ => Op::Load {
                        addr: Addr(0x7_0000 + i * 64),
                        dependent: false,
                    },
                },
            })
            .collect()
    }

    /// Drives a core for `cycles`, filling every miss after a fixed
    /// latency, with the chosen tick flavour (or a mix).
    fn drive(cycles: u64, flavour: impl Fn(u64) -> bool) -> (CoreStats, Vec<MissRequest>) {
        let mut src = ScriptedSource::new(varied_script());
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        let mut log = Vec::new();
        let mut pending: Vec<(Cycle, MissRequest)> = Vec::new();
        for t in 0..cycles {
            let now = Cycle(t);
            pending.retain(|(at, r)| {
                if *at <= now {
                    match r.kind {
                        AccessKind::InstrFetch => core.fill_ifetch(r.line, now),
                        _ => {
                            core.fill_data(r.line, now);
                        }
                    }
                    false
                } else {
                    true
                }
            });
            out.clear();
            if flavour(t) {
                core.tick(now, &mut src, &mut out);
            } else {
                core.tick_reference(now, &mut src, &mut out);
            }
            for r in out.drain(..) {
                log.push(r);
                pending.push((now + 18, r));
            }
        }
        (core.stats, log)
    }

    #[test]
    fn block_tick_is_bit_identical_to_per_instruction_reference() {
        let (blocked, blocked_reqs) = drive(3_000, |_| true);
        let (reference, reference_reqs) = drive(3_000, |_| false);
        assert_eq!(blocked_reqs, reference_reqs, "miss streams diverged");
        assert_eq!(blocked.retired.value(), reference.retired.value());
        assert_eq!(blocked.cycles.value(), reference.cycles.value());
        assert_eq!(
            blocked.fetch_stall_cycles.value(),
            reference.fetch_stall_cycles.value()
        );
        assert_eq!(
            blocked.mem_stall_cycles.value(),
            reference.mem_stall_cycles.value()
        );
        assert_eq!(blocked.ifetch_misses.value(), reference.ifetch_misses.value());
        assert_eq!(blocked.data_misses.value(), reference.data_misses.value());
    }

    #[test]
    fn mixed_tick_flavours_preserve_the_stream() {
        // Alternating between block and per-instruction ticking mid-run
        // must consume exactly the same sequence: the reference path
        // drains the block's buffered instructions before touching the
        // source again.
        let (mixed, mixed_reqs) = drive(3_000, |t| (t / 97) % 2 == 0);
        let (reference, reference_reqs) = drive(3_000, |_| false);
        assert_eq!(mixed_reqs, reference_reqs, "miss streams diverged");
        assert_eq!(mixed.retired.value(), reference.retired.value());
        assert_eq!(mixed.data_misses.value(), reference.data_misses.value());
    }

    /// A core stalled on an ifetch miss with one completed-but-unretired
    /// ALU op in the ROB: `idle_state` is `StalledUntil(ready)`.
    fn stalled_until_core() -> (Core, ScriptedSource, Cycle) {
        let mut src = ScriptedSource::new(vec![
            FetchedInstr {
                fetch_line: Addr(0),
                op: Op::Alu { latency: 4 },
            },
            FetchedInstr {
                fetch_line: Addr(64),
                op: Op::Alu { latency: 1 },
            },
        ]);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        out.clear();
        // Dispatches the latency-4 ALU op, then stalls fetching line 64.
        core.tick(Cycle(1), &mut src, &mut out);
        assert!(core.fetch_stalled());
        (core, src, Cycle(1))
    }

    #[test]
    fn fast_forward_zero_delta_is_a_no_op() {
        let (mut core, _src, _) = stalled_until_core();
        let before_cycles = core.stats.cycles.value();
        let before_stall = core.stats.fetch_stall_cycles.value();
        core.fast_forward_stalled(0);
        assert_eq!(core.stats.cycles.value(), before_cycles);
        assert_eq!(core.stats.fetch_stall_cycles.value(), before_stall);
    }

    #[test]
    fn fast_forward_to_exact_wake_cycle_matches_dense_ticking() {
        // The ROB head becomes ready at some cycle `w`; the contract lets
        // the caller skip strictly up to (not across) `w`. Landing the
        // fast-forward exactly on the wake boundary and ticking from
        // there must match dense per-cycle ticking bit for bit.
        let (dense_core, mut dense_src, start) = stalled_until_core();
        let (sparse_core, mut sparse_src, _) = stalled_until_core();
        let wake = match dense_core.idle_state() {
            CoreIdle::StalledUntil(at) => at,
            other => panic!("expected StalledUntil, got {other:?}"),
        };
        let delta = wake.raw() - (start.raw() + 1);
        let mut dense_core = dense_core;
        let mut sparse_core = sparse_core;
        let mut out = Vec::new();
        for t in (start.raw() + 1)..wake.raw() {
            dense_core.tick(Cycle(t), &mut dense_src, &mut out);
        }
        sparse_core.fast_forward_stalled(delta);
        // From the wake cycle onward both must be ticked normally.
        for t in wake.raw()..wake.raw() + 10 {
            dense_core.tick(Cycle(t), &mut dense_src, &mut out);
            sparse_core.tick(Cycle(t), &mut sparse_src, &mut out);
        }
        assert_eq!(dense_core.stats.cycles.value(), sparse_core.stats.cycles.value());
        assert_eq!(
            dense_core.stats.retired.value(),
            sparse_core.stats.retired.value()
        );
        assert_eq!(
            dense_core.stats.fetch_stall_cycles.value(),
            sparse_core.stats.fetch_stall_cycles.value()
        );
        assert_eq!(
            dense_core.stats.mem_stall_cycles.value(),
            sparse_core.stats.mem_stall_cycles.value()
        );
    }

    #[test]
    fn fast_forward_already_idle_core_counts_pure_stall() {
        // Fetch-stalled with an empty ROB (nothing will ever retire until
        // the fill arrives): `Stalled` — any delta is skippable and only
        // the stall counters move.
        let mut src = alu_stream();
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        assert!(core.fetch_stalled());
        assert_eq!(core.idle_state(), CoreIdle::Stalled);
        let retired_before = core.stats.retired.value();
        core.fast_forward_stalled(1_000);
        assert_eq!(core.stats.retired.value(), retired_before);
        assert_eq!(core.stats.fetch_stall_cycles.value(), 1_000);
        assert_eq!(core.stats.cycles.value(), 1_001);
        // No data miss at the ROB head, so no memory-stall cycles.
        assert_eq!(core.stats.mem_stall_cycles.value(), 0);
    }

    #[test]
    fn idle_state_reports_busy_when_dispatching() {
        let mut src = alu_stream();
        let (core, _, _) = warm_core(&mut src);
        assert_eq!(core.idle_state(), CoreIdle::Busy);
    }

    #[test]
    fn snoops_affect_l1d() {
        let mut src = ScriptedSource::new(vec![FetchedInstr {
            fetch_line: Addr(0),
            op: Op::Store { addr: Addr(0x9000) },
        }]);
        let mut core = Core::new(CoreConfig::a15());
        let mut out = Vec::new();
        core.tick(Cycle(0), &mut src, &mut out);
        core.fill_ifetch(Addr(0), Cycle(0));
        out.clear();
        core.tick(Cycle(1), &mut src, &mut out);
        core.fill_data(Addr(0x9000), Cycle(5));
        let (present, _) = core.snoop_invalidate(Addr(0x9000));
        assert!(present);
        let (present, _) = core.snoop_invalidate(Addr(0x9000));
        assert!(!present, "second invalidate finds nothing");
    }
}
